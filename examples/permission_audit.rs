//! Permission audit: walk through the paper's four §V-B case studies —
//! Offline Calendar (API invocation), FOSDEM (API callback), Kolab
//! Notes (permission request) and AdAway (permission revocation) — and
//! show how each mismatch presents in a report.
//!
//! ```text
//! cargo run --release --example permission_audit
//! ```

use std::sync::Arc;

use saint_adf::AndroidFramework;
use saint_corpus::cases;
use saint_ir::Apk;
use saintdroid::{CompatDetector, MismatchKind, SaintDroid};

fn audit(tool: &SaintDroid, label: &str, apk: &Apk, expect: MismatchKind, paper_fix: &str) {
    let report = tool.analyze(apk).expect("SAINTDroid analyzes any APK");
    println!("== {label} ({}) ==", apk.manifest.package);
    let hits: Vec<_> = report.of_kind(expect).collect();
    assert!(
        !hits.is_empty(),
        "{label}: expected a {expect}, report was: {report}"
    );
    for m in hits {
        println!("  {m}");
    }
    println!("  paper's suggested fix: {paper_fix}\n");
}

fn main() {
    let tool = SaintDroid::new(Arc::new(AndroidFramework::curated()));

    audit(
        &tool,
        "Offline Calendar",
        &cases::offline_calendar(),
        MismatchKind::ApiInvocation,
        "wrap getFragmentManager() in an SDK_INT >= 11 guard, or raise minSdkVersion to 11",
    );
    audit(
        &tool,
        "FOSDEM",
        &cases::fosdem(),
        MismatchKind::ApiCallback,
        "set minSdkVersion to 21 so drawableHotspotChanged is delivered on every supported device",
    );
    audit(
        &tool,
        "Kolab Notes",
        &cases::kolab_notes(),
        MismatchKind::PermissionRequest,
        "implement the runtime permission request protocol (requestPermissions + onRequestPermissionsResult)",
    );
    audit(
        &tool,
        "AdAway",
        &cases::adaway(),
        MismatchKind::PermissionRevocation,
        "move to the runtime permission system and set minSdkVersion to 23",
    );

    println!("all four case studies reproduce the paper's findings");
}
