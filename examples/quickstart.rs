//! Quickstart: build the paper's Listing-1 app in the IR, analyze it
//! with SAINTDroid, and read the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use saint_adf::{well_known, AndroidFramework};
use saint_ir::{ApiLevel, ApkBuilder, ClassBuilder, ClassOrigin};
use saintdroid::{CompatDetector, SaintDroid};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Listing 1 of the paper: an app targeting API 28 with
    // minSdkVersion 21 that calls Context.getColorStateList —
    // introduced in API 23 — without a guard. On a device running
    // 21 or 22 the call site crashes.
    let main_activity = ClassBuilder::new("com.example.listing1.MainActivity", ClassOrigin::App)
        .extends("android.app.Activity")
        .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
            b.invoke_virtual(well_known::activity_set_content_view(), &[], None);
            // The fix the paper suggests is a Build.VERSION.SDK_INT
            // guard; try wrapping this call with
            // `b.guard_sdk_at_least(ApiLevel::new(23))` and watch the
            // report go quiet.
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.ret_void();
        })?
        .build();

    let apk = ApkBuilder::new("com.example.listing1", ApiLevel::new(21), ApiLevel::new(28))
        .activity("com.example.listing1.MainActivity")
        .class(main_activity)?
        .build();

    println!("analyzing {apk}");

    // The framework model plays the role of the Android platform: the
    // ARM component mines it once into the API database and permission
    // map, then every analysis reuses them.
    let framework = Arc::new(AndroidFramework::curated());
    let tool = SaintDroid::new(framework);
    let report = tool.analyze(&apk).expect("SAINTDroid analyzes any APK");

    println!("\n{report}");
    for m in &report.mismatches {
        let life = m.api_life.expect("API mismatches carry lifetimes");
        println!(
            "crash risk: devices running {} cannot execute {} (introduced in API {})",
            m.missing_levels
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", "),
            m.api,
            life.since,
        );
    }
    assert_eq!(report.total(), 1, "the Listing-1 bug is found exactly once");
    Ok(())
}
