//! Benchmark scan: run the paper's full tool matrix — SAINTDroid, CID,
//! CIDER and Lint — over the 19-app benchmark suite (CIDER-Bench +
//! CID-Bench) and print each tool's accuracy against the recorded
//! ground truth, reproducing the Table II comparison interactively.
//!
//! ```text
//! cargo run --release --example benchmark_scan
//! ```

use std::sync::Arc;

use saint_adf::AndroidFramework;
use saint_baselines::all_detectors;
use saint_corpus::{benchmark_suite, score, Accuracy};

fn main() {
    let framework = Arc::new(AndroidFramework::curated());
    let tools = all_detectors(&framework);
    let apps = benchmark_suite();
    println!(
        "scanning {} benchmark apps with {} tools\n",
        apps.len(),
        tools.len()
    );

    println!(
        "{:<12} {:>4} {:>4} {:>4}   {:>5} {:>6} {:>4}   capabilities",
        "tool", "TP", "FP", "FN", "prec", "recall", "F"
    );
    for tool in &tools {
        let mut acc = Accuracy::default();
        let mut failures = Vec::new();
        for app in &apps {
            match tool.analyze(&app.apk) {
                Some(report) => acc.absorb(score(&report, &app.truth, None)),
                None => {
                    failures.push(app.name);
                    acc.absorb(Accuracy {
                        tp: 0,
                        fp: 0,
                        fn_: app.truth.len(),
                    });
                }
            }
        }
        println!(
            "{:<12} {:>4} {:>4} {:>4}   {:>4.0}% {:>5.0}% {:>3.0}%   {}",
            tool.name(),
            acc.tp,
            acc.fp,
            acc.fn_,
            acc.precision() * 100.0,
            acc.recall() * 100.0,
            acc.f_measure() * 100.0,
            tool.capabilities(),
        );
        if !failures.is_empty() {
            println!("{:<12}   failed on: {}", "", failures.join(", "));
        }
    }

    println!(
        "\nExpected shape (paper Table II): SAINTDroid leads every family;\n\
         CID misses callbacks/permissions and crashes on multi-dex apps;\n\
         CIDER sees only its four modeled classes; Lint misreports guarded code."
    );
}
