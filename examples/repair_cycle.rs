//! Repair cycle: the full future-work loop the paper sketches in
//! §VI/§VIII — detect statically, verify dynamically, synthesize
//! repairs, and prove (statically and dynamically) that the patched
//! app is sound.
//!
//! ```text
//! cargo run --release --example repair_cycle
//! ```

use std::sync::Arc;

use saint_adf::AndroidFramework;
use saint_corpus::cases;
use saint_dynamic::{Device, Simulator, Verifier};
use saint_ir::ApiLevel;
use saintdroid::repair::{repair, RepairOptions};
use saintdroid::{CompatDetector, SaintDroid};

fn main() {
    let fw = Arc::new(AndroidFramework::curated());
    let saint = SaintDroid::new(Arc::clone(&fw));
    let verifier = Verifier::new(Arc::clone(&fw));

    let apk = cases::offline_calendar();
    println!("== 1. static detection ==");
    let report = saint.analyze(&apk).expect("SAINTDroid analyzes any APK");
    print!("{report}");

    println!("\n== 2. dynamic verification ==");
    let verification = verifier.verify(&apk, &report);
    println!(
        "{} confirmed, {} refuted, {} undetermined",
        verification.confirmed.len(),
        verification.refuted.len(),
        verification.undetermined.len()
    );

    println!("\n== 3. repair synthesis ==");
    let outcome = repair(&apk, &report, &RepairOptions::default());
    for action in &outcome.actions {
        println!("{action:?}");
    }

    println!("\n== 4. the patched app, statically ==");
    let after = saint
        .analyze(&outcome.apk)
        .expect("SAINTDroid analyzes any APK");
    print!("{after}");
    assert!(after.is_clean(), "repair must silence the finding");

    println!("\n== 5. the patched app, dynamically ==");
    // Run the patched app on the very device the original crashed on.
    let level = ApiLevel::new(8);
    let entries = saint_dynamic::entry_points(&outcome.apk);
    let mut sim = Simulator::new(&outcome.apk, &fw, Device::at(level));
    let run = sim.run_entries(&entries);
    println!(
        "device {level}: {} crashes across {} entry points (complete: {})",
        run.crashes.len(),
        entries.len(),
        run.complete
    );
    assert!(run.crashes.is_empty(), "the patched app must not crash");

    println!("\nrepair cycle complete: detected, verified, fixed, proven.");
}
