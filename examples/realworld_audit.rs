//! Real-world audit: generate a slice of the calibrated corpus, write
//! one app to disk in the `SAPK` container format, parse it back (the
//! front-end step every analysis performs), and audit the slice with
//! SAINTDroid — a miniature of the paper's RQ2 study.
//!
//! ```text
//! cargo run --release --example realworld_audit            # 40 apps
//! cargo run --release --example realworld_audit -- 200     # more apps
//! ```

use std::sync::Arc;

use saint_adf::{AndroidFramework, SynthConfig};
use saint_corpus::{RealWorldConfig, RealWorldCorpus};
use saint_ir::codec;
use saintdroid::{CompatDetector, MismatchKind, SaintDroid};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let apps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);

    let mut cfg = RealWorldConfig::small();
    cfg.apps = apps;
    let corpus = RealWorldCorpus::new(cfg);
    let framework = Arc::new(AndroidFramework::with_scale(&SynthConfig::small()));
    let tool = SaintDroid::new(framework);

    // Round-trip one app through the on-disk container, as a real
    // pipeline (store → fetch → analyze) would.
    let sample = corpus.get(0);
    let path = std::env::temp_dir().join("saintdroid_sample.sapk");
    std::fs::write(&path, codec::encode_apk(&sample.apk))?;
    let loaded = codec::decode_apk(&std::fs::read(&path)?)?;
    assert_eq!(sample.apk, loaded);
    println!(
        "wrote and re-parsed {} ({} bytes) at {}",
        loaded.manifest.package,
        std::fs::metadata(&path)?.len(),
        path.display()
    );

    let mut api_apps = 0usize;
    let mut api_total = 0usize;
    let mut apc_total = 0usize;
    let mut prm_total = 0usize;
    let mut worst: Option<(String, usize)> = None;
    for app in corpus.iter() {
        let report = tool.analyze(&app.apk).expect("SAINTDroid analyzes any APK");
        let api = report.count(MismatchKind::ApiInvocation);
        if api > 0 {
            api_apps += 1;
        }
        api_total += api;
        apc_total += report.apc_count();
        prm_total += report.prm_count();
        if worst.as_ref().is_none_or(|(_, n)| report.total() > *n) {
            worst = Some((report.package.clone(), report.total()));
        }
    }

    println!("\naudited {apps} generated apps:");
    println!(
        "  API invocation mismatches: {api_total} across {api_apps} apps ({:.0}% of the corpus)",
        100.0 * api_apps as f64 / apps as f64
    );
    println!("  API callback mismatches:   {apc_total}");
    println!("  permission mismatches:     {prm_total}");
    if let Some((package, n)) = worst {
        println!("  most affected app: {package} with {n} findings");
    }
    println!("\n(the paper's full corpus: 68,268 API mismatches in 41.19% of 3,571 apps)");
    Ok(())
}
