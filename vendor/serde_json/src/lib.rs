//! Hermetic stand-in for the `serde_json` crate (see
//! `vendor/README.md`).
//!
//! Prints and parses JSON through the vendored `serde` [`Value`] tree:
//! `to_string`/`to_string_pretty` render `Serialize` types,
//! `from_str` parses into `Deserialize` types.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON encode/decode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Error {
            msg: err.to_string(),
        }
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0)?;
    Ok(out)
}

/// Parses JSON text into a deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_str(text)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON text into the raw [`Value`] tree, for callers that
/// dispatch on part of a message before deserializing the whole of it
/// (one parse, several `from_value` views).
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON.
pub fn from_str_value(text: &str) -> Result<Value, Error> {
    parse_value_str(text)
}

// ---------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<&str>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if !v.is_finite() {
                return Err(Error {
                    msg: "non-finite float is not representable in JSON".to_string(),
                });
            }
            if v.fract() == 0.0 && v.abs() < 1e15 {
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&format!("{v}"));
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_str(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: format!("{msg} at byte {}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Bulk-copy the run up to the next delimiter. The
                    // delimiters are ASCII, so splitting there never
                    // lands inside a multi-byte sequence; validating
                    // only the run keeps long strings O(n) overall.
                    let rest = &self.bytes[self.pos..];
                    let run = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\' || b < 0x20)
                        .unwrap_or(rest.len());
                    if run == 0 {
                        // A raw control byte; tolerated as before.
                        out.push(b as char);
                        self.pos += 1;
                        continue;
                    }
                    let text = std::str::from_utf8(&rest[..run])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(text);
                    self.pos += run;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII number chars are valid UTF-8");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                });
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::Array(vec![Value::Null, Value::Bool(true)])),
            ("c".to_string(), Value::Str("x\n\"y".to_string())),
        ]);
        let text = to_string(&VWrap(v.clone())).unwrap();
        assert_eq!(text, r#"{"a":1,"b":[null,true],"c":"x\n\"y"}"#);
        let back: VWrap = from_str(&text).unwrap();
        assert_eq!(back.0, v);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = VWrap(Value::Object(vec![("k".to_string(), Value::U64(2))]));
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"k\": 2\n}");
    }

    #[test]
    fn negative_and_float_numbers() {
        let n: VWrap = from_str("-42").unwrap();
        assert_eq!(n.0, Value::I64(-42));
        let f: VWrap = from_str("2.5e2").unwrap();
        assert_eq!(f.0, Value::F64(250.0));
    }

    #[test]
    fn unicode_escapes() {
        let s: VWrap = from_str(r#""é😀""#).unwrap();
        assert_eq!(s.0, Value::Str("\u{e9}\u{1F600}".to_string()));
    }

    #[test]
    fn long_string_roundtrip_with_scattered_escapes() {
        // Exercises the bulk-run fast path: long unescaped stretches
        // interleaved with escapes and multi-byte characters.
        let original: String = ("abc0123+/=".repeat(5_000) + "é\"\\\n😀")
            .repeat(2)
            .chars()
            .collect();
        let text = to_string(&VWrap(Value::Str(original.clone()))).unwrap();
        let back: VWrap = from_str(&text).unwrap();
        assert_eq!(back.0, Value::Str(original));
    }

    #[test]
    fn from_str_value_exposes_raw_tree() {
        let v = from_str_value(r#"{"kind":"scan","n":3}"#).unwrap();
        match &v {
            Value::Object(entries) => {
                assert_eq!(entries[0], ("kind".to_string(), Value::Str("scan".into())));
                assert_eq!(entries[1], ("n".to_string(), Value::U64(3)));
            }
            other => panic!("{other:?}"),
        }
    }

    /// Test shim: serializes/deserializes as the inner raw value.
    #[derive(Debug, PartialEq, Clone)]
    struct VWrap(Value);

    impl Serialize for VWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    impl Deserialize for VWrap {
        fn from_value(value: &Value) -> Result<Self, serde::Error> {
            Ok(VWrap(value.clone()))
        }
    }
}
