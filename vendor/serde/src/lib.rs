//! Hermetic stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! Instead of serde's visitor-based zero-copy architecture, this
//! implementation routes everything through an owned [`Value`] tree:
//! [`Serialize`] renders a value into the tree, [`Deserialize`] parses
//! it back out, and `serde_json` prints/parses the tree as JSON. The
//! observable contract the workspace relies on — `#[derive(Serialize,
//! Deserialize)]`, `#[serde(transparent)]`, externally-tagged enums,
//! and `serde_json::{to_string, to_string_pretty, from_str}` round
//! trips — is preserved.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value does not fit `i64` or the
    /// source type is unsigned).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Array(Vec<Value>),
    /// Key-ordered map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A `u64` view of any integer value.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// An `i64` view of any integer value.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// An `f64` view of any numeric value.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a message.
    #[must_use]
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not describe a `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Looks up a struct field, yielding `Null` for missing keys so that
/// `Option` fields deserialize to `None` (derive-internal helper).
#[doc(hidden)]
#[must_use]
pub fn __field<'a>(value: &'a Value, name: &str) -> &'a Value {
    static NULL: Value = Value::Null;
    value.get(name).unwrap_or(&NULL)
}

/// Type-mismatch error constructor (derive-internal helper).
#[doc(hidden)]
#[must_use]
pub fn __type_error(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, got {}", got.kind()))
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(__type_error("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let v = value.as_i64().ok_or_else(|| __type_error("integer", value))?;
                <$t>::try_from(v).map_err(|_| Error::custom(format!(
                    "{v} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let v = value.as_u64().ok_or_else(|| __type_error("integer", value))?;
                <$t>::try_from(v).map_err(|_| Error::custom(format!(
                    "{v} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let v = value.as_i64().ok_or_else(|| __type_error("integer", value))?;
        isize::try_from(v).map_err(|_| Error::custom(format!("{v} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| __type_error("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| __type_error("number", value))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| __type_error("string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| __type_error("string", value))
    }
}

impl Serialize for Arc<str> {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Arc<str> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(Arc::from)
            .ok_or_else(|| __type_error("string", value))
    }
}

impl Serialize for Rc<str> {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(value: &Value) -> Result<Self, Error> {
        // Static-str fields (ground-truth notes) deserialize by leaking
        // the parsed string. Bounded: only reached by small test/CLI
        // payloads, never in the analysis hot path.
        value
            .as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| __type_error("string", value))
    }
}

// ---------------------------------------------------------------------
// References and smart pointers
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------
// Option / collections
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| __type_error("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| __type_error("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, S: BuildHasher> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort rendered elements.
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(cmp_values);
        Value::Array(items)
    }
}

impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| __type_error("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

fn key_string(key: &Value) -> Result<String, Error> {
    match key {
        Value::Str(s) => Ok(s.clone()),
        Value::I64(v) => Ok(v.to_string()),
        Value::U64(v) => Ok(v.to_string()),
        other => Err(Error::custom(format!(
            "map key must be a string-like value, got {}",
            other.kind()
        ))),
    }
}

fn cmp_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    // Total order good enough for deterministic rendering of hash
    // collections: compare debug strings.
    format!("{a:?}").cmp(&format!("{b:?}"))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_string(&k.to_value()).expect("map key serializes to string"),
                        v.to_value(),
                    )
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(v)?)))
                .collect(),
            other => Err(__type_error("object", other)),
        }
    }
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (
                    key_string(&k.to_value()).expect("map key serializes to string"),
                    v.to_value(),
                )
            })
            .collect();
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Object(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(v)?)))
                .collect(),
            other => Err(__type_error("object", other)),
        }
    }
}

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(__type_error("null", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| __type_error("array", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got {} elements", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

// ---------------------------------------------------------------------
// std::time
// ---------------------------------------------------------------------

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let secs = u64::from_value(__field(value, "secs"))?;
        let nanos = u32::from_value(__field(value, "nanos"))?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(u8::from_value(&7u8.to_value()), Ok(7));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_string()));
        let s: Arc<str> = Arc::from("x");
        assert_eq!(Arc::<str>::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u8, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&v.to_value()), Ok(v));
        let m: BTreeMap<String, u8> = [("a".to_string(), 1u8)].into_iter().collect();
        assert_eq!(BTreeMap::from_value(&m.to_value()), Ok(m));
        let opt: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&opt.to_value()), Ok(None));
    }

    #[test]
    fn duration_roundtrip() {
        let d = Duration::new(3, 250);
        assert_eq!(Duration::from_value(&d.to_value()), Ok(d));
    }

    #[test]
    fn out_of_range_is_error() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u8::from_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn tuples_roundtrip() {
        let t = (1u8, "x".to_string());
        let v = t.to_value();
        assert_eq!(<(u8, String)>::from_value(&v), Ok(t));
    }
}
