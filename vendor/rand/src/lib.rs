//! Hermetic stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements a deterministic xoshiro256** generator behind the
//! `Rng`/`RngCore`/`SeedableRng` trait surface the corpus and synth
//! generators use (`gen`, `gen_range`, `gen_bool`, `gen_ratio`).
//!
//! The numeric streams differ from upstream `rand`; all generated
//! corpora in this repository are self-consistent (seeded and
//! regenerated through this implementation), which is what the
//! experiments require — determinism, not upstream-bit-compatibility.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing convenience trait (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        f64::sample_standard(self) < p
    }

    /// Bernoulli draw with probability `numerator/denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % u64::from(denominator)) < u64::from(numerator)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** core shared by [`rngs::SmallRng`] and [`rngs::StdRng`].
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // Avoid the all-zero fixed point (cannot happen via splitmix64,
        // but keep the invariant explicit).
        if s == [0; 4] {
            s[0] = 1;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// A small, fast, deterministic generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// The "standard" generator (same core here; determinism is what
    /// the reproduction needs, not cryptographic strength).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(3..20);
            assert!((3..20).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let x: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn gen_ratio_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..12_000).filter(|_| rng.gen_ratio(1, 6)).count();
        assert!((1600..2400).contains(&hits), "hits={hits}");
    }
}
