//! Hermetic stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository has no access to a
//! registry, so the workspace vendors the *API subset it uses* of each
//! external dependency (see `vendor/README.md`). This crate provides
//! `Mutex` and `RwLock` with parking_lot's non-poisoning semantics,
//! implemented over `std::sync`. Lock poisoning is deliberately
//! swallowed: like the real parking_lot, a panic while holding a lock
//! does not make subsequent accesses fail.

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock that does not poison.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never errors: a
    /// poisoned lock is recovered transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock that does not poison.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 2);
        }
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn poison_is_recovered() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }
}
