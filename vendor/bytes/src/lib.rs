//! Hermetic stand-in for the `bytes` crate (see `vendor/README.md`).
//!
//! Provides the [`BytesMut`] growable buffer and the [`BufMut`] write
//! trait, covering exactly the subset the SAPK codec exercises.

/// A growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consumes the buffer, yielding its bytes.
    #[must_use]
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Write-side buffer operations (little-endian where applicable).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u16` in little-endian order.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_are_little_endian() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(0xAB);
        b.put_u16_le(0x0102);
        b.put_slice(&[9, 9]);
        assert_eq!(b.to_vec(), vec![0xAB, 0x02, 0x01, 9, 9]);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
    }
}
