//! Hermetic stand-in for the `criterion` crate (see
//! `vendor/README.md`).
//!
//! A wall-clock harness without criterion's statistics engine: each
//! benchmark warms up briefly, then reports the mean over a fixed
//! sample of timed batches to stdout. The registration surface
//! (`criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group`, `iter`, `iter_batched`) matches upstream usage
//! in this repo, so `cargo bench` runs the same benchmark set.

use std::time::{Duration, Instant};

/// How setup output is batched in [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// One setup per timed routine call.
    SmallInput,
    /// Same behavior here; accepted for API compatibility.
    LargeInput,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI filters are not implemented.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut routine);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.name);
        run_bench(&full, self.sample_size, &mut routine);
        self
    }

    /// Ends the group (output is flushed eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, amortized over a batch per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = self.iters_per_sample;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.samples.push(start.elapsed() / iters as u32);
    }

    /// Times `routine` on fresh input from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = self.iters_per_sample;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push(total / iters as u32);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, routine: &mut F) {
    // Calibration pass: size batches so one sample costs ~1ms, keeping
    // total runtime bounded for slow routines.
    let mut calib = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    routine(&mut calib);
    let per_iter = calib.samples.first().copied().unwrap_or(Duration::ZERO);
    let iters_per_sample = if per_iter < Duration::from_micros(50) {
        (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000) as u64
    } else {
        1
    };

    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample,
    };
    for _ in 0..sample_size {
        routine(&mut bencher);
    }
    let samples = &bencher.samples;
    assert!(
        !samples.is_empty(),
        "benchmark `{name}` never called iter/iter_batched"
    );
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "bench {name:<44} mean {:>12} min {:>12} max {:>12} ({} samples x {iters_per_sample} iters)",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
