//! Deterministic test RNG (xoshiro256** seeded via splitmix64).

/// The generator handed to strategies while a case runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s == [0; 4] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `0..bound` (`bound` must be positive).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is an empty range");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
