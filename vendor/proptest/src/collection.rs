//! Collection strategies.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
