//! Generate-only strategies: a [`Strategy`] produces one value per
//! call from the deterministic [`TestRng`].

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased strategies.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Wraps a non-empty arm list.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Regex-literal string strategy (the proptest idiom `"[a-z]{1,8}"`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}
