//! `any::<T>()` support.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<fn() -> T>);

/// The full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}
