//! The per-test case loop.

use crate::rng::TestRng;

/// Runner configuration (`cases` is the only knob this repo uses).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Runs `body` once per case with a deterministic per-case RNG.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when a case returns `Err`,
/// reporting the case index and seed so it can be replayed.
pub fn run<F>(config: ProptestConfig, file: &str, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    for case in 0..config.cases {
        let seed = fnv1a(file)
            ^ fnv1a(name).rotate_left(17)
            ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::from_seed(seed);
        if let Err(msg) = body(&mut rng) {
            panic!(
                "proptest `{name}` failed at case {case}/{} (seed {seed:#x}):\n{msg}",
                config.cases
            );
        }
    }
}
