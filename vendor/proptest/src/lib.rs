//! Hermetic stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Differences from upstream, deliberately accepted for this repo:
//!
//! - **No shrinking.** A failing case reports its inputs' `Debug` via
//!   the assertion message and the case seed; it is not minimized.
//! - **Deterministic seeding.** Case N of test T always sees the same
//!   input stream, derived from (file, test name, N). There is no
//!   persistence file; `.proptest-regressions` files are ignored.
//! - **Generate-only strategies.** `Strategy` is "produce a value from
//!   an RNG"; value trees are not materialized.
//!
//! The macro surface (`proptest!`, `prop_oneof!`, `prop_assert*!`),
//! the combinators (`prop_map`, tuples, ranges, regex-literal string
//! strategies, `collection::vec`, `option::of`, `any`, `Just`) and
//! `ProptestConfig::with_cases` match upstream usage in this repo.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod rng;
pub mod runner;
pub mod strategy;
pub mod string;

/// Everything the property tests import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::runner::ProptestConfig;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u8..10, name in "[a-z]{1,8}") { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::runner::run(
                $config,
                ::std::file!(),
                ::std::stringify!($name),
                |__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// Uniformly picks one of several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current case (with formatted context) unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if !(__left == __right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                __left, __right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if !(__left == __right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right`: {}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), __left, __right
            ));
        }
    }};
}

/// Fails the current case unless the operands compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if __left == __right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left != right`\n  both: {:?}", __left
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if __left == __right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left != right`: {}\n  both: {:?}",
                ::std::format!($($fmt)+), __left
            ));
        }
    }};
}
