//! `Option` strategies.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// The strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// Generates `None` a quarter of the time, `Some(inner)` otherwise
/// (matching upstream's 3:1 default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
