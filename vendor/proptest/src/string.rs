//! Regex-literal string generation: parses the small regex subset the
//! tests use (literals, escapes, `.`, classes, groups, alternation,
//! `{m,n}`/`?`/`*`/`+`) and samples a matching string.

use crate::rng::TestRng;

#[derive(Debug, Clone)]
enum Node {
    /// Concatenation.
    Seq(Vec<Node>),
    /// Alternation (`a|b|c`).
    Alt(Vec<Node>),
    /// Quantified node with an inclusive count range.
    Repeat(Box<Node>, u32, u32),
    /// Character class as inclusive ranges.
    Class(Vec<(char, char)>),
    /// A literal character.
    Lit(char),
    /// `.` — any printable character.
    AnyChar,
}

/// Generates a string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported subset (anchors, negated
/// classes, backreferences, lazy quantifiers).
#[must_use]
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let node = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
        pattern,
    }
    .parse();
    let mut out = String::new();
    emit(&node, rng, &mut out);
    out
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Seq(items) => {
            for item in items {
                emit(item, rng, out);
            }
        }
        Node::Alt(arms) => emit(&arms[rng.below(arms.len())], rng, out),
        Node::Repeat(inner, lo, hi) => {
            let n = *lo + rng.below((*hi - *lo + 1) as usize) as u32;
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
        Node::Class(ranges) => {
            // Weight ranges by width so classes stay uniform-ish.
            let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
            let mut pick = rng.below(total as usize) as u32;
            for (a, b) in ranges {
                let width = *b as u32 - *a as u32 + 1;
                if pick < width {
                    let c = char::from_u32(*a as u32 + pick).expect("in-range scalar");
                    out.push(c);
                    return;
                }
                pick -= width;
            }
            unreachable!("pick is bounded by the total width");
        }
        Node::Lit(c) => out.push(*c),
        Node::AnyChar => {
            // Mostly printable ASCII, occasionally multi-byte scalars to
            // stress UTF-8 handling in codecs.
            const EXOTIC: [char; 4] = ['\u{e9}', '\u{3bb}', '\u{2192}', '\u{1F600}'];
            if rng.below(16) == 0 {
                out.push(EXOTIC[rng.below(EXOTIC.len())]);
            } else {
                let c = char::from_u32(0x20 + rng.below(0x5F) as u32).expect("printable ASCII");
                out.push(c);
            }
        }
    }
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'a str,
}

impl Parser<'_> {
    fn fail(&self, msg: &str) -> ! {
        panic!(
            "proptest (vendored) regex `{}`: {msg} at position {}",
            self.pattern, self.pos
        );
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn parse(mut self) -> Node {
        let node = self.parse_alt();
        if self.pos != self.chars.len() {
            self.fail("unbalanced `)`");
        }
        node
    }

    fn parse_alt(&mut self) -> Node {
        let mut arms = vec![self.parse_seq()];
        while self.peek() == Some('|') {
            self.pos += 1;
            arms.push(self.parse_seq());
        }
        if arms.len() == 1 {
            arms.pop().expect("one arm")
        } else {
            Node::Alt(arms)
        }
    }

    fn parse_seq(&mut self) -> Node {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            items.push(self.parse_quantifier(atom));
        }
        if items.len() == 1 {
            items.pop().expect("one item")
        } else {
            Node::Seq(items)
        }
    }

    fn parse_atom(&mut self) -> Node {
        match self.peek() {
            Some('(') => {
                self.pos += 1;
                let inner = self.parse_alt();
                if self.peek() != Some(')') {
                    self.fail("missing `)`");
                }
                self.pos += 1;
                inner
            }
            Some('[') => {
                self.pos += 1;
                self.parse_class()
            }
            Some('.') => {
                self.pos += 1;
                Node::AnyChar
            }
            Some('\\') => {
                self.pos += 1;
                let c = self.peek().unwrap_or_else(|| self.fail("dangling `\\`"));
                self.pos += 1;
                Node::Lit(unescape(c))
            }
            Some('^') | Some('$') => self.fail("anchors are not supported"),
            Some(c) => {
                self.pos += 1;
                Node::Lit(c)
            }
            None => Node::Seq(Vec::new()),
        }
    }

    fn parse_class(&mut self) -> Node {
        if self.peek() == Some('^') {
            self.fail("negated classes are not supported");
        }
        let mut ranges = Vec::new();
        loop {
            let lo = match self.peek() {
                None => self.fail("unterminated class"),
                Some(']') => {
                    self.pos += 1;
                    break;
                }
                Some('\\') => {
                    self.pos += 1;
                    let c = self.peek().unwrap_or_else(|| self.fail("dangling `\\`"));
                    self.pos += 1;
                    unescape(c)
                }
                Some(c) => {
                    self.pos += 1;
                    c
                }
            };
            // `a-z` range (a trailing `-` is a literal).
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.pos += 1;
                let hi = match self.peek() {
                    None => self.fail("unterminated class range"),
                    Some('\\') => {
                        self.pos += 1;
                        let c = self.peek().unwrap_or_else(|| self.fail("dangling `\\`"));
                        self.pos += 1;
                        unescape(c)
                    }
                    Some(c) => {
                        self.pos += 1;
                        c
                    }
                };
                if hi < lo {
                    self.fail("inverted class range");
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        if ranges.is_empty() {
            self.fail("empty class");
        }
        Node::Class(ranges)
    }

    fn parse_quantifier(&mut self, atom: Node) -> Node {
        match self.peek() {
            Some('?') => {
                self.pos += 1;
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('*') => {
                self.pos += 1;
                Node::Repeat(Box::new(atom), 0, 8)
            }
            Some('+') => {
                self.pos += 1;
                Node::Repeat(Box::new(atom), 1, 8)
            }
            Some('{') => {
                self.pos += 1;
                let lo = self.parse_number();
                let hi = if self.peek() == Some(',') {
                    self.pos += 1;
                    self.parse_number()
                } else {
                    lo
                };
                if self.peek() != Some('}') {
                    self.fail("missing `}`");
                }
                self.pos += 1;
                if hi < lo {
                    self.fail("inverted repetition range");
                }
                Node::Repeat(Box::new(atom), lo, hi)
            }
            _ => atom,
        }
    }

    fn parse_number(&mut self) -> u32 {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            self.fail("expected a number");
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .unwrap_or_else(|_| self.fail("repetition count overflow"))
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        // `\.`, `\(`, `\)`, `\\`, `\[`, `\-`, `\$` etc.: the char itself.
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(7)
    }

    #[test]
    fn class_and_repetition() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-z][a-z0-9_]{0,8}", &mut r);
            assert!((1..=9).contains(&s.chars().count()), "bad len: {s:?}");
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn groups_alternation_and_escapes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("\\((I|J|Z){0,3}\\)(V|I|Z)", &mut r);
            assert!(s.starts_with('('), "{s:?}");
            assert!(s.contains(')'), "{s:?}");
            let inner = &s[1..s.find(')').unwrap()];
            assert!(inner.len() <= 3 && inner.chars().all(|c| "IJZ".contains(c)));
        }
    }

    #[test]
    fn dotted_package_names() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_matching("[a-z]{2,4}(\\.[A-Z][a-z]{0,3}){1,2}", &mut r);
            assert!(s.contains('.'), "{s:?}");
        }
    }

    #[test]
    fn any_char_is_valid_utf8_and_bounded() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching(".{0,24}", &mut r);
            assert!(s.chars().count() <= 24);
        }
    }
}
