//! Hermetic stand-in for the `serde_derive` crate (see
//! `vendor/README.md`).
//!
//! Generates `Serialize`/`Deserialize` impls against the vendored
//! `serde` value model. The item grammar is parsed directly from the
//! `proc_macro` token stream (no `syn`/`quote` — those are unavailable
//! offline), which is tractable because the workspace only derives on
//! non-generic structs and enums, with `#[serde(transparent)]` as the
//! sole recognized attribute.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::iter::Peekable;

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

struct Input {
    name: String,
    transparent: bool,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VarShape,
}

enum VarShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives `serde::Serialize` (value-model form).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (value-model form).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    let transparent = skip_attributes(&mut iter);
    skip_visibility(&mut iter);

    let keyword = expect_ident(&mut iter, "`struct` or `enum`");
    let name = expect_ident(&mut iter, "type name");
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        assert!(
            p.as_char() != '<',
            "serde_derive (vendored): generic type `{name}` is not supported"
        );
    }

    let kind = match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(&g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(&g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde_derive (vendored): unexpected struct body: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(&g))
            }
            other => panic!("serde_derive (vendored): unexpected enum body: {other:?}"),
        },
        other => panic!("serde_derive (vendored): expected struct/enum, found `{other}`"),
    };

    Input {
        name,
        transparent,
        kind,
    }
}

/// Consumes leading `#[...]` attributes; reports whether any was
/// `#[serde(transparent)]`. Unknown `#[serde(...)]` contents are
/// rejected so unsupported options fail loudly instead of silently.
fn skip_attributes(iter: &mut TokenIter) -> bool {
    let mut transparent = false;
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next();
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                transparent |= attr_is_serde_transparent(&g);
            }
            other => panic!("serde_derive (vendored): malformed attribute: {other:?}"),
        }
    }
    transparent
}

fn attr_is_serde_transparent(attr_body: &Group) -> bool {
    let mut tokens = attr_body.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(args)) if args.delimiter() == Delimiter::Parenthesis => {
            let rendered = args.stream().to_string();
            assert!(
                rendered == "transparent",
                "serde_derive (vendored): unsupported #[serde({rendered})]"
            );
            true
        }
        _ => false,
    }
}

fn skip_visibility(iter: &mut TokenIter) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

fn expect_ident(iter: &mut TokenIter, what: &str) -> String {
    match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive (vendored): expected {what}, found {other:?}"),
    }
}

/// Consumes a type up to (and including) the next comma at angle-depth
/// zero. `>>` arrives as two `>` puncts, so per-char depth tracking is
/// exact.
fn skip_type(iter: &mut TokenIter) {
    let mut depth = 0i32;
    while let Some(tt) = iter.next() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => break,
                _ => {}
            }
        }
    }
}

fn parse_named_fields(body: &Group) -> Vec<String> {
    let mut iter = body.stream().into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("serde_derive (vendored): expected `:`, found {other:?}"),
                }
                skip_type(&mut iter);
            }
            other => panic!("serde_derive (vendored): expected field name, found {other:?}"),
        }
    }
    fields
}

fn count_tuple_fields(body: &Group) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut in_segment = false;
    for tt in body.stream() {
        match &tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    depth += 1;
                    in_segment = true;
                }
                '>' => {
                    depth -= 1;
                    in_segment = true;
                }
                ',' if depth == 0 => {
                    if in_segment {
                        count += 1;
                    }
                    in_segment = false;
                }
                _ => in_segment = true,
            },
            _ => in_segment = true,
        }
    }
    if in_segment {
        count += 1;
    }
    count
}

fn parse_variants(body: &Group) -> Vec<Variant> {
    let mut iter = body.stream().into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut iter);
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                let name = id.to_string();
                let shape = match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = count_tuple_fields(g);
                        iter.next();
                        VarShape::Tuple(n)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let names = parse_named_fields(g);
                        iter.next();
                        VarShape::Named(names)
                    }
                    _ => VarShape::Unit,
                };
                // Explicit discriminants (`= expr`) are not used in this
                // workspace; consume defensively up to the next comma.
                if let Some(TokenTree::Punct(p)) = iter.peek() {
                    if p.as_char() == '=' {
                        iter.next();
                        while let Some(tt) = iter.peek() {
                            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                                break;
                            }
                            iter.next();
                        }
                    }
                }
                if let Some(TokenTree::Punct(p)) = iter.peek() {
                    if p.as_char() == ',' {
                        iter.next();
                    }
                }
                variants.push(Variant { name, shape });
            }
            other => panic!("serde_derive (vendored): expected variant, found {other:?}"),
        }
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation (string-built, fully qualified paths)
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            if input.transparent {
                let f = &fields[0];
                format!("::serde::Serialize::to_value(&self.{f})")
            } else {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!("::serde::Value::Object(::std::vec![{}])", entries.join(", "))
            }
        }
        Kind::TupleStruct(n) => {
            if *n == 1 || input.transparent {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            }
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| gen_serialize_variant(name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_serialize_variant(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        VarShape::Unit => format!(
            "{enum_name}::{vname} => \
             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        VarShape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let payload = if *n == 1 {
                "::serde::Serialize::to_value(__f0)".to_string()
            } else {
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            };
            format!(
                "{enum_name}::{vname}({}) => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{vname}\"), {payload})]),",
                binds.join(", ")
            )
        }
        VarShape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{vname}\"), \
                 ::serde::Value::Object(::std::vec![{}]))]),",
                fields.join(", "),
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            if input.transparent {
                let f = &fields[0];
                format!(
                    "::std::result::Result::Ok({name} {{ \
                     {f}: ::serde::Deserialize::from_value(value)? }})"
                )
            } else {
                let field_inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(\
                             ::serde::__field(value, \"{f}\"))?"
                        )
                    })
                    .collect();
                format!(
                    "match value {{ ::serde::Value::Object(_) => {{}}, __other => \
                     return ::std::result::Result::Err(::serde::__type_error(\"object\", __other)) }}\n\
                     ::std::result::Result::Ok({name} {{ {} }})",
                    field_inits.join(", ")
                )
            }
        }
        Kind::TupleStruct(n) => {
            if *n == 1 || input.transparent {
                format!(
                    "::std::result::Result::Ok({name}(\
                     ::serde::Deserialize::from_value(value)?))"
                )
            } else {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "let __items = match value {{ \
                     ::serde::Value::Array(__items) => __items, \
                     __other => return ::std::result::Result::Err(\
                     ::serde::__type_error(\"array\", __other)) }};\n\
                     if __items.len() != {n} {{ \
                     return ::std::result::Result::Err(::serde::Error::custom(\
                     \"wrong tuple-struct arity\")); }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            }
        }
        Kind::UnitStruct => format!(
            "match value {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), \
             __other => ::std::result::Result::Err(\
             ::serde::__type_error(\"null\", __other)) }}"
        ),
        Kind::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = Vec::new();
    let mut payload_arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            VarShape::Unit => unit_arms.push(format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
            )),
            VarShape::Tuple(n) => {
                let arm = if *n == 1 {
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__payload)?)),"
                    )
                } else {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "\"{vname}\" => {{ \
                         let __items = match __payload {{ \
                         ::serde::Value::Array(__items) => __items, \
                         __other => return ::std::result::Result::Err(\
                         ::serde::__type_error(\"array\", __other)) }}; \
                         if __items.len() != {n} {{ \
                         return ::std::result::Result::Err(::serde::Error::custom(\
                         \"wrong variant arity\")); }} \
                         ::std::result::Result::Ok({name}::{vname}({})) }}",
                        items.join(", ")
                    )
                };
                payload_arms.push(arm);
            }
            VarShape::Named(fields) => {
                let field_inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(\
                             ::serde::__field(__payload, \"{f}\"))?"
                        )
                    })
                    .collect();
                payload_arms.push(format!(
                    "\"{vname}\" => {{ \
                     match __payload {{ ::serde::Value::Object(_) => {{}}, __other => \
                     return ::std::result::Result::Err(\
                     ::serde::__type_error(\"object\", __other)) }} \
                     ::std::result::Result::Ok({name}::{vname} {{ {} }}) }}",
                    field_inits.join(", ")
                ));
            }
        }
    }
    format!(
        "match value {{\n\
         ::serde::Value::Str(__s) => match __s.as_str() {{\n{}\n\
         __other => ::std::result::Result::Err(::serde::Error::custom(\
         ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
         ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
         let (__tag, __payload) = &__entries[0];\n\
         match __tag.as_str() {{\n{}\n\
         __other => ::std::result::Result::Err(::serde::Error::custom(\
         ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
         __other => ::std::result::Result::Err(\
         ::serde::__type_error(\"externally tagged enum\", __other)),\n}}",
        unit_arms.join("\n"),
        payload_arms.join("\n")
    )
}
