//! End-to-end pipeline tests across crates: the on-disk container, the
//! lazy loader, late binding, and the full detector stack working
//! together.

use std::sync::Arc;

use saint_adf::{well_known, AndroidFramework, SynthConfig};
use saint_corpus::{benchmark_suite, RealWorldConfig, RealWorldCorpus};
use saint_ir::{
    codec, ApiLevel, ApkBuilder, ClassBuilder, ClassOrigin, DexFile, InvokeKind, MethodRef,
};
use saintdroid::{CompatDetector, MismatchKind, SaintDroid};

fn tool() -> SaintDroid {
    SaintDroid::new(Arc::new(AndroidFramework::curated()))
}

#[test]
fn analysis_is_invariant_under_codec_roundtrip() {
    let t = tool();
    for app in benchmark_suite() {
        let direct = t.analyze(&app.apk).unwrap();
        let bytes = codec::encode_apk(&app.apk);
        let reparsed = codec::decode_apk(&bytes).unwrap();
        let via_disk = t.analyze(&reparsed).unwrap();
        assert_eq!(
            direct.mismatches, via_disk.mismatches,
            "{}: reports must not depend on the serialization path",
            app.name
        );
    }
}

#[test]
fn analysis_is_deterministic_across_runs() {
    let t = tool();
    let corpus = RealWorldCorpus::new(RealWorldConfig::small());
    for i in [0usize, 7, 23] {
        let apk = corpus.get(i).apk;
        let a = t.analyze(&apk).unwrap();
        let b = t.analyze(&apk).unwrap();
        assert_eq!(a.mismatches, b.mismatches, "app {i}");
    }
}

#[test]
fn late_bound_payload_issues_detected_end_to_end() {
    // An app whose only issue lives in a secondary dex reached through
    // DexClassLoader.loadClass("plug.Plugin") — the paper's late
    // binding scenario (§III-A).
    let mut payload = DexFile::new("assets/plugin.dex");
    payload
        .add_class(
            ClassBuilder::new("plug.Plugin", ClassOrigin::DynamicPayload)
                .method("run", "()V", |b| {
                    b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
                    b.ret_void();
                })
                .unwrap()
                .build(),
        )
        .unwrap();
    let main = ClassBuilder::new("host.Main", ClassOrigin::App)
        .extends("android.app.Activity")
        .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
            let loader = b.alloc_reg();
            let name = b.alloc_reg();
            b.new_instance(loader, "dalvik.system.DexClassLoader");
            b.const_str(name, "plug.Plugin");
            b.invoke(
                InvokeKind::Virtual,
                well_known::dex_class_loader_load_class(),
                &[loader, name],
                None,
            );
            b.ret_void();
        })
        .unwrap()
        .build();
    let apk = ApkBuilder::new("host", ApiLevel::new(21), ApiLevel::new(28))
        .activity("host.Main")
        .class(main)
        .unwrap()
        .secondary_dex(payload)
        .build();

    let report = tool().analyze(&apk).unwrap();
    assert_eq!(report.api_count(), 1, "{report}");
    let m = report.of_kind(MismatchKind::ApiInvocation).next().unwrap();
    assert_eq!(m.site.class.as_str(), "plug.Plugin");
}

#[test]
fn code_loaded_from_outside_the_package_is_a_terminal() {
    // loadClass("remote.Blob") with no bundled payload: statically
    // unanalyzable (paper §III-A caveat) — no crash, no phantom
    // findings.
    let main = ClassBuilder::new("host.Main", ClassOrigin::App)
        .method("boot", "()V", |b| {
            let name = b.alloc_reg();
            b.const_str(name, "remote.Blob");
            b.invoke_static(
                MethodRef::new(
                    "java.lang.Class",
                    "forName",
                    "(Ljava/lang/String;)Ljava/lang/Class;",
                ),
                &[name],
                None,
            );
            b.ret_void();
        })
        .unwrap()
        .build();
    let apk = ApkBuilder::new("host", ApiLevel::new(21), ApiLevel::new(28))
        .class(main)
        .unwrap()
        .build();
    let report = tool().analyze(&apk).unwrap();
    assert!(report.is_clean(), "{report}");
}

#[test]
fn bigger_framework_does_not_change_findings() {
    // Detection results depend on API lifetimes, not framework bulk:
    // the same app analyzed against the curated and the expanded
    // framework yields the same report (the expansion only adds
    // unreachable classes for this app).
    let apk = saint_corpus::cases::offline_calendar();
    let small = SaintDroid::new(Arc::new(AndroidFramework::curated()))
        .analyze(&apk)
        .unwrap();
    let big = SaintDroid::new(Arc::new(
        AndroidFramework::with_scale(&SynthConfig::small()),
    ))
    .analyze(&apk)
    .unwrap();
    assert_eq!(small.mismatches, big.mismatches);
    // …but the lazy loader's footprint stays in the same ballpark even
    // though the framework grew.
    assert!(big.meter.classes_loaded <= small.meter.classes_loaded + 5);
}

#[test]
fn report_json_serializes() {
    let report = tool().analyze(&saint_corpus::cases::kolab_notes()).unwrap();
    let json = serde_json::to_string_pretty(&report).unwrap();
    assert!(json.contains("PermissionRequest"));
    let back: saintdroid::Report = serde_json::from_str(&json).unwrap();
    assert_eq!(back.mismatches, report.mismatches);
}
