//! Cross-validation: static detection must be *complete* relative to
//! dynamic observation. Every `NoSuchMethodError` the interpreter
//! observes at a supported device level — outside the documented
//! anonymous-class blind spot — must correspond to a static API
//! finding at the same site against the same API. (The converse does
//! not hold: static analysis is deliberately conservative.)

use std::sync::Arc;

use saint_adf::AndroidFramework;
use saint_corpus::{benchmark_suite, RealWorldConfig, RealWorldCorpus};
use saint_dynamic::{entry_points, CrashKind, Device, Simulator};
use saint_ir::Apk;
use saintdroid::{CompatDetector, MismatchKind, Report, SaintDroid};

fn check_app_at(
    fw: &Arc<AndroidFramework>,
    saint: &SaintDroid,
    apk: &Apk,
    label: &str,
    level: saint_ir::ApiLevel,
) {
    let report: Report = saint.analyze(apk).expect("SAINTDroid analyzes any app");
    let entries = entry_points(apk);
    let mut sim = Simulator::new(apk, fw, Device::at(level));
    let run = sim.run_entries(&entries);
    for crash in &run.crashes {
        if crash.kind != CrashKind::NoSuchMethod {
            continue;
        }
        let Some(frame) = &crash.app_frame else {
            continue;
        };
        if frame.class.is_anonymous_inner() {
            continue; // the documented §VI blind spot
        }
        let predicted = report
            .of_kind(MismatchKind::ApiInvocation)
            .any(|m| m.api == crash.api && &m.site == frame);
        assert!(
            predicted,
            "{label}: observed crash not statically predicted at level {level}:\n  \
             site {frame}\n  api {}\nreport:\n{report}",
            crash.api
        );
    }
}

fn check_app(fw: &Arc<AndroidFramework>, saint: &SaintDroid, apk: &Apk, label: &str) {
    let level = apk.manifest.supported_levels().min();
    check_app_at(fw, saint, apk, label, level);
}

#[test]
fn benchmark_crashes_are_all_predicted() {
    let fw = Arc::new(AndroidFramework::curated());
    let saint = SaintDroid::new(Arc::clone(&fw));
    for app in benchmark_suite() {
        check_app(&fw, &saint, &app.apk, app.name);
    }
}

#[test]
fn generated_corpus_crashes_are_all_predicted() {
    let fw = Arc::new(AndroidFramework::with_scale(
        &saint_adf::SynthConfig::small(),
    ));
    let saint = SaintDroid::new(Arc::clone(&fw));
    let corpus = RealWorldCorpus::new(RealWorldConfig::small());
    for i in 0..25 {
        let app = corpus.get(i);
        check_app(&fw, &saint, &app.apk, &format!("rw app {i}"));
    }
}

/// Sweeps the corpus-generator knobs that change which APIs apps reach
/// and which levels they support — `force_target` (store-policy pinned
/// targets) and `api_skew` (head-heavy API vocabulary) — and checks
/// completeness at *every* supported device level, not just the
/// minimum: a crash the interpreter can observe anywhere in the
/// supported range must be covered by a static finding.
#[test]
fn knob_swept_corpora_crashes_are_all_predicted_at_every_level() {
    let fw = Arc::new(AndroidFramework::with_scale(
        &saint_adf::SynthConfig::small(),
    ));
    let saint = SaintDroid::new(Arc::clone(&fw));
    let base = RealWorldConfig::small();
    let sweeps: [(&str, Option<u8>, f64); 5] = [
        ("pinned target 23", Some(23), 0.0),
        ("pinned target 28", Some(28), 0.0),
        ("skew 1.0", None, 1.0),
        ("skew 2.5", None, 2.5),
        ("pinned 23 + skew 1.5", Some(23), 1.5),
    ];
    for (label, force_target, api_skew) in sweeps {
        let corpus = RealWorldCorpus::new(RealWorldConfig {
            force_target,
            api_skew,
            ..base.clone()
        });
        for i in 0..8 {
            let app = corpus.get(i);
            if let Some(t) = force_target {
                assert_eq!(
                    app.apk.manifest.target_sdk.get(),
                    t,
                    "{label}: force_target must pin the manifest target"
                );
            }
            for level in app.apk.manifest.supported_levels().iter() {
                check_app_at(&fw, &saint, &app.apk, &format!("{label}, app {i}"), level);
            }
        }
    }
}

#[test]
fn case_studies_crashes_are_all_predicted() {
    use saint_corpus::cases;
    let fw = Arc::new(AndroidFramework::curated());
    let saint = SaintDroid::new(Arc::clone(&fw));
    for (label, apk) in [
        ("offline_calendar", cases::offline_calendar()),
        ("fosdem", cases::fosdem()),
        ("kolab", cases::kolab_notes()),
        ("adaway", cases::adaway()),
    ] {
        check_app(&fw, &saint, &apk, label);
    }
}
