//! The future-work pipeline across the benchmark suite: SAINTDroid's
//! findings are dynamically verified, repaired, and the patched apps
//! re-checked by both the static detector and the interpreter.

use std::sync::Arc;

use saint_adf::AndroidFramework;
use saint_corpus::benchmark_suite;
use saint_dynamic::Verifier;
use saintdroid::repair::{repair, RepairAction, RepairOptions};
use saintdroid::{CompatDetector, SaintDroid};

fn stack() -> (Arc<AndroidFramework>, SaintDroid, Verifier) {
    let fw = Arc::new(AndroidFramework::curated());
    (
        Arc::clone(&fw),
        SaintDroid::new(Arc::clone(&fw)),
        Verifier::new(fw),
    )
}

#[test]
fn repair_clears_every_code_fixable_finding() {
    let (_, saint, _) = stack();
    let opts = RepairOptions {
        apply_manifest_fixes: true,
    };
    for app in benchmark_suite() {
        let report = saint.analyze(&app.apk).unwrap();
        if report.is_clean() {
            continue;
        }
        let outcome = repair(&app.apk, &report, &opts);
        let after = saint.analyze(&outcome.apk).unwrap();
        assert!(
            after.is_clean(),
            "{}: {} findings remain after repair:\n{after}",
            app.name,
            after.total()
        );
        // Actions emitted for the work done.
        assert!(!outcome.actions.is_empty(), "{}", app.name);
    }
}

#[test]
fn conservative_repair_never_touches_the_manifest() {
    let (_, saint, _) = stack();
    for app in benchmark_suite() {
        let report = saint.analyze(&app.apk).unwrap();
        let outcome = repair(&app.apk, &report, &RepairOptions::default());
        assert_eq!(outcome.apk.manifest.min_sdk, app.apk.manifest.min_sdk);
        assert_eq!(outcome.apk.manifest.target_sdk, app.apk.manifest.target_sdk);
        assert!(!outcome.actions.iter().any(|a| matches!(
            a,
            RepairAction::MinSdkRaised { .. } | RepairAction::TargetRaised { .. }
        )));
    }
}

#[test]
fn verification_confirms_truths_and_refutes_bait() {
    let (_, saint, verifier) = stack();
    let mut confirmed = 0usize;
    let mut refuted = 0usize;
    for app in benchmark_suite() {
        let report = saint.analyze(&app.apk).unwrap();
        let v = verifier.verify(&app.apk, &report);
        confirmed += v.confirmed.len();
        refuted += v.refuted.len();
        // Every refuted finding must be a non-truth (the bait):
        for r in &v.refuted {
            assert!(
                !app.truth.iter().any(|t| t.site == r.site && t.api == r.api),
                "{}: dynamic verification refuted a ground-truth issue: {r}",
                app.name
            );
        }
    }
    assert!(confirmed >= 28, "confirmed {confirmed}");
    assert!(refuted >= 1, "refuted {refuted}");
}

#[test]
fn repaired_apps_survive_their_crash_devices() {
    use saint_dynamic::{entry_points, Device, Simulator};
    let (fw, saint, _) = stack();
    let opts = RepairOptions {
        apply_manifest_fixes: true,
    };
    for app in benchmark_suite() {
        let report = saint.analyze(&app.apk).unwrap();
        if report.is_clean() {
            continue;
        }
        let outcome = repair(&app.apk, &report, &opts);
        // Execute the patched app at every level any finding implicated,
        // within its (possibly updated) supported range.
        let supported = outcome.apk.manifest.supported_levels();
        let levels: std::collections::BTreeSet<_> = report
            .mismatches
            .iter()
            .flat_map(|m| m.missing_levels.iter().copied())
            .filter(|l| supported.contains(*l))
            .collect();
        let entries = entry_points(&outcome.apk);
        for level in levels {
            let mut sim = Simulator::new(&outcome.apk, &fw, Device::hostile(level));
            let run = sim.run_entries(&entries);
            assert!(
                run.crashes.is_empty(),
                "{} still crashes at level {level} after repair: {:?}",
                app.name,
                run.crashes
            );
        }
    }
}
