//! Differential-correctness gate for the incremental scan layer: over
//! random app lineages — random churn, random introduce/fix events,
//! random version counts — scanning each version *incrementally*
//! (splicing cached per-group artifacts from prior versions) must
//! produce **byte-identical** reports to a cold full scan of the same
//! version, at both ends of the intra-app parallelism range
//! (`app_jobs ∈ {1, 8}`). Any divergence between the spliced merge and
//! the monolithic pipeline — root ordering, callback interleaving,
//! permission gate recomputation, meter reconstruction — surfaces here
//! as a JSON byte diff.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use saint_adf::{AndroidFramework, SynthConfig};
use saint_corpus::{generate_lineage, LineageConfig, RealWorldConfig};
use saint_delta::DeltaScanner;
use saintdroid::SaintDroid;

/// One framework model shared across cases: synthesis dominates the
/// per-case cost otherwise, and the tool itself is stateless between
/// scans (no scan cache attached).
fn tool() -> &'static SaintDroid {
    static TOOL: OnceLock<SaintDroid> = OnceLock::new();
    TOOL.get_or_init(|| {
        SaintDroid::new(Arc::new(
            AndroidFramework::with_scale(&SynthConfig::small()),
        ))
    })
}

fn fresh_store_dir() -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "saint-incr-parity-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn arb_lineage() -> impl Strategy<Value = LineageConfig> {
    (
        any::<u64>(),
        2usize..=4,
        // Churn percentage — the vendored proptest has no f64 ranges.
        2u32..40,
        0usize..6,
        proptest::option::of(1usize..4),
        proptest::option::of(1usize..4),
    )
        .prop_map(
            |(seed, versions, churn_pct, app_index, introduce_at, fix_at)| {
                let churn = f64::from(churn_pct) / 100.0;
                let mut base = RealWorldConfig::small();
                base.apps = 6;
                LineageConfig {
                    base,
                    app_index,
                    versions,
                    churn,
                    seed,
                    introduce_at: introduce_at.filter(|&v| v < versions),
                    // Only meaningful after an introduce; earlier fixes are
                    // no-ops, which is fine — the generator tolerates them.
                    fix_at: fix_at.filter(|&v| v < versions),
                }
            },
        )
}

/// Canonical report bytes with the one nondeterministic field zeroed.
fn canon(report: &saintdroid::Report) -> String {
    let mut r = report.clone();
    r.duration = std::time::Duration::ZERO;
    serde_json::to_string(&r).expect("serialize report")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn incremental_reports_are_byte_identical_to_full(cfg in arb_lineage()) {
        let lineage = generate_lineage(&cfg);
        let tool = tool();

        for app_jobs in [1usize, 8] {
            let dir = fresh_store_dir();
            let scanner = DeltaScanner::new(&dir);
            let mut hits_across_lineage = 0u64;

            for (label, apk) in &lineage {
                let full = tool.run_with_jobs(apk, app_jobs);
                let (incremental, stats) = scanner.scan(tool, apk, app_jobs);
                prop_assert_eq!(
                    canon(&full),
                    canon(&incremental),
                    "report for {} {} diverged (app_jobs={})",
                    apk.manifest.package,
                    label,
                    app_jobs
                );
                prop_assert_eq!(
                    stats.hits + stats.misses,
                    stats.classes_seen,
                    "delta counter conservation broke at {}",
                    label
                );
                hits_across_lineage += stats.hits;
            }

            // With bounded churn, rescanning a lineage must actually
            // reuse work — otherwise the layer is a no-op with extra
            // steps. (v1.. always share unchanged groups with v0.)
            prop_assert!(
                hits_across_lineage > 0,
                "no artifact was ever reused across {} versions",
                lineage.len()
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// The whole-app fast path: scanning the *same* bytes twice must hit
/// the app-level artifact (no per-group work at all) and still replay
/// the identical report.
#[test]
fn unchanged_rescan_takes_the_app_fast_path() {
    let lineage = generate_lineage(&LineageConfig::small());
    let (_, apk) = &lineage[0];
    let tool = tool();
    let dir = fresh_store_dir();
    let scanner = DeltaScanner::new(&dir);

    let (first, cold) = scanner.scan(tool, apk, 1);
    assert!(!cold.app_hit, "cold scan cannot hit the app artifact");
    let (second, warm) = scanner.scan(tool, apk, 1);
    assert!(
        warm.app_hit,
        "byte-identical rescan must take the fast path"
    );
    assert_eq!(warm.reanalyzed, 0, "fast path must not reanalyze classes");
    assert_eq!(warm.hits, warm.classes_seen);
    assert_eq!(canon(&first), canon(&second));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The byte-keyed fast path: scanning an app alongside its encoded
/// container must replay on identical bytes, degrade to the structural
/// splice on changed bytes, and stay byte-identical to a full scan in
/// both cases. A fresh scanner over the same store also replays —
/// the byte-keyed artifact is persisted, not just memoized.
#[test]
fn encoded_rescan_replays_and_churn_degrades_to_splice() {
    let lineage = generate_lineage(&LineageConfig::small());
    let tool = tool();
    let dir = fresh_store_dir();
    let scanner = DeltaScanner::new(&dir);

    let (_, v0) = &lineage[0];
    let (_, v1) = &lineage[1];
    let sapk0 = saint_ir::codec::encode_apk(v0);
    let sapk1 = saint_ir::codec::encode_apk(v1);

    let (first, cold) = scanner.scan_encoded(tool, &sapk0, v0, 1);
    assert!(!cold.app_hit, "cold byte-keyed scan cannot hit");
    assert_eq!(canon(&first), canon(&tool.run_with_jobs(v0, 1)));

    let (second, warm) = scanner.scan_encoded(tool, &sapk0, v0, 1);
    assert!(warm.app_hit, "identical container bytes must replay");
    assert_eq!(warm.hits, warm.classes_seen);
    assert_eq!(canon(&first), canon(&second));

    // A fresh process over the same store replays from disk.
    let (replayed, fresh) = DeltaScanner::new(&dir).scan_encoded(tool, &sapk0, v0, 1);
    assert!(
        fresh.app_hit,
        "byte-keyed artifact must persist across scanners"
    );
    assert_eq!(canon(&first), canon(&replayed));

    // The next version misses on bytes but splices structurally.
    let (evolved, churned) = scanner.scan_encoded(tool, &sapk1, v1, 1);
    assert!(!churned.app_hit, "changed bytes must not replay");
    assert!(churned.hits > 0, "unchanged groups must still splice");
    assert_eq!(canon(&evolved), canon(&tool.run_with_jobs(v1, 1)));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The evolution report over the canned lineage: the injected
/// incompatibility must be attributed to its introduce version and its
/// fix version exactly.
#[test]
fn history_attributes_introduce_and_fix_versions() {
    let cfg = LineageConfig::small();
    let lineage = generate_lineage(&cfg);
    let tool = tool();
    let dir = fresh_store_dir();
    let scanner = DeltaScanner::new(&dir);

    let evolution = saint_delta::scan_history(&scanner, tool, &lineage, 1);
    assert_eq!(evolution.versions.len(), lineage.len());

    let evo_entries: Vec<_> = evolution
        .entries
        .iter()
        .filter(|e| e.key.contains(saint_corpus::EVO_CLASS))
        .collect();
    assert!(
        !evo_entries.is_empty(),
        "the injected mismatch never surfaced in the evolution report"
    );
    for entry in evo_entries {
        assert_eq!(entry.introduced, "v1", "wrong introduce version");
        assert_eq!(entry.fixed.as_deref(), Some("v3"), "wrong fix version");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
