//! Robustness property for the delta artifact store: no corrupted
//! `.sdlt` artifact — random bit flips, truncations, version skews, or
//! any combination — may panic a load or leak a wrong report. Direct
//! loads must fail with a typed [`DeltaError`]; a scan over a poisoned
//! store must silently degrade the damaged entries to cache misses and
//! still produce a report **byte-identical** to a full scan. Flips
//! that land in the payload *with a re-sealed checksum* exercise the
//! JSON decode layer behind the checksum gate, not just the gate.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use proptest::collection::vec;
use proptest::prelude::*;
use saint_adf::{AndroidFramework, SynthConfig};
use saint_corpus::{generate_lineage, LineageConfig};
use saint_delta::{DeltaError, DeltaScanner};
use saint_frozen::{fnv1a, FNV_OFFSET};
use saintdroid::SaintDroid;

fn tool() -> &'static SaintDroid {
    static TOOL: OnceLock<SaintDroid> = OnceLock::new();
    TOOL.get_or_init(|| {
        SaintDroid::new(Arc::new(
            AndroidFramework::with_scale(&SynthConfig::small()),
        ))
    })
}

/// The fixture app and its canonical full-scan report, built once.
fn fixture() -> &'static (saint_ir::Apk, String) {
    static ONCE: OnceLock<(saint_ir::Apk, String)> = OnceLock::new();
    ONCE.get_or_init(|| {
        let lineage = generate_lineage(&LineageConfig::small());
        let apk = lineage[1].1.clone();
        let mut report = tool().run_with_jobs(&apk, 1);
        report.duration = std::time::Duration::ZERO;
        let json = serde_json::to_string(&report).expect("serialize report");
        (apk, json)
    })
}

fn fresh_store_dir() -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "saint-corrupt-delta-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

#[derive(Debug, Clone)]
struct Corruption {
    /// Which store files the corruption hits (modulo file count).
    victims: Vec<usize>,
    /// `(position, bit)` pairs, positions modulo file length.
    flips: Vec<(usize, u8)>,
    /// Keep-length, applied modulo `len + 1`.
    truncate_to: Option<usize>,
    /// Overwrite the header version with this value.
    skew_version: Option<u32>,
    /// Instead of the above: truncate the *payload* and re-seal the
    /// header checksum, pushing checksum-valid damage past the gate
    /// into the JSON decoder. (Re-sealing after random bit flips is
    /// deliberately not modeled — a flipped digit re-sealed is
    /// indistinguishable from a legitimate artifact, which is beyond
    /// any checksum's threat model.)
    fix_checksum: bool,
}

fn arb_corruption() -> impl Strategy<Value = Corruption> {
    (
        vec(any::<usize>(), 1..3),
        vec((any::<usize>(), 0u8..8), 0..6),
        proptest::option::of(any::<usize>()),
        proptest::option::of(any::<u32>()),
        any::<bool>(),
    )
        .prop_map(
            |(victims, flips, truncate_to, skew_version, fix_checksum)| Corruption {
                victims,
                flips,
                truncate_to,
                skew_version,
                fix_checksum,
            },
        )
}

fn corrupt_file(path: &std::path::Path, spec: &Corruption) {
    let mut bytes = std::fs::read(path).expect("read artifact");
    if spec.fix_checksum {
        // Checksum-valid payload truncation. Every artifact payload is
        // a JSON object, so any strict prefix is invalid JSON — the
        // decoder behind the checksum gate must fail typed, not panic.
        if bytes.len() > 16 {
            let payload_len = bytes.len() - 16;
            let keep = spec.truncate_to.unwrap_or(0) % payload_len;
            bytes.truncate(16 + keep);
            let sum = fnv1a(&bytes[16..], FNV_OFFSET);
            bytes[8..16].copy_from_slice(&sum.to_le_bytes());
        }
    } else {
        if let Some(keep) = spec.truncate_to {
            bytes.truncate(keep % (bytes.len() + 1));
        }
        for &(pos, bit) in &spec.flips {
            if !bytes.is_empty() {
                let at = pos % bytes.len();
                bytes[at] ^= 1 << bit;
            }
        }
        if let Some(v) = spec.skew_version {
            if bytes.len() >= 8 {
                bytes[4..8].copy_from_slice(&v.to_le_bytes());
            }
        }
    }
    std::fs::write(path, &bytes).expect("write corrupted artifact");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn corrupted_stores_never_panic_or_change_reports(spec in arb_corruption()) {
        let (apk, want) = fixture();
        let dir = fresh_store_dir();
        let scanner = DeltaScanner::new(&dir);

        // Populate the store, then vandalize a selection of artifacts.
        let _ = scanner.scan(tool(), apk, 1);
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
            .expect("read store dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        files.sort();
        prop_assert!(!files.is_empty(), "store not populated");
        for &v in &spec.victims {
            corrupt_file(&files[v % files.len()], &spec);
        }

        // A rescan over the poisoned store must neither unwind nor
        // emit anything but the canonical report: damaged artifacts
        // degrade to misses and get reanalyzed. A *fresh* scanner
        // models a new process over the vandalized store — and keeps
        // the populating scanner's in-process replay memo from serving
        // the rescan before it ever touches disk.
        let rescanner = DeltaScanner::new(&dir);
        let outcome = catch_unwind(AssertUnwindSafe(|| rescanner.scan(tool(), apk, 1)))
            .map_err(|_| "scan panicked on a corrupted store".to_string())?;
        let (mut report, stats) = outcome;
        report.duration = std::time::Duration::ZERO;
        let got = serde_json::to_string(&report).expect("serialize report");
        prop_assert_eq!(&got, want, "corrupted store changed the report");
        prop_assert_eq!(
            stats.hits + stats.misses,
            stats.classes_seen,
            "counter conservation broke under corruption"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Direct store loads surface each corruption class as its typed
/// error: skew → `VersionSkew`, truncation → `Truncated`, payload
/// damage → `ChecksumMismatch`, header damage → `BadMagic`.
#[test]
fn typed_errors_name_the_corruption() {
    let (apk, _) = fixture();
    let dir = fresh_store_dir();
    let scanner = DeltaScanner::new(&dir);
    let _ = scanner.scan(tool(), apk, 1);
    let path = std::fs::read_dir(&dir)
        .expect("read store dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("group-"))
        })
        .expect("a group artifact exists");
    let key = u64::from_str_radix(
        path.file_stem()
            .and_then(|s| s.to_str())
            .and_then(|s| s.strip_prefix("group-"))
            .expect("key in file name"),
        16,
    )
    .expect("hex key");
    let pristine = std::fs::read(&path).expect("read artifact");
    let store = scanner.store();

    let mut skewed = pristine.clone();
    skewed[4..8].copy_from_slice(&7u32.to_le_bytes());
    std::fs::write(&path, &skewed).unwrap();
    assert!(matches!(
        store.load_group(key),
        Err(DeltaError::VersionSkew { found: 7, .. })
    ));

    std::fs::write(&path, &pristine[..12]).unwrap();
    assert!(matches!(
        store.load_group(key),
        Err(DeltaError::Truncated { len: 12 })
    ));

    let mut flipped = pristine.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 1;
    std::fs::write(&path, &flipped).unwrap();
    assert!(matches!(
        store.load_group(key),
        Err(DeltaError::ChecksumMismatch)
    ));

    let mut unmagiced = pristine;
    unmagiced[0] = b'X';
    std::fs::write(&path, &unmagiced).unwrap();
    assert!(matches!(store.load_group(key), Err(DeltaError::BadMagic)));

    let _ = std::fs::remove_dir_all(&dir);
}
