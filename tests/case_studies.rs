//! Paper §V-B case studies as executable assertions: one per mismatch
//! family, each checking the exact finding the paper narrates.

use std::sync::Arc;

use saint_adf::AndroidFramework;
use saint_corpus::cases;
use saintdroid::{CompatDetector, MismatchKind, SaintDroid};

fn tool() -> SaintDroid {
    SaintDroid::new(Arc::new(AndroidFramework::curated()))
}

#[test]
fn offline_calendar_api_invocation() {
    // "the invocation of the getFragmentManager() API method in
    // PreferencesActivity.onCreate causes an API invocation mismatch …
    // the app will crash if running on API levels 8 to [10]".
    let report = tool().analyze(&cases::offline_calendar()).unwrap();
    let hits: Vec<_> = report.of_kind(MismatchKind::ApiInvocation).collect();
    assert_eq!(hits.len(), 1);
    let m = hits[0];
    assert_eq!(&*m.api.name, "getFragmentManager");
    assert_eq!(m.api.class.as_str(), "android.app.Activity");
    assert_eq!(m.site.class.simple_name(), "PreferencesActivity");
    let missing: Vec<u8> = m.missing_levels.iter().map(|l| l.get()).collect();
    assert_eq!(missing, vec![8, 9, 10]);
}

#[test]
fn fosdem_api_callback() {
    // "ForegroundLinearLayout … overrides the
    // View.drawableHotspotChanged callback method, introduced in API
    // level 21. However, its minSdkVersion is API level 15".
    let report = tool().analyze(&cases::fosdem()).unwrap();
    let hits: Vec<_> = report.of_kind(MismatchKind::ApiCallback).collect();
    assert_eq!(hits.len(), 1);
    let m = hits[0];
    assert_eq!(&*m.api.name, "drawableHotspotChanged");
    assert_eq!(m.api.class.as_str(), "android.view.View");
    assert!(m.missing_levels.iter().all(|l| l.get() < 21));
}

#[test]
fn kolab_notes_permission_request() {
    // "The app targets API 26 and uses the WRITE_EXTERNAL_STORAGE
    // permission, but does not implement the methods to request the
    // permission at runtime."
    let report = tool().analyze(&cases::kolab_notes()).unwrap();
    let hits: Vec<_> = report.of_kind(MismatchKind::PermissionRequest).collect();
    assert_eq!(hits.len(), 1);
    assert_eq!(
        hits[0].permission.as_ref().unwrap().as_str(),
        "android.permission.WRITE_EXTERNAL_STORAGE"
    );
    assert!(report.of_kind(MismatchKind::PermissionRevocation).count() == 0);
}

#[test]
fn adaway_permission_revocation() {
    // "The app targets API level 22 and uses the
    // WRITE_EXTERNAL_STORAGE permission, which could be revoked by the
    // user when installed on a device running API 23 or greater."
    let report = tool().analyze(&cases::adaway()).unwrap();
    let hits: Vec<_> = report.of_kind(MismatchKind::PermissionRevocation).collect();
    assert_eq!(hits.len(), 1);
    let m = hits[0];
    assert!(m.missing_levels.iter().all(|l| l.get() >= 23));
    assert!(report.of_kind(MismatchKind::PermissionRequest).count() == 0);
}

#[test]
fn fixes_silence_the_findings() {
    // The paper's suggested fixes actually work in the model: raising
    // Offline Calendar's minSdkVersion to 11 clears the report.
    let mut apk = cases::offline_calendar();
    apk.manifest.min_sdk = saint_ir::ApiLevel::new(11);
    let report = tool().analyze(&apk).unwrap();
    assert!(report.is_clean(), "{report}");

    // And moving AdAway's target past 22 with a handler clears the
    // revocation finding (it becomes a request finding only while the
    // handler is missing).
    let mut adaway = cases::adaway();
    adaway.manifest.target_sdk = saint_ir::ApiLevel::new(26);
    let report = tool().analyze(&adaway).unwrap();
    assert_eq!(report.count(MismatchKind::PermissionRevocation), 0);
    assert_eq!(report.count(MismatchKind::PermissionRequest), 1);
}
