//! Repair algebra: repairing a repaired app must be a no-op (the
//! report is already clean), and repair must never *introduce*
//! findings of any kind.

use std::sync::Arc;

use saint_adf::AndroidFramework;
use saint_corpus::{benchmark_suite, RealWorldConfig, RealWorldCorpus};
use saintdroid::repair::{repair, RepairOptions};
use saintdroid::{CompatDetector, SaintDroid};

fn stack() -> SaintDroid {
    SaintDroid::new(Arc::new(AndroidFramework::curated()))
}

#[test]
fn repair_is_idempotent_on_benchmarks() {
    let saint = stack();
    let opts = RepairOptions {
        apply_manifest_fixes: true,
    };
    for app in benchmark_suite() {
        let r1 = saint.analyze(&app.apk).unwrap();
        let once = repair(&app.apk, &r1, &opts);
        let r2 = saint.analyze(&once.apk).unwrap();
        assert!(r2.is_clean(), "{}: first repair incomplete", app.name);
        let twice = repair(&once.apk, &r2, &opts);
        assert!(
            twice.actions.is_empty(),
            "{}: second repair acted on a clean app: {:?}",
            app.name,
            twice.actions
        );
        assert_eq!(
            once.apk, twice.apk,
            "{}: second repair changed the package",
            app.name
        );
    }
}

#[test]
fn repair_never_increases_findings_on_generated_apps() {
    let fw = Arc::new(AndroidFramework::with_scale(
        &saint_adf::SynthConfig::small(),
    ));
    let saint = SaintDroid::new(Arc::clone(&fw));
    let corpus = RealWorldCorpus::new(RealWorldConfig::small());
    let opts = RepairOptions {
        apply_manifest_fixes: true,
    };
    for i in 0..20 {
        let app = corpus.get(i);
        let before = saint.analyze(&app.apk).unwrap();
        if before.is_clean() {
            continue;
        }
        let out = repair(&app.apk, &before, &opts);
        let after = saint.analyze(&out.apk).unwrap();
        assert!(
            after.total() <= before.total(),
            "app {i}: repair increased findings {} -> {}\n{after}",
            before.total(),
            after.total()
        );
        // Guard synthesis must keep the package parseable.
        let bytes = saint_ir::codec::encode_apk(&out.apk);
        assert_eq!(saint_ir::codec::decode_apk(&bytes).unwrap(), out.apk);
    }
}
