//! Acceptance gate for the frozen artifact layer: scanning a corpus
//! straight out of frozen images must produce **byte-identical**
//! reports to the classic parse path — same packages, same mismatches,
//! same meters, byte-for-byte equal JSON — at both ends of the
//! intra-app parallelism range (`app_jobs ∈ {1, 8}`). The frozen side
//! runs the full warm-daemon shape deliberately: an *empty* framework
//! spec, a trusted attach (no checksum pass, no eager index walk), no
//! prewarm — every class body the scan touches is decoded lazily out
//! of the mapping. If any of those shortcuts changed a single report
//! byte, this test is where it surfaces.

use std::sync::{Arc, OnceLock};

use saint_adf::{AndroidFramework, FrameworkSpec, SynthConfig};
use saint_corpus::{RealWorldConfig, RealWorldCorpus};
use saint_frozen::{freeze_apks, freeze_framework, FrozenCorpus};
use saint_ir::Apk;
use saintdroid::ScanEngine;

/// The full 400-app acceptance corpus in release builds; debug builds
/// (tier-1 `cargo test`) scan a 24-app slice of the same generator so
/// the gate stays fast without changing what it checks.
fn configs() -> (SynthConfig, RealWorldConfig) {
    if cfg!(debug_assertions) {
        let mut corpus = RealWorldConfig::small();
        corpus.apps = 24;
        (SynthConfig::small(), corpus)
    } else {
        (SynthConfig::medium(), RealWorldConfig::medium())
    }
}

/// Corpus apks plus both frozen images, built once across test cases.
fn artifacts() -> &'static (Vec<Apk>, Vec<u8>, Vec<u8>) {
    static ONCE: OnceLock<(Vec<Apk>, Vec<u8>, Vec<u8>)> = OnceLock::new();
    ONCE.get_or_init(|| {
        let (synth, corpus_cfg) = configs();
        let corpus = RealWorldCorpus::new(corpus_cfg);
        let apks: Vec<Apk> = (0..corpus.len()).map(|i| corpus.get(i).apk).collect();
        let corpus_image = freeze_apks(&apks);
        let framework_image = freeze_framework(&AndroidFramework::with_scale(&synth));
        (apks, framework_image, corpus_image)
    })
}

#[test]
fn frozen_scan_reports_are_byte_identical_to_parsed() {
    let (apks, framework_image, corpus_image) = artifacts();
    let (synth, _) = configs();
    let image_path =
        std::env::temp_dir().join(format!("saint-parity-fw-{}.sfrz", std::process::id()));
    std::fs::write(&image_path, framework_image).expect("write framework image");
    let corpus = FrozenCorpus::from_bytes(corpus_image.clone()).expect("attach corpus image");

    for app_jobs in [1usize, 8] {
        let parsed_engine = ScanEngine::new(Arc::new(AndroidFramework::with_scale(&synth)))
            .jobs(4)
            .app_jobs(app_jobs);
        parsed_engine.prewarm();
        let parsed = parsed_engine.scan_batch(apks);

        let frozen_engine =
            ScanEngine::new(Arc::new(AndroidFramework::from_spec(FrameworkSpec::new())))
                .jobs(4)
                .app_jobs(app_jobs);
        frozen_engine
            .attach_frozen_trusted(&image_path)
            .expect("trusted attach");
        let frozen = frozen_engine.scan_frozen_batch(&corpus);

        assert_eq!(
            parsed.len(),
            frozen.len(),
            "report count (app_jobs={app_jobs})"
        );
        for (p, f) in parsed.iter().zip(&frozen) {
            // Wall time is the one legitimately nondeterministic field;
            // everything else must match to the byte.
            let mut p = p.clone();
            let mut f = f.clone();
            p.duration = std::time::Duration::ZERO;
            f.duration = std::time::Duration::ZERO;
            let pj = serde_json::to_string(&p).expect("serialize parsed report");
            let fj = serde_json::to_string(&f).expect("serialize frozen report");
            assert_eq!(
                pj, fj,
                "report for {} diverged between parsed and frozen scan (app_jobs={app_jobs})",
                p.package
            );
        }
    }
    let _ = std::fs::remove_file(&image_path);
}
