//! Regression snapshot of Table II: the exact per-app TP/FP/FN cell of
//! every tool on every benchmark app. Any detector or corpus change
//! that shifts a cell shows up here with the app and tool named.

use std::sync::Arc;

use saint_adf::AndroidFramework;
use saint_baselines::{Cid, Cider, Lint};
use saint_corpus::{benchmark_suite, score, Accuracy};
use saintdroid::{CompatDetector, SaintDroid};

/// `(app, saintdroid, cid, cider, lint)`, each cell `Some((tp, fp, fn))`
/// or `None` when the tool cannot analyze the app.
type Row = (
    &'static str,
    Option<(usize, usize, usize)>,
    Option<(usize, usize, usize)>,
    Option<(usize, usize, usize)>,
    Option<(usize, usize, usize)>,
);

const EXPECTED: [Row; 19] = [
    (
        "AFWall+",
        Some((3, 0, 0)),
        None,
        Some((0, 0, 3)),
        Some((1, 1, 2)),
    ),
    (
        "DuckDuckGo",
        Some((3, 0, 0)),
        Some((0, 1, 3)),
        Some((0, 0, 3)),
        Some((1, 1, 2)),
    ),
    (
        "FOSS Browser",
        Some((2, 1, 0)),
        Some((1, 1, 1)),
        Some((1, 0, 1)),
        Some((0, 1, 2)),
    ),
    (
        "Kolab notes",
        Some((3, 0, 0)),
        Some((1, 0, 2)),
        Some((1, 0, 2)),
        Some((0, 0, 3)),
    ),
    (
        "MaterialFBook",
        Some((1, 0, 1)),
        Some((1, 0, 1)),
        Some((0, 1, 2)),
        Some((0, 0, 2)),
    ),
    (
        "NetworkMonitor",
        Some((2, 0, 0)),
        None,
        Some((0, 0, 2)),
        Some((0, 1, 2)),
    ),
    (
        "NyaaPantsu",
        Some((2, 0, 0)),
        Some((1, 0, 1)),
        Some((1, 0, 1)),
        None,
    ),
    (
        "Padland",
        Some((1, 0, 0)),
        Some((1, 0, 0)),
        Some((0, 0, 1)),
        Some((0, 1, 1)),
    ),
    (
        "PassAndroid",
        Some((3, 0, 1)),
        None,
        Some((0, 1, 4)),
        Some((1, 0, 3)),
    ),
    (
        "SimpleSolitaire",
        Some((2, 0, 0)),
        Some((1, 0, 1)),
        Some((1, 0, 1)),
        Some((0, 0, 2)),
    ),
    (
        "SurvivalManual",
        Some((1, 0, 0)),
        Some((0, 0, 1)),
        Some((1, 0, 0)),
        Some((0, 1, 1)),
    ),
    (
        "Uber ride",
        Some((3, 0, 0)),
        Some((1, 0, 2)),
        Some((0, 0, 3)),
        Some((0, 0, 3)),
    ),
    (
        "Basic",
        Some((1, 0, 0)),
        Some((1, 0, 0)),
        Some((0, 0, 1)),
        Some((1, 0, 0)),
    ),
    (
        "Forward",
        Some((1, 0, 0)),
        Some((1, 0, 0)),
        Some((0, 0, 1)),
        Some((1, 0, 0)),
    ),
    (
        "GenericType",
        Some((1, 0, 0)),
        Some((1, 0, 0)),
        Some((0, 0, 1)),
        Some((1, 0, 0)),
    ),
    (
        "Inheritance",
        Some((1, 0, 0)),
        Some((1, 0, 0)),
        Some((0, 0, 1)),
        Some((0, 0, 1)),
    ),
    (
        "Protection",
        Some((0, 0, 0)),
        Some((0, 0, 0)),
        Some((0, 0, 0)),
        Some((0, 1, 0)),
    ),
    (
        "Protection2",
        Some((0, 0, 0)),
        Some((0, 1, 0)),
        Some((0, 0, 0)),
        Some((0, 1, 0)),
    ),
    (
        "Varargs",
        Some((1, 0, 0)),
        Some((1, 0, 0)),
        Some((0, 0, 1)),
        Some((1, 0, 0)),
    ),
];

fn cell(acc: Accuracy) -> (usize, usize, usize) {
    (acc.tp, acc.fp, acc.fn_)
}

#[test]
fn table2_cells_are_stable() {
    let fw = Arc::new(AndroidFramework::curated());
    let tools: Vec<Box<dyn CompatDetector>> = vec![
        Box::new(SaintDroid::new(Arc::clone(&fw))),
        Box::new(Cid::new(Arc::clone(&fw))),
        Box::new(Cider::new(Arc::clone(&fw))),
        Box::new(Lint::new(Arc::clone(&fw))),
    ];
    let apps = benchmark_suite();
    assert_eq!(apps.len(), EXPECTED.len());
    for (app, expected) in apps.iter().zip(EXPECTED.iter()) {
        assert_eq!(app.name, expected.0, "suite order changed");
        let cells: Vec<Option<(usize, usize, usize)>> = tools
            .iter()
            .map(|t| {
                t.analyze(&app.apk)
                    .map(|r| cell(score(&r, &app.truth, None)))
            })
            .collect();
        let expected_cells = [expected.1, expected.2, expected.3, expected.4];
        for (ti, tool) in tools.iter().enumerate() {
            assert_eq!(
                cells[ti],
                expected_cells[ti],
                "{} × {}: cell moved (got {:?}, pinned {:?})",
                app.name,
                tool.name(),
                cells[ti],
                expected_cells[ti]
            );
        }
    }
}
