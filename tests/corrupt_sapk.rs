//! Robustness property: no corrupted SAPK container — random bit
//! flips, truncations, or both — may panic the decoder or escape the
//! scan engine's isolation boundary. `decode_apk` must answer with
//! `Ok` or a typed `CodecError` (whose byte offset, when present,
//! points inside the input), and a container that still decodes must
//! scan to `Ok(Report)` or `Err(ScanError::Internal)` at any intra-app
//! parallelism. The vendored proptest derives every case from a fixed
//! per-(file, test, case) seed, so failures replay deterministically.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

use proptest::collection::vec;
use proptest::prelude::*;
use saint_adf::AndroidFramework;
use saint_corpus::{RealWorldConfig, RealWorldCorpus};
use saint_ir::codec;
use saintdroid::ScanEngine;

/// Encoded fault-free containers to corrupt (built once: corpus
/// synthesis dominates the per-case cost otherwise).
fn corpus() -> &'static Vec<Vec<u8>> {
    static CORPUS: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let mut cfg = RealWorldConfig::small();
        cfg.apps = 4;
        let corpus = RealWorldCorpus::new(cfg);
        (0..corpus.len())
            .map(|i| codec::encode_apk(&corpus.get(i).apk))
            .collect()
    })
}

/// One warm engine per intra-app parallelism regime under test.
fn engines() -> &'static [ScanEngine; 2] {
    static ENGINES: OnceLock<[ScanEngine; 2]> = OnceLock::new();
    ENGINES.get_or_init(|| {
        let fw = Arc::new(AndroidFramework::curated());
        [
            ScanEngine::new(Arc::clone(&fw)).app_jobs(1),
            ScanEngine::new(fw).app_jobs(8),
        ]
    })
}

#[derive(Debug, Clone)]
struct Corruption {
    app_idx: usize,
    /// `(position, bit)` pairs, applied modulo the container length.
    flips: Vec<(usize, u8)>,
    /// Keep-length as a raw value, applied modulo `len + 1`.
    truncate_to: Option<usize>,
}

fn arb_corruption() -> impl Strategy<Value = Corruption> {
    (
        0usize..4,
        vec((any::<usize>(), 0u8..8), 0..8),
        proptest::option::of(any::<usize>()),
    )
        .prop_map(|(app_idx, flips, truncate_to)| Corruption {
            app_idx,
            flips,
            truncate_to,
        })
}

fn corrupted_bytes(spec: &Corruption) -> Vec<u8> {
    let originals = corpus();
    let mut bytes = originals[spec.app_idx % originals.len()].clone();
    if let Some(keep) = spec.truncate_to {
        bytes.truncate(keep % (bytes.len() + 1));
    }
    for &(pos, bit) in &spec.flips {
        if !bytes.is_empty() {
            let i = pos % bytes.len();
            bytes[i] ^= 1 << bit;
        }
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn corrupted_containers_never_panic_decode_or_scan(spec in arb_corruption()) {
        let bytes = corrupted_bytes(&spec);

        let decoded = catch_unwind(AssertUnwindSafe(|| codec::decode_apk(&bytes)))
            .map_err(|_| "decode_apk panicked on corrupted input".to_string())?;

        match decoded {
            Err(e) => {
                // A typed failure; the offset (when the decoder can
                // name one) must point into the input we handed it.
                if let Some(offset) = e.offset() {
                    prop_assert!(
                        offset <= bytes.len(),
                        "offset {offset} beyond input of {} bytes",
                        bytes.len()
                    );
                }
            }
            Ok(apk) => {
                // Structurally valid despite the corruption: the scan
                // must stay inside the isolation boundary at every
                // parallelism regime — `Ok` or typed `Err`, no unwind.
                for engine in engines() {
                    // `Ok` and typed `Err` are both acceptable — only
                    // an unwind (the outer `Err`) is a failure.
                    let _ = catch_unwind(AssertUnwindSafe(|| engine.try_scan_one(&apk)))
                        .map_err(|_| {
                            "try_scan_one let a panic escape its catch_unwind boundary"
                                .to_string()
                        })?;
                }
            }
        }
    }
}
