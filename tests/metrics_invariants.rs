//! Observability invariants: the metrics layer must *observe* the
//! analysis, never perturb it. Over randomly chosen corpus slices and
//! every supported `app_jobs` split:
//!
//! - each cache's `hits + misses == lookups` — no lookup is dropped or
//!   double-counted, under any worker interleaving;
//! - registry counters and phase accumulators are monotone across
//!   scans — the registry is append-only by construction;
//! - per-app mismatches and `LoadMeter`s are byte-identical with
//!   metrics enabled vs disabled — the oracle the bench harness also
//!   asserts via report fingerprints.

use std::sync::Arc;

use proptest::prelude::*;
use saint_adf::{AndroidFramework, SynthConfig};
use saint_corpus::{generate_lineage, LineageConfig, RealWorldConfig, RealWorldCorpus};
use saint_delta::DeltaScanner;
use saint_ir::Apk;
use saint_obs::{CacheSnapshot, Counter, MetricsRegistry};
use saintdroid::{SaintDroid, ScanEngine};

fn corpus_slice(start: usize, n: usize) -> Vec<Apk> {
    let corpus = RealWorldCorpus::new(RealWorldConfig::small());
    (start..start + n)
        .map(|i| corpus.get(i % corpus.len()).apk)
        .collect()
}

fn framework() -> Arc<AndroidFramework> {
    Arc::new(AndroidFramework::with_scale(&SynthConfig::small()))
}

fn assert_cache_conserves(label: &str, cache: &Option<CacheSnapshot>) -> Result<(), String> {
    if let Some(c) = cache {
        prop_assert_eq!(
            c.hits + c.misses,
            c.lookups,
            "{} cache: hits {} + misses {} != lookups {}",
            label,
            c.hits,
            c.misses,
            c.lookups
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn metrics_observe_without_perturbing(
        start in 0usize..40,
        n in 2usize..5,
        app_jobs in prop_oneof![Just(1usize), Just(2usize), Just(8usize)],
    ) {
        let apks = corpus_slice(start, n);

        // Metrics OFF: the reference run.
        let plain = ScanEngine::new(framework()).jobs(2).app_jobs(app_jobs);
        let reference = plain.scan_batch(&apks);

        // Metrics ON: same engine shape plus a registry.
        let metered = ScanEngine::new(framework())
            .jobs(2)
            .app_jobs(app_jobs)
            .ensure_metrics();
        let observed = metered.scan_batch(&apks);

        // Observation must not perturb the analysis: mismatches and
        // per-app meters byte-identical with metrics on vs off.
        prop_assert_eq!(reference.len(), observed.len());
        for (a, b) in reference.iter().zip(&observed) {
            prop_assert_eq!(&a.package, &b.package);
            prop_assert_eq!(&a.mismatches, &b.mismatches,
                "mismatches diverged for {} with metrics enabled", a.package);
            prop_assert_eq!(a.meter, b.meter,
                "LoadMeter diverged for {} with metrics enabled", a.package);
        }

        // Conservation: every cache lookup is exactly one hit or miss,
        // under any `--jobs`/`--app-jobs` interleaving.
        let snap = metered.metrics_snapshot();
        assert_cache_conserves("class", &snap.class_cache)?;
        assert_cache_conserves("artifact", &snap.artifact_cache)?;
        assert_cache_conserves("deep-scan", &snap.deep_scan_cache)?;

        // The registry agrees with ground truth it can be checked
        // against: one scan_total span and one apps_scanned tick per
        // app, mismatch count equal to the reports' total.
        prop_assert_eq!(snap.registry.counter("apps_scanned"), Some(n as u64));
        let scan_total = snap.registry.phase("scan_total").expect("phase always present");
        prop_assert_eq!(scan_total.count, n as u64);
        let total_mismatches: u64 = observed.iter().map(|r| r.mismatches.len() as u64).sum();
        prop_assert_eq!(snap.registry.counter("mismatches_found"), Some(total_mismatches));

        // Monotonicity: scanning more apps never decreases any counter,
        // phase count, total or histogram bucket.
        let again = metered.scan_batch(&apks);
        prop_assert_eq!(again.len(), n);
        let snap2 = metered.metrics_snapshot();
        for (before, after) in snap.registry.counters.iter().zip(&snap2.registry.counters) {
            prop_assert_eq!(before.name, after.name);
            prop_assert!(after.value >= before.value,
                "counter {} went backwards: {} -> {}", before.name, before.value, after.value);
        }
        for (before, after) in snap.registry.phases.iter().zip(&snap2.registry.phases) {
            prop_assert_eq!(before.name, after.name);
            prop_assert!(after.count >= before.count,
                "phase {} count went backwards", before.name);
            prop_assert!(after.total_ns >= before.total_ns,
                "phase {} total went backwards", before.name);
            for (b0, b1) in before.buckets.iter().zip(&after.buckets) {
                prop_assert!(b1 >= b0, "phase {} histogram bucket went backwards", before.name);
            }
        }
    }
}

/// Delta-counter conservation: across an incremental lineage scan,
/// every bundled class the scanner considers is exactly one
/// `delta_hits` or one `delta_misses` tick — `hits + misses ==
/// classes_seen` — and `classes_reanalyzed` never exceeds the misses
/// that caused it. Holds per scan (via [`saint_delta::DeltaStats`])
/// and in the registry aggregate.
#[test]
fn delta_counters_conserve_across_a_lineage() {
    let lineage = generate_lineage(&LineageConfig::small());
    let registry = Arc::new(MetricsRegistry::new());
    let tool = SaintDroid::new(framework()).with_metrics(Arc::clone(&registry));
    let dir = std::env::temp_dir().join(format!("saint-delta-metrics-{}", std::process::id()));
    let scanner = DeltaScanner::new(&dir);

    let mut classes_seen = 0u64;
    for (label, apk) in &lineage {
        let (_, stats) = scanner.scan(&tool, apk, 2);
        assert_eq!(
            stats.hits + stats.misses,
            stats.classes_seen,
            "per-scan conservation broke at {label}"
        );
        assert!(
            stats.reanalyzed <= stats.misses,
            "reanalysis without a miss at {label}"
        );
        classes_seen += stats.classes_seen;
    }

    let hits = registry.counter(Counter::DeltaHits);
    let misses = registry.counter(Counter::DeltaMisses);
    let reanalyzed = registry.counter(Counter::ClassesReanalyzed);
    assert_eq!(
        hits + misses,
        classes_seen,
        "registry aggregate: {hits} hits + {misses} misses != {classes_seen} classes seen"
    );
    assert!(reanalyzed <= misses);
    assert!(hits > 0, "a lineage rescan must reuse artifacts");
    assert_eq!(
        registry.counter(Counter::AppsScanned),
        lineage.len() as u64,
        "each version counts as exactly one scanned app"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// DSD-counter conservation: with the declared-SDK family enabled,
/// every scanned app is vetted exactly once (`apps_vetted ==
/// apps_scanned`), the per-kind counters equal the reports' DSD
/// finding totals, and the DSD findings are a subset of
/// `mismatches_found`. With the family disabled (the default AMD
/// set), the whole DSD counter surface stays at zero.
#[test]
fn dsd_counters_conserve_and_stay_zero_when_disabled() {
    use saint_corpus::planted_suite;
    use saintdroid::{DetectorSet, MismatchKind};

    let registry = Arc::new(MetricsRegistry::new());
    let fw = Arc::new(AndroidFramework::curated());
    let tool = SaintDroid::new(Arc::clone(&fw))
        .with_detectors(DetectorSet::all())
        .with_metrics(Arc::clone(&registry));
    let apps = planted_suite();
    let (mut over, mut under) = (0u64, 0u64);
    for app in &apps {
        let report = tool.run(&app.apk);
        over += report.count(MismatchKind::DsdOveruse) as u64;
        under += report.count(MismatchKind::DsdUnderuse) as u64;
    }
    assert!(
        over > 0 && under > 0,
        "test premise: the planted corpus exercises both DSD kinds"
    );
    assert_eq!(registry.counter(Counter::AppsVetted), apps.len() as u64);
    assert_eq!(
        registry.counter(Counter::AppsVetted),
        registry.counter(Counter::AppsScanned),
        "every scanned app is vetted exactly once when DSD is enabled"
    );
    assert_eq!(registry.counter(Counter::DsdOveruseFound), over);
    assert_eq!(registry.counter(Counter::DsdUnderuseFound), under);
    assert!(
        over + under <= registry.counter(Counter::MismatchesFound),
        "DSD findings are a subset of all mismatches"
    );

    // The default AMD set: no vetting, no DSD ticks — the counters
    // observe the family, they never invent it.
    let amd_registry = Arc::new(MetricsRegistry::new());
    let amd = SaintDroid::new(fw).with_metrics(Arc::clone(&amd_registry));
    for app in &apps {
        let _ = amd.run(&app.apk);
    }
    assert_eq!(
        amd_registry.counter(Counter::AppsScanned),
        apps.len() as u64
    );
    assert_eq!(amd_registry.counter(Counter::AppsVetted), 0);
    assert_eq!(amd_registry.counter(Counter::DsdOveruseFound), 0);
    assert_eq!(amd_registry.counter(Counter::DsdUnderuseFound), 0);
}
