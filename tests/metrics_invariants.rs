//! Observability invariants: the metrics layer must *observe* the
//! analysis, never perturb it. Over randomly chosen corpus slices and
//! every supported `app_jobs` split:
//!
//! - each cache's `hits + misses == lookups` — no lookup is dropped or
//!   double-counted, under any worker interleaving;
//! - registry counters and phase accumulators are monotone across
//!   scans — the registry is append-only by construction;
//! - per-app mismatches and `LoadMeter`s are byte-identical with
//!   metrics enabled vs disabled — the oracle the bench harness also
//!   asserts via report fingerprints.

use std::sync::Arc;

use proptest::prelude::*;
use saint_adf::{AndroidFramework, SynthConfig};
use saint_corpus::{RealWorldConfig, RealWorldCorpus};
use saint_ir::Apk;
use saint_obs::CacheSnapshot;
use saintdroid::ScanEngine;

fn corpus_slice(start: usize, n: usize) -> Vec<Apk> {
    let corpus = RealWorldCorpus::new(RealWorldConfig::small());
    (start..start + n)
        .map(|i| corpus.get(i % corpus.len()).apk)
        .collect()
}

fn framework() -> Arc<AndroidFramework> {
    Arc::new(AndroidFramework::with_scale(&SynthConfig::small()))
}

fn assert_cache_conserves(label: &str, cache: &Option<CacheSnapshot>) -> Result<(), String> {
    if let Some(c) = cache {
        prop_assert_eq!(
            c.hits + c.misses,
            c.lookups,
            "{} cache: hits {} + misses {} != lookups {}",
            label,
            c.hits,
            c.misses,
            c.lookups
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn metrics_observe_without_perturbing(
        start in 0usize..40,
        n in 2usize..5,
        app_jobs in prop_oneof![Just(1usize), Just(2usize), Just(8usize)],
    ) {
        let apks = corpus_slice(start, n);

        // Metrics OFF: the reference run.
        let plain = ScanEngine::new(framework()).jobs(2).app_jobs(app_jobs);
        let reference = plain.scan_batch(&apks);

        // Metrics ON: same engine shape plus a registry.
        let metered = ScanEngine::new(framework())
            .jobs(2)
            .app_jobs(app_jobs)
            .ensure_metrics();
        let observed = metered.scan_batch(&apks);

        // Observation must not perturb the analysis: mismatches and
        // per-app meters byte-identical with metrics on vs off.
        prop_assert_eq!(reference.len(), observed.len());
        for (a, b) in reference.iter().zip(&observed) {
            prop_assert_eq!(&a.package, &b.package);
            prop_assert_eq!(&a.mismatches, &b.mismatches,
                "mismatches diverged for {} with metrics enabled", a.package);
            prop_assert_eq!(a.meter, b.meter,
                "LoadMeter diverged for {} with metrics enabled", a.package);
        }

        // Conservation: every cache lookup is exactly one hit or miss,
        // under any `--jobs`/`--app-jobs` interleaving.
        let snap = metered.metrics_snapshot();
        assert_cache_conserves("class", &snap.class_cache)?;
        assert_cache_conserves("artifact", &snap.artifact_cache)?;
        assert_cache_conserves("deep-scan", &snap.deep_scan_cache)?;

        // The registry agrees with ground truth it can be checked
        // against: one scan_total span and one apps_scanned tick per
        // app, mismatch count equal to the reports' total.
        prop_assert_eq!(snap.registry.counter("apps_scanned"), Some(n as u64));
        let scan_total = snap.registry.phase("scan_total").expect("phase always present");
        prop_assert_eq!(scan_total.count, n as u64);
        let total_mismatches: u64 = observed.iter().map(|r| r.mismatches.len() as u64).sum();
        prop_assert_eq!(snap.registry.counter("mismatches_found"), Some(total_mismatches));

        // Monotonicity: scanning more apps never decreases any counter,
        // phase count, total or histogram bucket.
        let again = metered.scan_batch(&apks);
        prop_assert_eq!(again.len(), n);
        let snap2 = metered.metrics_snapshot();
        for (before, after) in snap.registry.counters.iter().zip(&snap2.registry.counters) {
            prop_assert_eq!(before.name, after.name);
            prop_assert!(after.value >= before.value,
                "counter {} went backwards: {} -> {}", before.name, before.value, after.value);
        }
        for (before, after) in snap.registry.phases.iter().zip(&snap2.registry.phases) {
            prop_assert_eq!(before.name, after.name);
            prop_assert!(after.count >= before.count,
                "phase {} count went backwards", before.name);
            prop_assert!(after.total_ns >= before.total_ns,
                "phase {} total went backwards", before.name);
            for (b0, b1) in before.buckets.iter().zip(&after.buckets) {
                prop_assert!(b1 >= b0, "phase {} histogram bucket went backwards", before.name);
            }
        }
    }
}
