//! Declared-SDK verdicts through the incremental layer.
//!
//! Two properties gate the fourth detector family's delta plumbing:
//!
//! 1. **Parity** — a DSD-enabled scan served by the delta store (cold
//!    splice, warm replay, and both ends of the `app_jobs` range) is
//!    byte-identical to the monolithic pipeline.
//! 2. **Key discipline** — a store populated by an AMD-only tool is a
//!    *miss* for a DSD-enabled tool (and vice versa): the detector set
//!    is folded into every content key, so enabling a family can never
//!    splice a cached report that silently lacks its findings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use saint_adf::{well_known, AndroidFramework};
use saint_delta::DeltaScanner;
use saint_ir::{ApiLevel, Apk, ApkBuilder, ClassBuilder, ClassOrigin};
use saintdroid::{DetectorSet, MismatchKind, SaintDroid};

fn fresh_store_dir() -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "saint-dsd-delta-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// min 21, an unguarded call to an API introduced at 23: one DSD
/// overuse finding on a curated framework model.
fn overusing_apk() -> Apk {
    let main = ClassBuilder::new("p.Main", ClassOrigin::App)
        .extends("android.app.Activity")
        .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.ret_void();
        })
        .unwrap()
        .build();
    ApkBuilder::new("p.dsd", ApiLevel::new(21), ApiLevel::new(28))
        .activity("p.Main")
        .class(main)
        .unwrap()
        .build()
}

fn canon(report: &saintdroid::Report) -> String {
    let mut r = report.clone();
    r.duration = std::time::Duration::ZERO;
    serde_json::to_string(&r).expect("serialize report")
}

#[test]
fn dsd_reports_are_byte_identical_through_the_delta_store() {
    let apk = overusing_apk();
    let tool =
        SaintDroid::new(Arc::new(AndroidFramework::curated())).with_detectors(DetectorSet::all());

    for app_jobs in [1usize, 8] {
        let dir = fresh_store_dir();
        let scanner = DeltaScanner::new(&dir);
        let full = tool.run_with_jobs(&apk, app_jobs);
        assert!(
            full.count(MismatchKind::DsdOveruse) > 0,
            "fixture must actually trip the DSD family"
        );

        let (cold, cold_stats) = scanner.scan(&tool, &apk, app_jobs);
        assert!(!cold_stats.app_hit);
        assert_eq!(canon(&full), canon(&cold), "cold splice diverged");

        let (warm, warm_stats) = scanner.scan(&tool, &apk, app_jobs);
        assert!(warm_stats.app_hit, "unchanged rescan must replay");
        assert_eq!(canon(&full), canon(&warm), "warm replay diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn amd_populated_store_is_a_miss_for_a_dsd_tool() {
    let apk = overusing_apk();
    let framework = Arc::new(AndroidFramework::curated());
    let amd = SaintDroid::new(Arc::clone(&framework));
    let dsd = SaintDroid::new(framework).with_detectors(DetectorSet::all());

    let dir = fresh_store_dir();
    let scanner = DeltaScanner::new(&dir);

    // Populate every artifact tier under the three-family keyspace.
    let (amd_report, _) = scanner.scan(&amd, &apk, 1);
    let (_, amd_warm) = scanner.scan(&amd, &apk, 1);
    assert!(amd_warm.app_hit, "the AMD keyspace must be warm");
    assert_eq!(amd_report.count(MismatchKind::DsdOveruse), 0);

    // The four-family tool must not replay any of it: the detector set
    // is part of the context fingerprint, so the app key *and* every
    // group key miss, and the fresh report carries the DSD findings a
    // spliced pre-DSD artifact would have dropped.
    let (dsd_report, dsd_stats) = scanner.scan(&dsd, &apk, 1);
    assert!(!dsd_stats.app_hit, "AMD app artifact must not replay");
    assert_eq!(dsd_stats.hits, 0, "AMD group artifacts must not splice");
    assert_eq!(dsd_stats.reanalyzed, dsd_stats.classes_seen);
    assert!(
        dsd_report.count(MismatchKind::DsdOveruse) > 0,
        "the rescan must surface the previously-disabled family"
    );
    assert_eq!(canon(&dsd_report), canon(&dsd.run_with_jobs(&apk, 1)));

    // Both keyspaces coexist: the AMD tool still replays its own.
    let (_, amd_again) = scanner.scan(&amd, &apk, 1);
    assert!(
        amd_again.app_hit,
        "the AMD artifacts must survive untouched"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
