//! Cross-crate integration: the full tool matrix over the 19-app
//! benchmark suite must reproduce the *shape* of the paper's Table II —
//! who detects what, who misreports what, and who fails on which app.

use std::sync::Arc;

use saint_adf::AndroidFramework;
use saint_baselines::{Cid, Cider, Lint};
use saint_corpus::{benchmark_suite, score, Accuracy, Suite};
use saintdroid::{CompatDetector, MismatchKind, SaintDroid};

struct Outcome {
    per_tool: Vec<(&'static str, Accuracy)>,
}

fn run_suite(kinds: Option<&[MismatchKind]>) -> Outcome {
    let fw = Arc::new(AndroidFramework::curated());
    let tools: Vec<Box<dyn CompatDetector>> = vec![
        Box::new(SaintDroid::new(Arc::clone(&fw))),
        Box::new(Cid::new(Arc::clone(&fw))),
        Box::new(Cider::new(Arc::clone(&fw))),
        Box::new(Lint::new(Arc::clone(&fw))),
    ];
    let apps = benchmark_suite();
    let mut per_tool = Vec::new();
    for tool in &tools {
        let mut acc = Accuracy::default();
        for app in &apps {
            match tool.analyze(&app.apk) {
                Some(report) => acc.absorb(score(&report, &app.truth, kinds)),
                None => {
                    // Tool failed on the app: its in-scope truths count
                    // as misses (the paper's dashes).
                    let missed = app
                        .truth
                        .iter()
                        .filter(|t| kinds.is_none() || kinds.unwrap().contains(&t.kind))
                        .count();
                    acc.absorb(Accuracy {
                        tp: 0,
                        fp: 0,
                        fn_: missed,
                    });
                }
            }
        }
        per_tool.push((tool.name(), acc));
    }
    Outcome { per_tool }
}

fn acc_of(outcome: &Outcome, tool: &str) -> Accuracy {
    outcome
        .per_tool
        .iter()
        .find(|(n, _)| *n == tool)
        .map(|(_, a)| *a)
        .unwrap()
}

#[test]
fn api_family_shape() {
    let o = run_suite(Some(&[MismatchKind::ApiInvocation]));
    let saint = acc_of(&o, "SAINTDroid");
    let cid = acc_of(&o, "CID");
    let lint = acc_of(&o, "Lint");
    let cider = acc_of(&o, "CIDER");

    // SAINTDroid: highest recall, decent precision.
    assert!(
        saint.recall() > 0.9,
        "SAINTDroid API recall should exceed 90%: {saint}"
    );
    assert!(
        saint.recall() > cid.recall(),
        "SAINTDroid {saint} vs CID {cid}"
    );
    assert!(
        saint.recall() > lint.recall(),
        "SAINTDroid {saint} vs Lint {lint}"
    );
    assert!(saint.f_measure() > cid.f_measure());
    assert!(saint.f_measure() > lint.f_measure());
    // CIDER has no API capability at all.
    assert_eq!(cider.tp, 0);
    // Lint's recall is the weakest of the API-capable tools (paper:
    // "LINT does even worse").
    assert!(lint.recall() < cid.recall(), "Lint {lint} vs CID {cid}");
    // Both baselines misreport guarded code; SAINTDroid's only false
    // alarms come from the anonymous-class blind spot.
    assert!(saint.fp <= 2, "SAINTDroid FPs: {saint}");
    assert!(
        cid.fp >= 1,
        "CID should misreport cross-method guards: {cid}"
    );
    assert!(lint.fp >= cid.fp, "Lint flags guarded code too: {lint}");
}

#[test]
fn apc_family_shape() {
    let o = run_suite(Some(&[MismatchKind::ApiCallback]));
    let saint = acc_of(&o, "SAINTDroid");
    let cider = acc_of(&o, "CIDER");
    let cid = acc_of(&o, "CID");
    let lint = acc_of(&o, "Lint");

    // The paper's "40 of 42": SAINTDroid misses exactly the anonymous
    // inner class issues, with no APC false positives.
    assert_eq!(
        saint.fn_, 2,
        "SAINTDroid misses the two anon issues: {saint}"
    );
    assert_eq!(
        saint.fp, 0,
        "SAINTDroid APC has no false positives: {saint}"
    );
    assert!(saint.recall() > cider.recall(), "{saint} vs {cider}");
    // CIDER detects some modeled callbacks but misses unmodeled classes,
    // and its documentation bug misfires.
    assert!(cider.tp >= 2, "CIDER finds modeled callbacks: {cider}");
    assert!(
        cider.fn_ > saint.fn_,
        "CIDER misses unmodeled classes: {cider}"
    );
    assert!(cider.fp >= 1, "CIDER's doc bug misfires: {cider}");
    // CID and Lint cannot detect callbacks at all.
    assert_eq!(cid.tp, 0);
    assert_eq!(lint.tp, 0);
}

#[test]
fn prm_family_unique_to_saintdroid() {
    let o = run_suite(Some(&[
        MismatchKind::PermissionRequest,
        MismatchKind::PermissionRevocation,
    ]));
    let saint = acc_of(&o, "SAINTDroid");
    assert!(saint.tp >= 3, "SAINTDroid detects the PRM truths: {saint}");
    assert_eq!(saint.fn_, 0, "{saint}");
    for tool in ["CID", "CIDER", "Lint"] {
        let acc = acc_of(&o, tool);
        assert_eq!(acc.tp, 0, "{tool} must not detect PRM: {acc}");
    }
}

#[test]
fn overall_f_measure_ordering() {
    let o = run_suite(None);
    let saint = acc_of(&o, "SAINTDroid");
    for tool in ["CID", "CIDER", "Lint"] {
        let other = acc_of(&o, tool);
        assert!(
            saint.f_measure() > other.f_measure(),
            "SAINTDroid {saint} vs {tool} {other}"
        );
    }
    assert!(saint.f_measure() > 0.8, "overall F: {saint}");
}

#[test]
fn tool_failures_match_the_tables() {
    let fw = Arc::new(AndroidFramework::curated());
    let cid = Cid::new(Arc::clone(&fw));
    let lint = Lint::new(Arc::clone(&fw));
    let apps = benchmark_suite();
    let cid_failures: Vec<&str> = apps
        .iter()
        .filter(|a| cid.analyze(&a.apk).is_none())
        .map(|a| a.name)
        .collect();
    assert_eq!(
        cid_failures,
        vec!["AFWall+", "NetworkMonitor", "PassAndroid"]
    );
    let lint_failures: Vec<&str> = apps
        .iter()
        .filter(|a| lint.analyze(&a.apk).is_none())
        .map(|a| a.name)
        .collect();
    assert_eq!(lint_failures, vec!["NyaaPantsu"]);
}

#[test]
fn suite_composition() {
    let apps = benchmark_suite();
    assert_eq!(
        apps.iter().filter(|a| a.suite == Suite::CiderBench).count(),
        12
    );
    assert_eq!(
        apps.iter().filter(|a| a.suite == Suite::CidBench).count(),
        7
    );
}
