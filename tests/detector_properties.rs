//! Property-based tests over the detector stack: randomly assembled
//! apps must never panic any tool, reports must be deterministic and
//! deduplicated, and guarding a call can only ever *reduce* what
//! SAINTDroid reports.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use saint_adf::{well_known, AndroidFramework};
use saint_baselines::{Cid, Cider, Lint};
use saint_ir::{ApiLevel, Apk, ApkBuilder, BodyBuilder, ClassBuilder, ClassOrigin, MethodRef};
use saintdroid::{CompatDetector, SaintDroid};

/// A small menu of real framework APIs with varied lifetimes.
fn api_menu() -> Vec<MethodRef> {
    vec![
        well_known::context_get_color_state_list(),
        well_known::context_get_drawable(),
        well_known::webview_evaluate_javascript(),
        well_known::create_notification_channel(),
        well_known::http_client_execute(),
        well_known::camera_open(),
        well_known::tint_helper_apply_tint(),
        well_known::activity_set_content_view(),
        well_known::resources_compat_get_csl(),
    ]
}

#[derive(Debug, Clone)]
struct SiteSpec {
    api_idx: usize,
    guard: Option<u8>,
}

fn arb_site() -> impl Strategy<Value = SiteSpec> {
    (0usize..9, proptest::option::of(14u8..29))
        .prop_map(|(api_idx, guard)| SiteSpec { api_idx, guard })
}

#[derive(Debug, Clone)]
struct AppSpec {
    min: u8,
    span: u8,
    sites: Vec<SiteSpec>,
    overrides: Vec<usize>,
}

fn arb_app() -> impl Strategy<Value = AppSpec> {
    (
        8u8..27,
        2u8..12,
        vec(arb_site(), 0..6),
        vec(0usize..4, 0..3),
    )
        .prop_map(|(min, span, sites, overrides)| AppSpec {
            min,
            span,
            sites,
            overrides,
        })
}

fn build_app(spec: &AppSpec) -> Apk {
    let menu = api_menu();
    let target = ApiLevel::new(spec.min.saturating_add(spec.span).min(29));
    let callbacks: [(&str, &str, &str); 4] = [
        ("android.app.Activity", "onMultiWindowModeChanged", "(Z)V"),
        (
            "android.app.Fragment",
            "onAttach",
            "(Landroid/content/Context;)V",
        ),
        ("android.view.View", "drawableHotspotChanged", "(FF)V"),
        ("android.app.Activity", "onCreate", "(Landroid/os/Bundle;)V"),
    ];

    let mut main =
        ClassBuilder::new("gen.app.Main", ClassOrigin::App).extends("android.app.Activity");
    for (i, site) in spec.sites.iter().enumerate() {
        let api = menu[site.api_idx % menu.len()].clone();
        let guard = site.guard;
        main = main
            .method(
                format!("site{i}"),
                "()V",
                move |b: &mut BodyBuilder| match guard {
                    Some(g) => {
                        let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(g));
                        b.switch_to(then_blk);
                        b.invoke_virtual(api, &[], None);
                        b.goto(join);
                        b.switch_to(join);
                        b.ret_void();
                    }
                    None => {
                        b.invoke_virtual(api, &[], None);
                        b.ret_void();
                    }
                },
            )
            .expect("unique names");
    }
    let mut builder = ApkBuilder::new("gen.app", ApiLevel::new(spec.min), target)
        .activity("gen.app.Main")
        .class(main.build())
        .expect("unique class");
    for (i, &cb) in spec.overrides.iter().enumerate() {
        let (sup, name, desc) = callbacks[cb % callbacks.len()];
        let class = ClassBuilder::new(format!("gen.app.Cb{i}").as_str(), ClassOrigin::App)
            .extends(sup)
            .method(name, desc, |b| {
                b.ret_void();
            })
            .expect("unique method")
            .build();
        builder = builder.class(class).expect("unique class");
    }
    builder.build()
}

fn framework() -> Arc<AndroidFramework> {
    Arc::new(AndroidFramework::curated())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn no_tool_panics_on_generated_apps(spec in arb_app()) {
        let apk = build_app(&spec);
        let fw = framework();
        let _ = SaintDroid::new(Arc::clone(&fw)).analyze(&apk);
        let _ = Cid::new(Arc::clone(&fw)).analyze(&apk);
        let _ = Cider::new(Arc::clone(&fw)).analyze(&apk);
        let _ = Lint::new(Arc::clone(&fw)).analyze(&apk);
    }

    #[test]
    fn saintdroid_reports_are_deterministic(spec in arb_app()) {
        let apk = build_app(&spec);
        let tool = SaintDroid::new(framework());
        let a = tool.analyze(&apk).unwrap();
        let b = tool.analyze(&apk).unwrap();
        prop_assert_eq!(a.mismatches, b.mismatches);
    }

    #[test]
    fn reports_are_deduplicated(spec in arb_app()) {
        let apk = build_app(&spec);
        let report = SaintDroid::new(framework()).analyze(&apk).unwrap();
        for (i, a) in report.mismatches.iter().enumerate() {
            for b in &report.mismatches[i + 1..] {
                prop_assert_ne!(a.dedup_key(), b.dedup_key());
            }
        }
    }

    #[test]
    fn full_guards_silence_every_api_site(spec in arb_app()) {
        // Guarding every call site at level 29 restricts execution to
        // the newest level; the only possible API findings left are
        // removed-API (forward) cases, never introduced-later ones.
        let mut guarded = spec.clone();
        for site in &mut guarded.sites {
            site.guard = Some(29);
        }
        let apk = build_app(&guarded);
        let report = SaintDroid::new(framework()).analyze(&apk).unwrap();
        for m in report.of_kind(saintdroid::MismatchKind::ApiInvocation) {
            let life = m.api_life.expect("api mismatches carry lifetimes");
            prop_assert!(
                life.removed.is_some(),
                "only forward (removed) findings may survive a max-level guard: {}",
                m
            );
        }
    }

    #[test]
    fn guarding_never_adds_findings(spec in arb_app()) {
        let unguarded = {
            let mut s = spec.clone();
            for site in &mut s.sites {
                site.guard = None;
            }
            s
        };
        let tool = SaintDroid::new(framework());
        let base = tool.analyze(&build_app(&unguarded)).unwrap();
        let guarded_report = tool.analyze(&build_app(&spec)).unwrap();
        prop_assert!(
            guarded_report.api_count() <= base.api_count(),
            "guards must be monotone: {} vs {}",
            guarded_report.api_count(),
            base.api_count()
        );
    }

    #[test]
    fn missing_levels_always_within_supported_range(spec in arb_app()) {
        let apk = build_app(&spec);
        let supported = apk.manifest.supported_levels();
        let report = SaintDroid::new(framework()).analyze(&apk).unwrap();
        for m in &report.mismatches {
            if m.kind == saintdroid::MismatchKind::ApiInvocation
                || m.kind == saintdroid::MismatchKind::ApiCallback
            {
                for l in &m.missing_levels {
                    prop_assert!(
                        supported.contains(*l),
                        "{m} reports level {l} outside {supported}"
                    );
                }
            }
        }
    }
}
