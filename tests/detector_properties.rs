//! Property-based tests over the detector stack: randomly assembled
//! apps must never panic any tool, reports must be deterministic and
//! deduplicated, and guarding a call can only ever *reduce* what
//! SAINTDroid reports.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use saint_adf::{well_known, AndroidFramework};
use saint_baselines::{Cid, Cider, Lint};
use saint_ir::{ApiLevel, Apk, ApkBuilder, BodyBuilder, ClassBuilder, ClassOrigin, MethodRef};
use saintdroid::{CompatDetector, SaintDroid};

/// A small menu of real framework APIs with varied lifetimes.
fn api_menu() -> Vec<MethodRef> {
    vec![
        well_known::context_get_color_state_list(),
        well_known::context_get_drawable(),
        well_known::webview_evaluate_javascript(),
        well_known::create_notification_channel(),
        well_known::http_client_execute(),
        well_known::camera_open(),
        well_known::tint_helper_apply_tint(),
        well_known::activity_set_content_view(),
        well_known::resources_compat_get_csl(),
    ]
}

#[derive(Debug, Clone)]
struct SiteSpec {
    api_idx: usize,
    guard: Option<u8>,
}

fn arb_site() -> impl Strategy<Value = SiteSpec> {
    (0usize..9, proptest::option::of(14u8..29))
        .prop_map(|(api_idx, guard)| SiteSpec { api_idx, guard })
}

#[derive(Debug, Clone)]
struct AppSpec {
    min: u8,
    span: u8,
    sites: Vec<SiteSpec>,
    overrides: Vec<usize>,
}

fn arb_app() -> impl Strategy<Value = AppSpec> {
    (
        8u8..27,
        2u8..12,
        vec(arb_site(), 0..6),
        vec(0usize..4, 0..3),
    )
        .prop_map(|(min, span, sites, overrides)| AppSpec {
            min,
            span,
            sites,
            overrides,
        })
}

fn build_app(spec: &AppSpec) -> Apk {
    let menu = api_menu();
    let target = ApiLevel::new(spec.min.saturating_add(spec.span).min(29));
    let callbacks: [(&str, &str, &str); 4] = [
        ("android.app.Activity", "onMultiWindowModeChanged", "(Z)V"),
        (
            "android.app.Fragment",
            "onAttach",
            "(Landroid/content/Context;)V",
        ),
        ("android.view.View", "drawableHotspotChanged", "(FF)V"),
        ("android.app.Activity", "onCreate", "(Landroid/os/Bundle;)V"),
    ];

    let mut main =
        ClassBuilder::new("gen.app.Main", ClassOrigin::App).extends("android.app.Activity");
    for (i, site) in spec.sites.iter().enumerate() {
        let api = menu[site.api_idx % menu.len()].clone();
        let guard = site.guard;
        main = main
            .method(
                format!("site{i}"),
                "()V",
                move |b: &mut BodyBuilder| match guard {
                    Some(g) => {
                        let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(g));
                        b.switch_to(then_blk);
                        b.invoke_virtual(api, &[], None);
                        b.goto(join);
                        b.switch_to(join);
                        b.ret_void();
                    }
                    None => {
                        b.invoke_virtual(api, &[], None);
                        b.ret_void();
                    }
                },
            )
            .expect("unique names");
    }
    let mut builder = ApkBuilder::new("gen.app", ApiLevel::new(spec.min), target)
        .activity("gen.app.Main")
        .class(main.build())
        .expect("unique class");
    for (i, &cb) in spec.overrides.iter().enumerate() {
        let (sup, name, desc) = callbacks[cb % callbacks.len()];
        let class = ClassBuilder::new(format!("gen.app.Cb{i}").as_str(), ClassOrigin::App)
            .extends(sup)
            .method(name, desc, |b| {
                b.ret_void();
            })
            .expect("unique method")
            .build();
        builder = builder.class(class).expect("unique class");
    }
    builder.build()
}

fn framework() -> Arc<AndroidFramework> {
    Arc::new(AndroidFramework::curated())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn no_tool_panics_on_generated_apps(spec in arb_app()) {
        let apk = build_app(&spec);
        let fw = framework();
        let _ = SaintDroid::new(Arc::clone(&fw)).analyze(&apk);
        let _ = Cid::new(Arc::clone(&fw)).analyze(&apk);
        let _ = Cider::new(Arc::clone(&fw)).analyze(&apk);
        let _ = Lint::new(Arc::clone(&fw)).analyze(&apk);
    }

    #[test]
    fn saintdroid_reports_are_deterministic(spec in arb_app()) {
        let apk = build_app(&spec);
        let tool = SaintDroid::new(framework());
        let a = tool.analyze(&apk).unwrap();
        let b = tool.analyze(&apk).unwrap();
        prop_assert_eq!(a.mismatches, b.mismatches);
    }

    #[test]
    fn reports_are_deduplicated(spec in arb_app()) {
        let apk = build_app(&spec);
        let report = SaintDroid::new(framework()).analyze(&apk).unwrap();
        for (i, a) in report.mismatches.iter().enumerate() {
            for b in &report.mismatches[i + 1..] {
                prop_assert_ne!(a.dedup_key(), b.dedup_key());
            }
        }
    }

    #[test]
    fn full_guards_silence_every_api_site(spec in arb_app()) {
        // Guarding every call site at level 29 restricts execution to
        // the newest level; the only possible API findings left are
        // removed-API (forward) cases, never introduced-later ones.
        let mut guarded = spec.clone();
        for site in &mut guarded.sites {
            site.guard = Some(29);
        }
        let apk = build_app(&guarded);
        let report = SaintDroid::new(framework()).analyze(&apk).unwrap();
        for m in report.of_kind(saintdroid::MismatchKind::ApiInvocation) {
            let life = m.api_life.expect("api mismatches carry lifetimes");
            prop_assert!(
                life.removed.is_some(),
                "only forward (removed) findings may survive a max-level guard: {}",
                m
            );
        }
    }

    #[test]
    fn guarding_never_adds_findings(spec in arb_app()) {
        let unguarded = {
            let mut s = spec.clone();
            for site in &mut s.sites {
                site.guard = None;
            }
            s
        };
        let tool = SaintDroid::new(framework());
        let base = tool.analyze(&build_app(&unguarded)).unwrap();
        let guarded_report = tool.analyze(&build_app(&spec)).unwrap();
        prop_assert!(
            guarded_report.api_count() <= base.api_count(),
            "guards must be monotone: {} vs {}",
            guarded_report.api_count(),
            base.api_count()
        );
    }

    #[test]
    fn missing_levels_always_within_supported_range(spec in arb_app()) {
        prop_missing_levels_within_range(&spec)?;
    }
}

/// Body of `missing_levels_always_within_supported_range`, shared with
/// the pinned regression seeds below.
fn prop_missing_levels_within_range(spec: &AppSpec) -> Result<(), String> {
    let apk = build_app(spec);
    let supported = apk.manifest.supported_levels();
    let report = SaintDroid::new(framework()).analyze(&apk).unwrap();
    for m in &report.mismatches {
        if m.kind == saintdroid::MismatchKind::ApiInvocation
            || m.kind == saintdroid::MismatchKind::ApiCallback
        {
            for l in &m.missing_levels {
                prop_assert!(
                    supported.contains(*l),
                    "{m} reports level {l} outside {supported}"
                );
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Pinned regression seeds (tests/detector_properties.proptest-regressions).
//
// Upstream proptest replays the checked-in seeds before generating novel
// cases; the vendored stand-in (vendor/proptest) deliberately ignores
// `.proptest-regressions` files, so the two tests below are what actually
// re-runs them. Each reconstructs its shrunk `AppSpec` explicitly so the
// historical failure is documented, runs deterministically (no RNG
// involved), and fails loudly with a readable diff if either bug regresses.
// The seeds file stays checked in for anyone running against upstream
// proptest — do not delete it.
// ---------------------------------------------------------------------------

/// Seed `0c761a17…`: an app supporting 11..=17 whose SDK guards (18, 20, 26)
/// all sit *above* the target level, i.e. every guarded block is unreachable
/// at every supported level.
///
/// Historically the guard refinement saturated (`refine_at_least` keeps a
/// non-empty range whose min can exceed the supported max), so the invocation
/// detector evaluated those dead blocks under a range like 20..=20 and
/// reported missing levels *outside* `manifest.supported_levels()`, failing
/// `missing_levels_always_within_supported_range`. Resolved by routing guard
/// refinement through `LevelRange::checked_refine_at_least`/`_at_most`
/// (crates/analysis/src/guards.rs), which collapse unsatisfiable guards to
/// `None` so unreachable guarded blocks are skipped entirely.
#[test]
fn seed_unsatisfiable_guards_stay_within_supported_range() {
    let spec = AppSpec {
        min: 11,
        span: 6, // target = 17: every guard below is above-target
        sites: vec![
            SiteSpec {
                api_idx: 5,
                guard: Some(20),
            },
            SiteSpec {
                api_idx: 1,
                guard: None,
            },
            SiteSpec {
                api_idx: 3,
                guard: None,
            },
            SiteSpec {
                api_idx: 2,
                guard: Some(26),
            },
            SiteSpec {
                api_idx: 4,
                guard: Some(18),
            },
        ],
        overrides: vec![3],
    };
    prop_missing_levels_within_range(&spec).unwrap();

    // The fix must not silence the *unguarded* sites: the app still calls
    // real APIs with level-sensitive lifetimes, so the report is non-empty.
    let report = SaintDroid::new(framework())
        .analyze(&build_app(&spec))
        .unwrap();
    assert!(
        !report.mismatches.is_empty(),
        "unguarded sites must still produce findings"
    );
}

/// Seed `8a4ffaa0…`: an app supporting 19..=23 with two call sites into the
/// same deep-path API (`TintHelper.applyTint`, present at every level but
/// whose framework body reaches an API-23 call) — one site guarded at 20,
/// one unguarded.
///
/// Historically the second visit of the framework subtree was suppressed by
/// a memo keyed only on (root, range), so findings surfaced under whichever
/// site happened to be scanned first — report contents depended on visit
/// order, failing `saintdroid_reports_are_deterministic` between runs.
/// Resolved by qualifying the deep-scan memo key with the attributed app
/// site (`enter_framework` in crates/core/src/amd/invocation.rs) and merging
/// same-key findings via `Report::extend_deduped`, which unions their
/// missing-level sets instead of dropping one.
#[test]
fn seed_deep_path_two_sites_deterministic_and_deduped() {
    let spec = AppSpec {
        min: 19,
        span: 4, // target = 23: setForeground (API 23) missing below it
        sites: vec![
            SiteSpec {
                api_idx: 6,
                guard: Some(20),
            },
            SiteSpec {
                api_idx: 6,
                guard: None,
            },
        ],
        overrides: vec![],
    };
    let apk = build_app(&spec);
    let tool = SaintDroid::new(framework());
    let a = tool.analyze(&apk).unwrap();
    let b = tool.analyze(&apk).unwrap();
    assert_eq!(a.mismatches, b.mismatches, "reports must be deterministic");

    // Both sites reach the API-23 call; each is attributed separately, so
    // dedup keys (which include the site) must all be distinct.
    for (i, m) in a.mismatches.iter().enumerate() {
        for n in &a.mismatches[i + 1..] {
            assert_ne!(m.dedup_key(), n.dedup_key(), "{m} duplicates {n}");
        }
    }
}
