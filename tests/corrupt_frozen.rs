//! Robustness property for the frozen artifact format: no corrupted
//! `.sfrz` image — random bit flips, truncations, or both, with or
//! without a recomputed checksum — may panic the attach path or any
//! in-place read. Every failure must be a typed [`FrozenError`] whose
//! byte offset (when it names one) points inside the image, and an
//! image that still attaches must serve every query (`database`,
//! `permission_map`, class iteration, per-package decode) without
//! unwinding. Flip positions are biased toward the header and section
//! table — the region every read is bounds-checked against — and the
//! `fix_checksum` cases re-seal the header checksum after corrupting
//! the payload, so the structural validators behind the checksum gate
//! get fuzzed too, not just the gate itself. Framework images are
//! additionally attached through the **trusted** warm-boot path
//! (checksum and eager index walk skipped), which must degrade just as
//! gracefully: its safety rests entirely on per-read bounds checks.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use proptest::collection::vec;
use proptest::prelude::*;
use saint_adf::{AndroidFramework, SynthConfig};
use saint_corpus::{RealWorldConfig, RealWorldCorpus};
use saint_frozen::{
    fnv1a, freeze_apks, freeze_framework, FrozenCorpus, FrozenError, FrozenFramework, FNV_OFFSET,
};
use saint_ir::codec;

/// Pristine images to corrupt, built once: framework synthesis and
/// corpus generation dominate the per-case cost otherwise.
fn pristine() -> &'static (Vec<u8>, Vec<u8>) {
    static IMAGES: OnceLock<(Vec<u8>, Vec<u8>)> = OnceLock::new();
    IMAGES.get_or_init(|| {
        let fw = AndroidFramework::with_scale(&SynthConfig::small());
        let framework_image = freeze_framework(&fw);
        let mut cfg = RealWorldConfig::small();
        cfg.apps = 4;
        let corpus = RealWorldCorpus::new(cfg);
        let apks: Vec<saint_ir::Apk> = (0..corpus.len()).map(|i| corpus.get(i).apk).collect();
        let corpus_image = freeze_apks(&apks);
        (framework_image, corpus_image)
    })
}

#[derive(Debug, Clone)]
struct Corruption {
    /// `false` → framework image, `true` → corpus image.
    corpus: bool,
    /// `(position, bit, header_biased)` triples. Biased positions are
    /// taken modulo 256 — the header plus section table plus the first
    /// payload bytes, where every bounds check lives; unbiased ones
    /// modulo the full image length.
    flips: Vec<(usize, u8, bool)>,
    /// Keep-length as a raw value, applied modulo `len + 1`.
    truncate_to: Option<usize>,
    /// Re-seal the header checksum after corrupting, so the flip is
    /// exercised against the structural validators instead of being
    /// swallowed by the `BadChecksum` gate.
    fix_checksum: bool,
}

fn arb_corruption() -> impl Strategy<Value = Corruption> {
    (
        any::<bool>(),
        vec((any::<usize>(), 0u8..8, any::<bool>()), 0..8),
        proptest::option::of(any::<usize>()),
        any::<bool>(),
    )
        .prop_map(|(corpus, flips, truncate_to, fix_checksum)| Corruption {
            corpus,
            flips,
            truncate_to,
            fix_checksum,
        })
}

fn corrupted_bytes(spec: &Corruption) -> Vec<u8> {
    let (framework_image, corpus_image) = pristine();
    let mut bytes = if spec.corpus {
        corpus_image.clone()
    } else {
        framework_image.clone()
    };
    if let Some(keep) = spec.truncate_to {
        bytes.truncate(keep % (bytes.len() + 1));
    }
    for &(pos, bit, biased) in &spec.flips {
        if !bytes.is_empty() {
            let span = if biased {
                bytes.len().min(256)
            } else {
                bytes.len()
            };
            bytes[pos % span] ^= 1 << bit;
        }
    }
    if spec.fix_checksum && bytes.len() >= 32 {
        let sum = fnv1a(&bytes[32..], FNV_OFFSET);
        bytes[8..16].copy_from_slice(&sum.to_le_bytes());
    }
    bytes
}

/// A typed error is fine; its offset, when present, must point into
/// the image that produced it.
fn check_error(err: &FrozenError, len: usize) -> Result<(), String> {
    if let Some(offset) = err.offset() {
        prop_assert!(offset <= len, "offset {offset} beyond image of {len} bytes");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn corrupted_images_never_panic_attach_or_reads(spec in arb_corruption()) {
        let bytes = corrupted_bytes(&spec);
        let len = bytes.len();

        if spec.corpus {
            let attached = catch_unwind(AssertUnwindSafe(|| FrozenCorpus::from_bytes(bytes)))
                .map_err(|_| "FrozenCorpus::from_bytes panicked on corrupted input".to_string())?;
            match attached {
                Err(e) => check_error(&e, len)?,
                Ok(corpus) => {
                    // Attach validated the index, so every read must
                    // answer — `Ok` or typed `Err`, never an unwind.
                    let reads = catch_unwind(AssertUnwindSafe(|| {
                        let mut errors = Vec::new();
                        for i in 0..corpus.len() {
                            if let Err(e) = corpus.package(i) {
                                errors.push(e);
                            }
                            if let Err(e) = corpus.decode(i) {
                                errors.push(e);
                            }
                        }
                        errors
                    }))
                    .map_err(|_| "a corpus read panicked on an attached image".to_string())?;
                    for e in &reads {
                        check_error(e, len)?;
                    }
                }
            }
        } else {
            // Both attach modes must hold the no-panic property. The
            // trusted warm-boot attach skips the checksum and the eager
            // index walk, so far more corrupted images make it through
            // to the read surface — exactly the surface whose per-read
            // bounds checks this property exists to pin down.
            for trusted in [false, true] {
                let input = bytes.clone();
                let attached = catch_unwind(AssertUnwindSafe(|| {
                    if trusted {
                        FrozenFramework::from_bytes_trusted(input)
                    } else {
                        FrozenFramework::from_bytes(input)
                    }
                }))
                .map_err(|_| {
                    format!("FrozenFramework attach (trusted={trusted}) panicked on corrupted input")
                })?;
                match attached {
                    Err(e) => check_error(&e, len)?,
                    Ok(fw) => {
                        let reads = catch_unwind(AssertUnwindSafe(|| {
                            let mut errors = Vec::new();
                            if let Err(e) = fw.database() {
                                errors.push(e);
                            }
                            if let Err(e) = fw.permission_map() {
                                errors.push(e);
                            }
                            // Walk every class entry and decode every
                            // blob: the zero-copy read surface the
                            // engine preload and class source live on.
                            let walk = fw.for_each_class(|_, _, _, blob| {
                                if let Err(e) = codec::decode_class(blob) {
                                    errors.push(FrozenError::Codec(e));
                                }
                            });
                            if let Err(e) = walk {
                                errors.push(e);
                            }
                            // The lazy-boot query surface on top of it.
                            if let Err(e) = fw.knows_class("android.app.Activity") {
                                errors.push(e);
                            }
                            errors
                        }))
                        .map_err(|_| {
                            format!("a framework read panicked (trusted={trusted} attach)")
                        })?;
                        for e in &reads {
                            check_error(e, len)?;
                        }
                    }
                }
            }
        }
    }
}
