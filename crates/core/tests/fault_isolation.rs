//! Panic isolation end-to-end at the engine boundary: injected faults
//! in every pipeline phase are demoted to typed `ScanError::Internal`
//! entries with the right phase attribution, the engine keeps serving
//! afterwards with byte-identical reports, and a batch with one
//! poisoned scan still yields one report per input.
//!
//! Fault-injection state is process-global, so everything lives in one
//! `#[test]` function — cargo runs test *functions* of one binary
//! concurrently, but separate integration-test binaries are separate
//! processes and cannot interfere.

use std::sync::Arc;

use saint_adf::{well_known, AndroidFramework};
use saint_faults::FaultPoint;
use saint_ir::{ApiLevel, Apk, ApkBuilder, ClassBuilder, ClassOrigin};
use saint_obs::Counter;
use saintdroid::{Report, ScanEngine, ScanError};

fn app() -> Apk {
    let main = ClassBuilder::new("com.x.Main", ClassOrigin::App)
        .extends("android.app.Activity")
        .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.ret_void();
        })
        .expect("valid method")
        .build();
    ApkBuilder::new("com.x", ApiLevel::new(21), ApiLevel::new(28))
        .activity("com.x.Main")
        .class(main)
        .expect("valid class")
        .build()
}

fn engine(app_jobs: usize) -> ScanEngine {
    ScanEngine::new(Arc::new(AndroidFramework::curated()))
        .app_jobs(app_jobs)
        .ensure_metrics()
}

/// Mismatches + meter must match; timing fields naturally differ.
fn assert_same_findings(a: &Report, b: &Report) {
    assert_eq!(a.mismatches, b.mismatches);
    assert_eq!(a.meter, b.meter);
    assert!(!a.has_errors() && !b.has_errors());
}

fn panicked(engine: &ScanEngine) -> u64 {
    engine
        .metrics()
        .expect("ensure_metrics attached a registry")
        .counter(Counter::ScansPanicked)
}

#[test]
fn injected_faults_are_isolated_attributed_and_recoverable() {
    saint_faults::reset();
    let apk = app();

    // Sequential engine: detectors run inline, so the thread-local
    // phase marker does the attribution.
    let seq = engine(1);
    let baseline = seq.try_scan_one(&apk).expect("fault-free scan succeeds");
    assert!(!baseline.is_clean(), "the fixture app has a real mismatch");

    for (point, phase) in [
        (FaultPoint::Explore, "explore"),
        (FaultPoint::DetectInvocation, "detect_invocation"),
        (FaultPoint::DetectCallback, "detect_callback"),
        (FaultPoint::DetectPermission, "detect_permission"),
    ] {
        let before = panicked(&seq);
        saint_faults::arm(point, 1);
        let err = seq
            .try_scan_one(&apk)
            .expect_err("armed scan reports the injected panic");
        assert_eq!(err.phase(), phase, "wrong attribution for {point:?}");
        assert!(err.to_string().contains("injected panic"));
        assert_eq!(panicked(&seq), before + 1);
        // Recovery: the very next scan is clean and identical.
        let again = seq.try_scan_one(&apk).expect("engine recovered");
        assert_same_findings(&baseline, &again);
    }

    // Parallel engine: the callback detector panics on a scoped worker
    // thread (attribution crosses the join as a PhasePanic), and an
    // exploration-task panic is contained by the pool without wedging
    // its peers.
    let par = engine(8);
    let par_baseline = par.try_scan_one(&apk).expect("fault-free scan succeeds");
    assert_same_findings(&baseline, &par_baseline);
    for (point, phase) in [
        (FaultPoint::DetectCallback, "detect_callback"),
        (FaultPoint::ExploreTask, "explore"),
    ] {
        saint_faults::arm(point, 1);
        let err = par.try_scan_one(&apk).expect_err("injected panic surfaces");
        assert_eq!(err.phase(), phase, "wrong attribution for {point:?}");
        let again = par.try_scan_one(&apk).expect("engine recovered");
        assert_same_findings(&baseline, &again);
    }

    // scan_one folds the failure into an error-only report instead.
    saint_faults::arm(FaultPoint::DetectInvocation, 1);
    let folded = seq.scan_one(&apk);
    assert!(folded.has_errors());
    assert_eq!(folded.package, "com.x");
    assert_eq!(folded.errors.len(), 1);
    assert!(matches!(
        &folded.errors[0],
        ScanError::Internal { phase, .. } if phase == "detect_invocation"
    ));
    assert!(folded.to_string().contains("ERROR"));

    // A batch with one poisoned scan still returns one report per
    // input; exactly one carries the error, the rest are untouched.
    let before = panicked(&seq);
    saint_faults::arm(FaultPoint::DetectPermission, 1);
    let batch = seq.scan_batch(&[apk.clone(), apk.clone(), apk.clone()]);
    assert_eq!(batch.len(), 3);
    let errored = batch.iter().filter(|r| r.has_errors()).count();
    assert_eq!(errored, 1, "exactly one scan absorbed the fault");
    assert_eq!(panicked(&seq), before + 1);
    for report in batch.iter().filter(|r| !r.has_errors()) {
        assert_same_findings(&baseline, report);
    }

    assert_eq!(saint_faults::remaining(FaultPoint::Explore), 0);
    saint_faults::reset();
}
