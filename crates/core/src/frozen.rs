//! Frozen-artifact boot: serving the engine from mmap'd images.
//!
//! [`ScanEngine::attach_frozen`] replaces the parse-everything startup
//! path with [`saint_frozen::load_or_freeze`]: the framework's API
//! database and permission map decode linearly out of one checksummed
//! image (no mining), class bodies are served zero-copy through a
//! [`FrozenClassSource`], and whole corpora scan straight out of a
//! mapped [`FrozenCorpus`] without per-app container buffers. The
//! attach records [`Phase::FrozenMap`] / [`Counter::FrozenBytesMapped`]
//! when a registry is present and leaves a [`FrozenBoot`] provenance
//! record behind for the daemon's `status` verb.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use saint_frozen::{
    load_or_freeze, BootSource, FrozenClassSource, FrozenCorpus, FrozenError, FrozenFramework,
};
use saint_ir::{codec, ClassDef, ClassName};
use saint_obs::{Counter, Phase};

use crate::detector::CompatDetector;
use crate::engine::{BatchScan, ScanEngine, WorkerStat};
use crate::error::ScanError;
use crate::report::Report;

/// The engine's attached frozen image plus boot bookkeeping.
pub(crate) struct FrozenState {
    framework: Arc<FrozenFramework>,
    boot: BootRecord,
    preloaded: AtomicUsize,
}

/// The immutable part of the provenance, fixed at attach time.
struct BootRecord {
    attached: bool,
    trusted: bool,
    image: PathBuf,
    startup: Duration,
    bytes_mapped: u64,
    page_mapped: bool,
}

/// How this engine obtained its framework model — the provenance the
/// daemon's `status` verb reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenBoot {
    /// `true` when a valid image already existed and was attached
    /// directly; `false` when this boot had to parse-and-freeze first
    /// (so the *next* boot attaches).
    pub attached: bool,
    /// `true` when the attach ran on the trusted warm-boot path
    /// ([`ScanEngine::attach_frozen_trusted`]): full-image checksum and
    /// eager index validation were skipped because a prior boot already
    /// verified this image.
    pub trusted: bool,
    /// Path of the image being served.
    pub image: PathBuf,
    /// Wall time of the whole attach (map + verify + table decode, or
    /// compile + write + map on a first run).
    pub startup: Duration,
    /// Image size made addressable, in bytes.
    pub bytes_mapped: u64,
    /// Whether the image is an actual page mapping (`false` means the
    /// owned-buffer fallback was used).
    pub page_mapped: bool,
    /// Framework class bodies bulk-loaded into the shared class cache
    /// at prewarm (0 until [`ScanEngine::prewarm`] runs).
    pub classes_preloaded: usize,
}

impl ScanEngine {
    /// Boots this engine from the frozen framework image at `path`:
    /// attaches (or compiles, on a first run or stale image) the image,
    /// seeds the framework's API database and permission map from its
    /// tables — so they are never mined — and installs a zero-copy
    /// class source serving class bodies straight from the mapping.
    ///
    /// Records a [`Phase::FrozenMap`] span and bumps
    /// [`Counter::FrozenBytesMapped`] when metrics are attached.
    /// Idempotent: a second call returns the existing provenance.
    ///
    /// # Errors
    ///
    /// Filesystem failures and image decode failures surface as
    /// [`FrozenError`]; the engine is left un-attached and fully
    /// usable on the parse path.
    pub fn attach_frozen(&self, path: &Path) -> Result<FrozenBoot, FrozenError> {
        if self.frozen.get().is_some() {
            return Ok(self.frozen_boot().expect("state just observed"));
        }
        let start = Instant::now();
        let framework = Arc::clone(self.tool().arm().framework());
        let attach = || -> Result<_, FrozenError> {
            let (frozen, source) = load_or_freeze(path, &framework)?;
            let db = Arc::new(frozen.database()?);
            let permissions = Arc::new(frozen.permission_map()?);
            Ok((frozen, source, db, permissions))
        };
        let (frozen, source, db, permissions) = match self.metrics() {
            Some(metrics) => metrics.time(Phase::FrozenMap, attach)?,
            None => attach()?,
        };
        framework.seed_database(db);
        framework.seed_permission_map(permissions);
        framework.install_class_source(Arc::new(FrozenClassSource::new(Arc::clone(&frozen))));
        if let Some(metrics) = self.metrics() {
            metrics.add(Counter::FrozenBytesMapped, frozen.bytes_len());
        }
        let state = FrozenState {
            boot: BootRecord {
                attached: source == BootSource::Attached,
                trusted: false,
                image: path.to_path_buf(),
                startup: start.elapsed(),
                bytes_mapped: frozen.bytes_len(),
                page_mapped: frozen.is_mapped(),
            },
            framework: frozen,
            preloaded: AtomicUsize::new(0),
        };
        let _ = self.frozen.set(state);
        Ok(self.frozen_boot().expect("state just set"))
    }

    /// [`attach_frozen`](ScanEngine::attach_frozen) on the trusted
    /// warm-boot path: the image at `path` was verified by a previous
    /// boot (every [`attach_frozen`](ScanEngine::attach_frozen) and
    /// every `compile-db` run checksums it end to end), so this attach
    /// skips the two O(image) verification costs — the full checksum
    /// pass and the eager class-index walk — and never compiles. Every
    /// later read is still individually bounds-checked, so a tampered
    /// image degrades to typed errors, never undefined behavior; a
    /// divergent image is caught by report parity, not silently served.
    ///
    /// Unlike the verified attach this never seeds from the engine's
    /// spec-derived model: the image **is** the framework, which lets a
    /// daemon boot from an empty spec without synthesizing one.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed header / section-table / index-header
    /// content surface as [`FrozenError`]; a missing image is an error
    /// (use [`attach_frozen`](ScanEngine::attach_frozen) for the
    /// compile-on-first-run behavior).
    pub fn attach_frozen_trusted(&self, path: &Path) -> Result<FrozenBoot, FrozenError> {
        if self.frozen.get().is_some() {
            return Ok(self.frozen_boot().expect("state just observed"));
        }
        let start = Instant::now();
        let framework = Arc::clone(self.tool().arm().framework());
        let attach = || -> Result<_, FrozenError> {
            let frozen = Arc::new(FrozenFramework::open_trusted(path)?);
            let db = Arc::new(frozen.database()?);
            let permissions = Arc::new(frozen.permission_map()?);
            Ok((frozen, db, permissions))
        };
        let (frozen, db, permissions) = match self.metrics() {
            Some(metrics) => metrics.time(Phase::FrozenMap, attach)?,
            None => attach()?,
        };
        framework.seed_database(db);
        framework.seed_permission_map(permissions);
        framework.install_class_source(Arc::new(FrozenClassSource::new(Arc::clone(&frozen))));
        if let Some(metrics) = self.metrics() {
            metrics.add(Counter::FrozenBytesMapped, frozen.bytes_len());
        }
        let state = FrozenState {
            boot: BootRecord {
                attached: true,
                trusted: true,
                image: path.to_path_buf(),
                startup: start.elapsed(),
                bytes_mapped: frozen.bytes_len(),
                page_mapped: frozen.is_mapped(),
            },
            framework: frozen,
            preloaded: AtomicUsize::new(0),
        };
        let _ = self.frozen.set(state);
        Ok(self.frozen_boot().expect("state just set"))
    }

    /// The frozen-boot provenance, if [`attach_frozen`] ran.
    ///
    /// [`attach_frozen`]: ScanEngine::attach_frozen
    #[must_use]
    pub fn frozen_boot(&self) -> Option<FrozenBoot> {
        let state = self.frozen.get()?;
        Some(FrozenBoot {
            attached: state.boot.attached,
            trusted: state.boot.trusted,
            image: state.boot.image.clone(),
            startup: state.boot.startup,
            bytes_mapped: state.boot.bytes_mapped,
            page_mapped: state.boot.page_mapped,
            classes_preloaded: state.preloaded.load(Ordering::Relaxed),
        })
    }

    /// The attached frozen framework image, if any.
    #[must_use]
    pub fn frozen_framework(&self) -> Option<&Arc<FrozenFramework>> {
        self.frozen.get().map(|s| &s.framework)
    }

    /// Bulk-populates the shared class cache from the image's class
    /// blobs: each *unique* blob (identical per-level bodies are
    /// deduplicated at compile time, keyed by their offset) decodes
    /// exactly once and every `(level, class)` cache entry shares the
    /// resulting `Arc`. After this, steady-state scans hit the cache
    /// for every framework class — the `clvm_load` phase degenerates to
    /// Arc clones. No-op without an image or a shared cache; a blob
    /// that fails to decode is simply skipped (scans fall back to spec
    /// materialization for that class).
    pub(crate) fn preload_frozen_classes(&self) {
        let Some(state) = self.frozen.get() else {
            return;
        };
        let Some(cache) = self.tool().shared_cache() else {
            return;
        };
        let mut decoded: HashMap<u64, Arc<ClassDef>> = HashMap::new();
        let mut count = 0usize;
        let _ = state
            .framework
            .for_each_class(|level, name, blob_off, blob| {
                let class = match decoded.entry(blob_off) {
                    Entry::Occupied(e) => Arc::clone(e.get()),
                    Entry::Vacant(v) => match codec::decode_class(blob) {
                        Ok(c) => Arc::clone(v.insert(Arc::new(c))),
                        Err(_) => return,
                    },
                };
                let name = ClassName::new(name);
                let _ = cache.get_or_materialize(level, &name, || Some(class));
                count += 1;
            });
        state.preloaded.store(count, Ordering::Relaxed);
    }

    /// Scans every package of a frozen corpus in input order — the
    /// zero-copy analogue of [`scan_batch`](ScanEngine::scan_batch).
    /// Workers decode their package straight out of the mapped image
    /// slice; no per-app file opens, no shared container buffers. A
    /// package that fails to decode yields an error-only report, like a
    /// panicking scan would.
    #[must_use]
    pub fn scan_frozen_batch(&self, corpus: &FrozenCorpus) -> Vec<Report> {
        self.scan_frozen_batch_timed(corpus).reports
    }

    /// [`scan_frozen_batch`](ScanEngine::scan_frozen_batch) with wall
    /// time and per-worker accounting.
    #[must_use]
    pub fn scan_frozen_batch_timed(&self, corpus: &FrozenCorpus) -> BatchScan {
        let start = Instant::now();
        let n = corpus.len();
        let (workers, per_app) = self.schedule(n);
        let scan_at = |i: usize| -> Report {
            match corpus.decode(i) {
                Ok(apk) => self.run_isolated(&apk, per_app),
                Err(err) => Report::from_error(
                    corpus.package(i).unwrap_or("<unreadable>"),
                    self.tool().name(),
                    ScanError::Internal {
                        phase: "frozen_decode".into(),
                        payload: err.to_string(),
                    },
                ),
            }
        };
        if workers == 1 {
            let mut stat = WorkerStat::default();
            let reports = (0..n)
                .map(|i| {
                    let t = Instant::now();
                    let r = scan_at(i);
                    stat.busy += t.elapsed();
                    stat.apps += 1;
                    r
                })
                .collect();
            return BatchScan {
                reports,
                wall: start.elapsed(),
                workers: vec![stat],
            };
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots: Vec<std::sync::OnceLock<Report>> =
            (0..n).map(|_| std::sync::OnceLock::new()).collect();
        let stats = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut stat = WorkerStat::default();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let t = Instant::now();
                            let report = scan_at(i);
                            stat.busy += t.elapsed();
                            stat.apps += 1;
                            let _ = slots[i].set(report);
                        }
                        stat
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("frozen scan worker panicked"))
                .collect()
        });
        let reports = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every index was scanned"))
            .collect();
        BatchScan {
            reports,
            wall: start.elapsed(),
            workers: stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ScanEngine;
    use saint_adf::AndroidFramework;
    use saint_frozen::freeze_apks;
    use saint_ir::{ApiLevel, Apk, ApkBuilder, BodyBuilder, ClassBuilder, ClassOrigin};

    fn apk(pkg: &str, modern: bool) -> Apk {
        let main = ClassBuilder::new(format!("{pkg}.Main"), ClassOrigin::App)
            .extends("android.app.Activity")
            .method(
                "onCreate",
                "(Landroid/os/Bundle;)V",
                |b: &mut BodyBuilder| {
                    if modern {
                        b.invoke_virtual(
                            saint_adf::well_known::context_get_color_state_list(),
                            &[],
                            None,
                        );
                    }
                    b.ret_void();
                },
            )
            .unwrap()
            .build();
        ApkBuilder::new(pkg, ApiLevel::new(19), ApiLevel::new(28))
            .activity(format!("{pkg}.Main"))
            .class(main)
            .unwrap()
            .build()
    }

    fn temp_image(tag: &str) -> PathBuf {
        std::env::temp_dir()
            .join(format!("saint-core-frozen-{tag}-{}", std::process::id()))
            .join("framework.sfrz")
    }

    #[test]
    fn frozen_boot_reports_remain_identical_to_parsed() {
        let apks: Vec<Apk> = (0..4).map(|i| apk(&format!("p{i}"), i % 2 == 0)).collect();
        let parsed = ScanEngine::new(Arc::new(AndroidFramework::curated()))
            .jobs(2)
            .scan_batch(&apks);

        let path = temp_image("parity");
        let frozen_engine = ScanEngine::new(Arc::new(AndroidFramework::curated())).jobs(2);
        let boot = frozen_engine.attach_frozen(&path).unwrap();
        assert!(!boot.attached, "first run compiles");
        frozen_engine.prewarm();
        let boot = frozen_engine.frozen_boot().unwrap();
        assert!(boot.classes_preloaded > 0);
        assert!(boot.bytes_mapped > 0);

        let corpus = saint_frozen::FrozenCorpus::from_bytes(freeze_apks(&apks)).unwrap();
        let frozen_reports = frozen_engine.scan_frozen_batch(&corpus);
        assert_eq!(frozen_reports.len(), parsed.len());
        for (f, p) in frozen_reports.iter().zip(&parsed) {
            assert_eq!(f.package, p.package);
            assert_eq!(f.mismatches, p.mismatches);
            assert_eq!(f.meter, p.meter);
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn second_attach_is_idempotent_and_second_boot_attaches() {
        let path = temp_image("idem");
        let first = ScanEngine::new(Arc::new(AndroidFramework::curated()));
        let a = first.attach_frozen(&path).unwrap();
        let b = first.attach_frozen(&path).unwrap();
        assert_eq!(a.attached, b.attached);
        // A fresh engine over the now-existing image attaches directly.
        let second = ScanEngine::new(Arc::new(AndroidFramework::curated()));
        let boot = second.attach_frozen(&path).unwrap();
        assert!(boot.attached, "second boot must reuse the image");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn attach_records_metrics() {
        let path = temp_image("metrics");
        let engine = ScanEngine::new(Arc::new(AndroidFramework::curated())).ensure_metrics();
        let boot = engine.attach_frozen(&path).unwrap();
        let snap = engine.metrics_snapshot();
        assert_eq!(
            snap.registry.counter("frozen_bytes_mapped"),
            Some(boot.bytes_mapped)
        );
        let span = snap.registry.phase("frozen_map").expect("frozen_map span");
        assert_eq!(span.count, 1);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn frozen_scan_matches_scan_batch_over_same_apps() {
        let apks: Vec<Apk> = (0..3).map(|i| apk(&format!("q{i}"), true)).collect();
        let path = temp_image("scanparity");
        let engine = ScanEngine::new(Arc::new(AndroidFramework::curated())).jobs(3);
        engine.attach_frozen(&path).unwrap();
        engine.prewarm();
        let batch = engine.scan_batch(&apks);
        let corpus = saint_frozen::FrozenCorpus::from_bytes(freeze_apks(&apks)).unwrap();
        let frozen = engine.scan_frozen_batch(&corpus);
        for (f, p) in frozen.iter().zip(&batch) {
            assert_eq!(f.package, p.package);
            assert_eq!(f.mismatches, p.mismatches);
            assert_eq!(f.meter, p.meter);
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
