//! The repair synthesizer — paper §VIII: "Another avenue for future
//! work is to develop a complementing code synthesizer to help repair
//! apps that do not properly handle detected mismatches."
//!
//! Given a report, the synthesizer patches the APK:
//!
//! * **API invocation mismatches** get the fix the paper recommends for
//!   Listing 1: the offending call (or, for deep findings, the facade
//!   call that reaches it) is wrapped in the appropriate
//!   `Build.VERSION.SDK_INT` guard — `>= since` for
//!   backward-compatibility gaps, `< removed` for forward ones, both
//!   for APIs with a bounded lifetime;
//! * **permission request mismatches** get the runtime protocol: an
//!   `onRequestPermissionsResult` handler plus an
//!   `ActivityCompat.requestPermissions` call ahead of the dangerous
//!   usage (the Kolab Notes fix);
//! * **permission revocation mismatches** additionally require moving
//!   the app onto the runtime regime, so with
//!   [`RepairOptions::apply_manifest_fixes`] the target SDK is raised
//!   (the AdAway fix); otherwise an advisory action is emitted;
//! * **API callback mismatches** cannot be guarded in code — the
//!   paper's fix is a manifest change (`minSdkVersion` up to the
//!   callback's introduction level, the FOSDEM fix), applied only with
//!   [`RepairOptions::apply_manifest_fixes`].

use std::collections::HashSet;

use saint_adf::spec::LifeSpan;
use saint_ir::{
    ApiLevel, Apk, BasicBlock, BlockId, ClassDef, Cond, DexFile, FieldRef, Instr, InvokeKind,
    MethodBody, MethodDef, MethodRef, MethodSig, Operand, Reg, Terminator,
};
use serde::Serialize;

use crate::mismatch::{Mismatch, MismatchKind};
use crate::report::Report;

/// Repair policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairOptions {
    /// Allow manifest edits (raising `minSdkVersion` /
    /// `targetSdkVersion`). Code-level guards are always allowed;
    /// manifest changes alter which devices the app ships to, so they
    /// are opt-in.
    pub apply_manifest_fixes: bool,
}

/// One performed (or advised) repair.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum RepairAction {
    /// A `SDK_INT` guard was synthesized around a call site.
    GuardInserted {
        /// Method whose body was patched.
        site: MethodRef,
        /// The API (or facade) whose calls are now guarded.
        guarded_call: MethodSig,
        /// Lower bound enforced (`SDK_INT >= since`), if any.
        at_least: Option<ApiLevel>,
        /// Upper bound enforced (`SDK_INT < removed`), if any.
        below: Option<ApiLevel>,
    },
    /// The runtime-permission protocol was synthesized onto a class.
    RuntimeProtocolAdded {
        /// Class that received the handler and the request call.
        class: saint_ir::ClassName,
    },
    /// `targetSdkVersion` was raised onto the runtime regime.
    TargetRaised {
        /// Previous target.
        from: ApiLevel,
        /// New target.
        to: ApiLevel,
    },
    /// `minSdkVersion` was raised past a callback's introduction.
    MinSdkRaised {
        /// Previous minimum.
        from: ApiLevel,
        /// New minimum.
        to: ApiLevel,
    },
    /// No automatic fix; human guidance attached.
    Advisory {
        /// The finding left unfixed.
        site: MethodRef,
        /// What a developer should do.
        suggestion: String,
    },
}

/// The synthesizer's output.
#[derive(Debug)]
pub struct RepairOutcome {
    /// The patched package.
    pub apk: Apk,
    /// Everything that was done (or advised).
    pub actions: Vec<RepairAction>,
}

/// Repairs every finding in `report` against `apk`.
#[must_use]
pub fn repair(apk: &Apk, report: &Report, opts: &RepairOptions) -> RepairOutcome {
    let mut patched = apk.clone();
    let mut actions = Vec::new();
    let mut protocol_sites: HashSet<MethodRef> = HashSet::new();
    let mut min_floor: Option<ApiLevel> = None;

    for m in &report.mismatches {
        match m.kind {
            MismatchKind::ApiInvocation => {
                // Direct finding: guard the API call itself. Deep
                // finding: the app-side fix is guarding the facade hop.
                let call_sig = m
                    .via
                    .first()
                    .map_or_else(|| m.api.signature(), MethodRef::signature);
                let bounds = guard_bounds(m);
                if let Some((at_least, below)) = bounds {
                    let changed =
                        wrap_calls_in_class(&mut patched, &m.site, &call_sig, at_least, below);
                    if changed {
                        actions.push(RepairAction::GuardInserted {
                            site: m.site.clone(),
                            guarded_call: call_sig,
                            at_least,
                            below,
                        });
                        continue;
                    }
                }
                actions.push(RepairAction::Advisory {
                    site: m.site.clone(),
                    suggestion: format!(
                        "could not locate the call to {} in the site body; guard it manually",
                        m.api
                    ),
                });
            }
            MismatchKind::ApiCallback => {
                if opts.apply_manifest_fixes {
                    if let Some(life) = m.api_life {
                        let floor = min_floor.get_or_insert(life.since);
                        *floor = (*floor).max(life.since);
                        continue;
                    }
                }
                actions.push(RepairAction::Advisory {
                    site: m.site.clone(),
                    suggestion: format!(
                        "raise minSdkVersion to {} so the {} override is delivered on every supported device",
                        m.api_life.map_or_else(|| "the callback's level".to_string(), |l| l.since.to_string()),
                        m.api
                    ),
                });
            }
            MismatchKind::PermissionRequest => {
                protocol_sites.insert(m.site.clone());
            }
            MismatchKind::PermissionRevocation => {
                if opts.apply_manifest_fixes {
                    let from = patched.manifest.target_sdk;
                    if from < ApiLevel::RUNTIME_PERMISSIONS {
                        patched.manifest.target_sdk = ApiLevel::RUNTIME_PERMISSIONS;
                        actions.push(RepairAction::TargetRaised {
                            from,
                            to: ApiLevel::RUNTIME_PERMISSIONS,
                        });
                    }
                    protocol_sites.insert(m.site.clone());
                } else {
                    actions.push(RepairAction::Advisory {
                        site: m.site.clone(),
                        suggestion:
                            "update the app to the runtime permission system and raise targetSdkVersion to 23+"
                                .to_string(),
                    });
                }
            }
            MismatchKind::DsdOveruse => {
                actions.push(RepairAction::Advisory {
                    site: m.site.clone(),
                    suggestion: format!(
                        "guard the call to {} with an SDK_INT check or raise minSdkVersion to its introduction level",
                        m.api
                    ),
                });
            }
            MismatchKind::DsdUnderuse => {
                actions.push(RepairAction::Advisory {
                    site: m.site.clone(),
                    suggestion:
                        "align the declared minSdkVersion/maxSdkVersion bounds with actual API usage"
                            .to_string(),
                });
            }
        }
    }

    for site in protocol_sites {
        if add_runtime_protocol(&mut patched, &site) {
            actions.push(RepairAction::RuntimeProtocolAdded {
                class: site.class.clone(),
            });
        }
    }
    if let Some(floor) = min_floor {
        let from = patched.manifest.min_sdk;
        // A raise must keep the declared triple satisfiable: lifting
        // minSdkVersion past targetSdkVersion (or maxSdkVersion) would
        // produce a manifest the codec rejects on decode.
        let mut ceiling = patched.manifest.target_sdk;
        if let Some(max) = patched.manifest.max_sdk {
            ceiling = ceiling.min(max);
        }
        let to = floor.min(ceiling);
        if to > from {
            patched.manifest.min_sdk = to;
            actions.push(RepairAction::MinSdkRaised { from, to });
        }
    }

    RepairOutcome {
        apk: patched,
        actions,
    }
}

/// Derives the guard bounds for an invocation finding from the API's
/// mined lifetime and the app's supported range.
fn guard_bounds(m: &Mismatch) -> Option<(Option<ApiLevel>, Option<ApiLevel>)> {
    let life: LifeSpan = m.api_life?;
    let needs_lower = m.missing_levels.iter().any(|l| *l < life.since);
    let needs_upper = life
        .removed
        .is_some_and(|r| m.missing_levels.iter().any(|l| *l >= r));
    let at_least = needs_lower.then_some(life.since);
    let below = if needs_upper { life.removed } else { None };
    (at_least.is_some() || below.is_some()).then_some((at_least, below))
}

/// Wraps every call matching `sig` inside `site`'s body (located in
/// whichever dex carries the class). Returns whether anything changed.
fn wrap_calls_in_class(
    apk: &mut Apk,
    site: &MethodRef,
    sig: &MethodSig,
    at_least: Option<ApiLevel>,
    below: Option<ApiLevel>,
) -> bool {
    let patch = |dex: &mut DexFile| -> bool {
        let Some(class) = dex.class(&site.class).cloned() else {
            return false;
        };
        let mut class = class;
        let mut changed = false;
        for method in &mut class.methods {
            if method.name != *site.name || method.descriptor != *site.descriptor {
                continue;
            }
            if let Some(body) = &method.body {
                if let Some(patched) = wrap_matching_calls(body, sig, at_least, below) {
                    method.body = Some(patched);
                    changed = true;
                }
            }
        }
        if changed {
            dex.update_class(class);
        }
        changed
    };
    let mut changed = patch(&mut apk.primary);
    for dex in &mut apk.secondary {
        changed |= patch(dex);
    }
    changed
}

/// Rewrites a body so every `Invoke` whose target matches `sig` is
/// guarded by the requested `SDK_INT` bounds. Returns `None` when no
/// call matched.
#[must_use]
pub fn wrap_matching_calls(
    body: &MethodBody,
    sig: &MethodSig,
    at_least: Option<ApiLevel>,
    below: Option<ApiLevel>,
) -> Option<MethodBody> {
    let mut blocks: Vec<BasicBlock> = body.blocks().to_vec();
    let mut next_reg = body.register_count();
    // Blocks synthesized to hold already-guarded calls; never re-split.
    let mut protected: HashSet<usize> = HashSet::new();
    let mut changed = false;

    let mut block_idx = 0;
    while block_idx < blocks.len() {
        if protected.contains(&block_idx) {
            block_idx += 1;
            continue;
        }
        let hit = blocks[block_idx].instrs.iter().position(|i| {
            matches!(i, Instr::Invoke { method, .. }
                if method.name == sig.name && method.descriptor == sig.descriptor)
        });
        let Some(i) = hit else {
            block_idx += 1;
            continue;
        };
        changed = true;

        let original = blocks[block_idx].clone();
        let call = original.instrs[i].clone();
        let head: Vec<Instr> = original.instrs[..i].to_vec();
        let tail: Vec<Instr> = original.instrs[i + 1..].to_vec();

        let sdk = Reg(next_reg);
        next_reg += 1;

        let call_block = BlockId(blocks.len() as u32);
        let tail_block = BlockId(blocks.len() as u32 + 1);

        // The guarded call, falling through to the tail.
        blocks.push(BasicBlock {
            instrs: vec![call],
            terminator: Terminator::Goto(tail_block),
        });
        protected.insert(call_block.index());
        // The rest of the original block.
        blocks.push(BasicBlock {
            instrs: tail,
            terminator: original.terminator.clone(),
        });

        // Rewrite the head block: read SDK_INT and branch.
        let mut instrs = head;
        instrs.push(Instr::FieldGet {
            dst: sdk,
            field: FieldRef::sdk_int(),
            object: None,
        });
        let terminator = match (at_least, below) {
            (Some(lo), None) => Terminator::If {
                cond: Cond::Ge,
                lhs: sdk,
                rhs: Operand::Imm(i64::from(lo.get())),
                then_blk: call_block,
                else_blk: tail_block,
            },
            (None, Some(hi)) => Terminator::If {
                cond: Cond::Lt,
                lhs: sdk,
                rhs: Operand::Imm(i64::from(hi.get())),
                then_blk: call_block,
                else_blk: tail_block,
            },
            (Some(lo), Some(hi)) => {
                // Two-sided: an intermediate block checks the upper
                // bound.
                let upper_block = BlockId(blocks.len() as u32);
                blocks.push(BasicBlock {
                    instrs: Vec::new(),
                    terminator: Terminator::If {
                        cond: Cond::Lt,
                        lhs: sdk,
                        rhs: Operand::Imm(i64::from(hi.get())),
                        then_blk: call_block,
                        else_blk: tail_block,
                    },
                });
                protected.insert(upper_block.index());
                Terminator::If {
                    cond: Cond::Ge,
                    lhs: sdk,
                    rhs: Operand::Imm(i64::from(lo.get())),
                    then_blk: upper_block,
                    else_blk: tail_block,
                }
            }
            (None, None) => return None,
        };
        blocks[block_idx] = BasicBlock { instrs, terminator };
        // Re-scan the same block index? The head no longer contains the
        // call; continue forward (the tail block will be scanned in a
        // later iteration).
        block_idx += 1;
    }

    changed.then(|| MethodBody::from_blocks(blocks).expect("synthesized guards stay well-formed"))
}

/// Adds the runtime-permission protocol around a dangerous usage: the
/// `onRequestPermissionsResult` handler on the site's class, plus an
/// `ActivityCompat.requestPermissions` call at the top of the site
/// method itself, so the grant precedes the use on every path.
fn add_runtime_protocol(apk: &mut Apk, site: &MethodRef) -> bool {
    let class_name = &site.class;
    let request_call = Instr::Invoke {
        kind: InvokeKind::Static,
        method: MethodRef::new(
            "android.support.v4.app.ActivityCompat",
            "requestPermissions",
            "(Landroid/app/Activity;[Ljava/lang/String;I)V",
        ),
        args: Vec::new(),
        dst: None,
    };
    let patch = |dex: &mut DexFile| -> bool {
        let Some(class) = dex.class(class_name).cloned() else {
            return false;
        };
        let mut class: ClassDef = class;
        let mut changed = false;
        if class
            .method(&MethodSig::new(
                "onRequestPermissionsResult",
                "(I[Ljava/lang/String;[I)V",
            ))
            .is_none()
        {
            let handler_body = MethodBody::from_blocks(vec![BasicBlock {
                instrs: vec![Instr::Nop],
                terminator: Terminator::Return(None),
            }])
            .expect("static body is valid");
            class
                .add_method(MethodDef::concrete(
                    "onRequestPermissionsResult",
                    "(I[Ljava/lang/String;[I)V",
                    handler_body,
                ))
                .expect("handler absence checked above");
            changed = true;
        }
        // Request call at the top of the site method, so the grant
        // precedes the dangerous use on every execution path.
        if let Some(m) = class
            .methods
            .iter_mut()
            .find(|m| m.name == *site.name && m.descriptor == *site.descriptor)
        {
            if let Some(body) = &m.body {
                let already = body.call_sites().any(|c| &*c.name == "requestPermissions");
                if !already {
                    let mut blocks = body.blocks().to_vec();
                    blocks[0].instrs.insert(0, request_call.clone());
                    m.body = Some(MethodBody::from_blocks(blocks).expect("prepend keeps validity"));
                    changed = true;
                }
            }
        }
        if changed {
            dex.update_class(class);
        }
        changed
    };
    let mut changed = patch(&mut apk.primary);
    if !changed {
        for dex in &mut apk.secondary {
            changed |= patch(dex);
            if changed {
                break;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompatDetector, SaintDroid};
    use saint_adf::{well_known, AndroidFramework};
    use saint_ir::{ApkBuilder, ClassBuilder, ClassOrigin, Permission};
    use std::sync::Arc;

    fn tool() -> SaintDroid {
        SaintDroid::new(Arc::new(AndroidFramework::curated()))
    }

    fn listing1() -> Apk {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .build()
    }

    #[test]
    fn backward_guard_silences_listing1() {
        let t = tool();
        let apk = listing1();
        let report = t.analyze(&apk).unwrap();
        assert_eq!(report.total(), 1);
        let out = repair(&apk, &report, &RepairOptions::default());
        assert!(matches!(out.actions[0], RepairAction::GuardInserted { .. }));
        let after = t.analyze(&out.apk).unwrap();
        assert!(after.is_clean(), "{after}");
    }

    #[test]
    fn forward_guard_for_removed_api() {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.invoke_virtual(well_known::http_client_execute(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .build();
        let t = tool();
        let report = t.analyze(&apk).unwrap();
        assert_eq!(report.total(), 1);
        let out = repair(&apk, &report, &RepairOptions::default());
        match &out.actions[0] {
            RepairAction::GuardInserted {
                below, at_least, ..
            } => {
                assert_eq!(*below, Some(ApiLevel::new(23)));
                assert_eq!(*at_least, None);
            }
            other => panic!("expected guard, got {other:?}"),
        }
        assert!(t.analyze(&out.apk).unwrap().is_clean());
    }

    #[test]
    fn deep_finding_guards_the_facade() {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.invoke_virtual(well_known::tint_helper_apply_tint(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .build();
        let t = tool();
        let report = t.analyze(&apk).unwrap();
        assert!(report.mismatches[0].is_deep());
        let out = repair(&apk, &report, &RepairOptions::default());
        match &out.actions[0] {
            RepairAction::GuardInserted { guarded_call, .. } => {
                assert_eq!(&*guarded_call.name, "applyTint");
            }
            other => panic!("expected facade guard, got {other:?}"),
        }
        assert!(t.analyze(&out.apk).unwrap().is_clean());
    }

    #[test]
    fn runtime_protocol_added_for_request_mismatch() {
        let apk = saint_corpus_kolab();
        let t = tool();
        let report = t.analyze(&apk).unwrap();
        assert_eq!(report.count(MismatchKind::PermissionRequest), 1);
        let out = repair(&apk, &report, &RepairOptions::default());
        assert!(out
            .actions
            .iter()
            .any(|a| matches!(a, RepairAction::RuntimeProtocolAdded { .. })));
        assert!(t.analyze(&out.apk).unwrap().is_clean());
    }

    // Local clone of the Kolab case shape to avoid a corpus dev-dep
    // cycle.
    fn saint_corpus_kolab() -> Apk {
        let export = ClassBuilder::new("p.Export", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("saveToCard", "()V", |b| {
                b.invoke_static(well_known::get_external_storage_directory(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        ApkBuilder::new("p", ApiLevel::new(19), ApiLevel::new(26))
            .permission(Permission::android("WRITE_EXTERNAL_STORAGE"))
            .activity("p.Export")
            .class(export)
            .unwrap()
            .build()
    }

    #[test]
    fn revocation_requires_manifest_fix() {
        let export = ClassBuilder::new("p.Export", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("saveToCard", "()V", |b| {
                b.invoke_static(well_known::get_external_storage_directory(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(15), ApiLevel::new(22))
            .permission(Permission::android("WRITE_EXTERNAL_STORAGE"))
            .class(export)
            .unwrap()
            .build();
        let t = tool();
        let report = t.analyze(&apk).unwrap();
        assert_eq!(report.count(MismatchKind::PermissionRevocation), 1);

        // Conservative: advisory only, nothing changes.
        let conservative = repair(&apk, &report, &RepairOptions::default());
        assert!(matches!(
            conservative.actions[0],
            RepairAction::Advisory { .. }
        ));
        assert_eq!(conservative.apk.manifest.target_sdk, ApiLevel::new(22));

        // Aggressive: target raised + protocol added → clean.
        let aggressive = repair(
            &apk,
            &report,
            &RepairOptions {
                apply_manifest_fixes: true,
            },
        );
        assert_eq!(
            aggressive.apk.manifest.target_sdk,
            ApiLevel::RUNTIME_PERMISSIONS
        );
        assert!(t.analyze(&aggressive.apk).unwrap().is_clean());
    }

    #[test]
    fn callback_fix_raises_min_sdk_when_allowed() {
        let layout = ClassBuilder::new("p.Layout", ClassOrigin::App)
            .extends("android.widget.LinearLayout")
            .method("drawableHotspotChanged", "(FF)V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(15), ApiLevel::new(27))
            .class(layout)
            .unwrap()
            .build();
        let t = tool();
        let report = t.analyze(&apk).unwrap();
        assert_eq!(report.apc_count(), 1);
        let out = repair(
            &apk,
            &report,
            &RepairOptions {
                apply_manifest_fixes: true,
            },
        );
        assert!(out
            .actions
            .iter()
            .any(|a| matches!(a, RepairAction::MinSdkRaised { to, .. } if to.get() == 21)));
        assert!(t.analyze(&out.apk).unwrap().is_clean());
    }

    #[test]
    fn wrap_preserves_surrounding_instructions() {
        let mut b = saint_ir::BodyBuilder::new();
        let r = b.alloc_reg();
        b.const_int(r, 7);
        b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
        b.const_int(r, 9);
        b.ret_void();
        let body = b.finish().unwrap();
        let patched = wrap_matching_calls(
            &body,
            &well_known::context_get_color_state_list().signature(),
            Some(ApiLevel::new(23)),
            None,
        )
        .unwrap();
        patched.validate().unwrap();
        // All original instructions survive.
        let total_instrs: usize = patched.blocks().iter().map(|b| b.instrs.len()).sum();
        assert_eq!(total_instrs, 4); // const, sget, call, const
                                     // And the guard reads SDK_INT.
        assert!(patched
            .blocks()
            .iter()
            .flat_map(|b| &b.instrs)
            .any(Instr::is_sdk_int_read));
    }

    #[test]
    fn wrap_without_match_returns_none() {
        let mut b = saint_ir::BodyBuilder::new();
        b.ret_void();
        let body = b.finish().unwrap();
        assert!(wrap_matching_calls(
            &body,
            &MethodSig::new("nothing", "()V"),
            Some(ApiLevel::new(23)),
            None
        )
        .is_none());
    }

    #[test]
    fn wrap_handles_multiple_sites_in_one_block() {
        let mut b = saint_ir::BodyBuilder::new();
        b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
        b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
        b.ret_void();
        let body = b.finish().unwrap();
        let patched = wrap_matching_calls(
            &body,
            &well_known::context_get_color_state_list().signature(),
            Some(ApiLevel::new(23)),
            None,
        )
        .unwrap();
        patched.validate().unwrap();
        let guards = patched
            .blocks()
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| i.is_sdk_int_read())
            .count();
        assert_eq!(guards, 2, "both call sites guarded:\n{patched}");
    }
}
