//! The batch scan engine: work-stealing parallelism over many APKs.
//!
//! The paper's RQ3 scalability claim rests on analyzing thousands of
//! apps; doing that one-at-a-time wastes both cores and the fact that
//! every app targeting level L materializes the same framework
//! classes. [`ScanEngine`] fixes both: it shares one
//! [`ShardedClassCache`] across the whole batch and drains the app
//! list with a pool of scoped worker threads pulling indices off an
//! atomic counter — natural work stealing, since a worker that drew a
//! small app simply comes back for the next index while a worker stuck
//! on a 300-KLOC app keeps crunching.
//!
//! Determinism: reports come back in input order, and each report is
//! bit-identical to what a sequential [`SaintDroid::run`] over the
//! same app produces (mismatches *and* per-app meter) — asserted by
//! the `engine_parity` integration tests. Timing fields naturally
//! differ run to run.
//!
//! The same primitive is exposed as [`par_map`] / [`par_map_indexed`]
//! for harnesses that interleave other per-app work (timing baseline
//! tools, reading corpus metadata) with the scan.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use saint_adf::AndroidFramework;
use saint_ir::Apk;
use saint_obs::{Counter, MetricsRegistry, MetricsSnapshot, TraceSink};

pub use crate::amd::invocation::DeepScanCache;
pub use saint_analysis::{ArtifactCache, CacheStats, ShardedClassCache};

use crate::detector::CompatDetector;
use crate::error::{self, ScanError};
use crate::report::Report;
use crate::saintdroid::SaintDroid;

/// A parallel scanner over batches of APKs.
///
/// Scheduling is two-level: the global worker budget (`jobs`) is split
/// into corpus-level *app slots* and intra-app *task slots* — see
/// [`app_jobs`](ScanEngine::app_jobs). A batch of small apps saturates
/// cores via app parallelism; one huge app saturates them via intra-app
/// parallelism (shared-CLVM exploration, concurrent detectors, parallel
/// framework-subtree scans). Reports are byte-identical either way.
pub struct ScanEngine {
    tool: SaintDroid,
    jobs: usize,
    app_jobs: Option<usize>,
    pub(crate) frozen: OnceLock<crate::frozen::FrozenState>,
}

/// What one worker thread did during a batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStat {
    /// Apps this worker analyzed.
    pub apps: usize,
    /// Time this worker spent inside `SaintDroid::run`.
    pub busy: Duration,
}

/// The outcome of [`ScanEngine::scan_batch_timed`].
#[derive(Debug)]
pub struct BatchScan {
    /// One report per input APK, in input order.
    pub reports: Vec<Report>,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Per-worker accounting (length = worker count actually used).
    pub workers: Vec<WorkerStat>,
}

impl BatchScan {
    /// Batch throughput in apps per second of wall time.
    #[must_use]
    pub fn apps_per_sec(&self) -> f64 {
        self.reports.len() as f64 / self.wall.as_secs_f64().max(f64::EPSILON)
    }

    /// The largest per-app materialized footprint in the batch — the
    /// deterministic stand-in for peak RSS (paper Figure 4).
    #[must_use]
    pub fn peak_loaded_bytes(&self) -> usize {
        self.reports
            .iter()
            .map(|r| r.meter.total_bytes())
            .max()
            .unwrap_or(0)
    }
}

/// The default worker count: one per available core, capped.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(4, |p| p.get().min(16))
}

/// Workers actually worth running for `n` CPU-bound items: never more
/// than requested, than items, or than hardware threads.
fn effective_workers(requested: usize, n: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(usize::MAX, |p| p.get());
    requested.min(n).min(cores).max(1)
}

impl ScanEngine {
    /// An engine over a framework model with [`default_jobs`] workers
    /// and fresh batch-wide caches: framework classes, framework-method
    /// artifacts, and framework subtree scans.
    #[must_use]
    pub fn new(framework: Arc<AndroidFramework>) -> Self {
        Self::from_tool(
            SaintDroid::new(framework)
                .with_shared_cache(Arc::new(ShardedClassCache::new()))
                .with_shared_artifact_cache(Arc::new(ArtifactCache::new()))
                .with_shared_scan_cache(Arc::new(DeepScanCache::new())),
        )
    }

    /// Wraps an already-configured tool (custom exploration policy,
    /// pre-warmed or absent cache). The tool is used as-is: pass one
    /// *without* a shared cache to get parallelism with strictly
    /// per-app materialization.
    #[must_use]
    pub fn from_tool(tool: SaintDroid) -> Self {
        ScanEngine {
            tool,
            jobs: default_jobs(),
            app_jobs: None,
            frozen: OnceLock::new(),
        }
    }

    /// Sets the requested worker count (clamped to at least 1).
    /// `jobs(1)` scans sequentially on the calling thread.
    ///
    /// The count actually used is additionally capped at the machine's
    /// available parallelism: analysis is CPU-bound, so threads beyond
    /// the core count only add context switching and lock handoff —
    /// on a single-core machine `jobs(4)` degrades to a sequential
    /// scan that still enjoys the batch-wide class cache.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The configured worker count.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.jobs
    }

    /// Sets an explicit intra-app worker count: every app slot analyzes
    /// its app with `m` intra-app tasks, and the number of concurrent
    /// app slots shrinks to `jobs / m` so the global budget holds. By
    /// default (auto) the split is derived from the batch size: as many
    /// app slots as there are apps (up to `jobs`), with the leftover
    /// budget handed to each slot as intra-app tasks.
    #[must_use]
    pub fn app_jobs(mut self, m: usize) -> Self {
        self.app_jobs = Some(m.max(1));
        self
    }

    /// The explicit intra-app worker count, if one was set.
    #[must_use]
    pub fn app_job_count(&self) -> Option<usize> {
        self.app_jobs
    }

    /// Splits the global budget into `(app slots, intra-app jobs)` for
    /// a batch of `n` apps, keeping `slots × per_app ≈ jobs`.
    ///
    /// Auto mode fills app slots first (whole-app units parallelize
    /// with zero coordination) and hands each slot the leftover budget
    /// as intra-app tasks, additionally capped by the machine's cores —
    /// analysis is CPU-bound, so intra-app threads beyond the hardware
    /// only add lock handoff. An explicit [`app_jobs`] count is honored
    /// as requested (clamped to the budget only).
    ///
    /// [`app_jobs`]: ScanEngine::app_jobs
    pub(crate) fn schedule(&self, n: usize) -> (usize, usize) {
        let budget = self.jobs.max(1);
        match self.app_jobs {
            Some(m) => {
                let per_app = m.min(budget);
                let slots = effective_workers(budget / per_app, n);
                (slots, per_app)
            }
            None => {
                let slots = effective_workers(budget, n).max(1);
                let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
                let per_app = (budget / slots).min((cores / slots).max(1)).max(1);
                (slots, per_app)
            }
        }
    }

    /// The underlying analyzer.
    #[must_use]
    pub fn tool(&self) -> &SaintDroid {
        &self.tool
    }

    /// Attaches a metrics registry: every scan through this engine
    /// records phase spans and counters into it. Reports stay
    /// byte-identical — recording is observation only.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.tool = self.tool.with_metrics(metrics);
        self
    }

    /// Attaches a trace sink: every scan emits Chrome-trace span
    /// events into it (the `--trace-json` export).
    #[must_use]
    pub fn with_trace(mut self, trace: Arc<TraceSink>) -> Self {
        self.tool = self.tool.with_trace(trace);
        self
    }

    /// Attaches a fresh registry if the engine does not carry one yet.
    /// Long-lived consumers (the daemon) call this once at startup so a
    /// `metrics` request always has something to answer with; engines
    /// built without one keep the zero-overhead default.
    #[must_use]
    pub fn ensure_metrics(self) -> Self {
        if self.tool.metrics().is_some() {
            return self;
        }
        self.with_metrics(Arc::new(MetricsRegistry::new()))
    }

    /// The attached registry, if any.
    #[must_use]
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.tool.metrics()
    }

    /// The unified observability view: phase spans and counters from
    /// the registry (empty when none is attached), plus the three
    /// shared-cache surfaces and the accumulated meter totals. The
    /// queue field is filled in by the daemon, which owns queue state.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        // With no registry attached, snapshot a fresh one: consumers
        // get every phase and counter present (at zero) either way.
        let registry = self
            .tool
            .metrics()
            .map_or_else(|| MetricsRegistry::new().snapshot(), |m| m.snapshot());
        let meter = MetricsSnapshot::meter_from(&registry);
        MetricsSnapshot {
            registry,
            class_cache: self.cache_stats().map(Into::into),
            artifact_cache: self.artifact_cache_stats().map(Into::into),
            deep_scan_cache: self.scan_cache_stats().map(Into::into),
            meter,
            queue: None,
        }
    }

    /// Pays the one-time framework costs (API-database mining and
    /// permission-map construction) up front, so the first scan through
    /// this engine is as fast as every later one. Long-lived consumers
    /// — the scan-service daemon warms its engine before accepting
    /// connections — call this once at startup; it is idempotent.
    /// When a frozen image is attached, the once-per-framework
    /// artifacts come out of the image (linear decode instead of
    /// mining) and the shared class cache is bulk-populated from the
    /// image's deduplicated class blobs, so steady-state scans never
    /// materialize framework classes from the spec at all.
    pub fn prewarm(&self) {
        let arm = self.tool.arm();
        let _ = arm.database();
        let _ = arm.permission_map();
        self.preload_frozen_classes();
    }

    /// Scans a single package on the calling thread with this engine's
    /// warm shared caches and the configured intra-app budget
    /// ([`app_jobs`](Self::app_jobs), default 1). This is the reuse
    /// hook for services that schedule whole requests themselves: `N`
    /// threads calling `scan_one` concurrently get exactly the
    /// batch-engine sharing (one framework materialization per
    /// `(level, class)` across all requests) without batch ordering.
    /// The report is byte-identical (mismatches and meter) to
    /// `scan_batch` over the same package.
    #[must_use]
    pub fn scan_one(&self, apk: &Apk) -> Report {
        let per_app = self.app_jobs.unwrap_or(1);
        self.run_isolated(apk, per_app)
    }

    /// [`scan_one`](Self::scan_one) with the failure surfaced as a
    /// typed `Err` instead of folded into the report — the entry point
    /// for callers (the scan-service daemon) that map errors onto a
    /// wire protocol rather than a report stream.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::Internal`] when the scan panicked; the
    /// panic is caught here and never crosses this boundary.
    pub fn try_scan_one(&self, apk: &Apk) -> Result<Report, ScanError> {
        self.try_run(apk, self.app_jobs.unwrap_or(1))
    }

    /// The engine's panic-isolation boundary: runs one scan under
    /// `catch_unwind`, demoting a panic anywhere in the pipeline to a
    /// typed [`ScanError`] and bumping
    /// [`Counter::ScansPanicked`]. Every scan the engine performs —
    /// single, batch, sequential or pooled — funnels through here.
    fn try_run(&self, apk: &Apk, per_app: usize) -> Result<Report, ScanError> {
        // A stale marker from an earlier caught unwind on this worker
        // thread must not label this scan's failure.
        error::reset_phase();
        match catch_unwind(AssertUnwindSafe(|| self.tool.run_with_jobs(apk, per_app))) {
            Ok(report) => Ok(report),
            Err(payload) => {
                if let Some(metrics) = self.metrics() {
                    metrics.add(Counter::ScansPanicked, 1);
                }
                Err(error::from_panic(payload))
            }
        }
    }

    /// `try_run` with the failure folded into an error-only report, so
    /// batch output keeps its one-report-per-input shape.
    pub(crate) fn run_isolated(&self, apk: &Apk, per_app: usize) -> Report {
        self.try_run(apk, per_app).unwrap_or_else(|err| {
            Report::from_error(apk.manifest.package.clone(), self.tool.name(), err)
        })
    }

    /// Activity counters of the batch class cache, if the tool carries
    /// one.
    #[must_use]
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.tool.shared_cache().map(|c| c.stats())
    }

    /// Activity counters of the batch framework-subtree scan cache, if
    /// the tool carries one.
    #[must_use]
    pub fn scan_cache_stats(&self) -> Option<CacheStats> {
        self.tool.shared_scan_cache().map(|c| c.stats())
    }

    /// Activity counters of the batch framework-artifact cache, if the
    /// tool carries one.
    #[must_use]
    pub fn artifact_cache_stats(&self) -> Option<CacheStats> {
        self.tool.shared_artifact_cache().map(|c| c.stats())
    }

    /// Scans a batch, returning one report per APK in input order.
    #[must_use]
    pub fn scan_batch(&self, apks: &[Apk]) -> Vec<Report> {
        self.scan_batch_timed(apks).reports
    }

    /// Scans a batch and reports wall time plus per-worker accounting.
    #[must_use]
    pub fn scan_batch_timed(&self, apks: &[Apk]) -> BatchScan {
        let start = Instant::now();
        let (workers, per_app) = self.schedule(apks.len());
        if workers == 1 {
            let mut stat = WorkerStat::default();
            let reports = apks
                .iter()
                .map(|apk| {
                    let t = Instant::now();
                    let r = self.run_isolated(apk, per_app);
                    stat.busy += t.elapsed();
                    stat.apps += 1;
                    r
                })
                .collect();
            return BatchScan {
                reports,
                wall: start.elapsed(),
                workers: vec![stat],
            };
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<OnceLock<Report>> = (0..apks.len()).map(|_| OnceLock::new()).collect();
        let stats = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut stat = WorkerStat::default();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(apk) = apks.get(i) else { break };
                            let t = Instant::now();
                            let report = self.run_isolated(apk, per_app);
                            stat.busy += t.elapsed();
                            stat.apps += 1;
                            // Each index is drawn exactly once, so the
                            // slot is always empty here.
                            let _ = slots[i].set(report);
                        }
                        stat
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scan worker panicked"))
                .collect()
        });
        let reports = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every index was scanned"))
            .collect();
        BatchScan {
            reports,
            wall: start.elapsed(),
            workers: stats,
        }
    }
}

impl std::fmt::Debug for ScanEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanEngine")
            .field("jobs", &self.jobs)
            .field("app_jobs", &self.app_jobs)
            .field("shared_cache", &self.tool.shared_cache().is_some())
            .finish()
    }
}

/// Applies `f(index)` for every index in `0..n` across `jobs` scoped
/// worker threads (work-stealing via an atomic index), collecting the
/// results in index order. With `jobs <= 1` or `n <= 1` it runs on the
/// calling thread.
///
/// This is the engine's scheduling core with the scan swapped out —
/// the experiment harnesses use it to time baseline tools and read
/// corpus metadata in the same pass as the SAINTDroid scan.
pub fn par_map_indexed<R, F>(jobs: usize, n: usize, f: F) -> Vec<R>
where
    R: Send + Sync,
    F: Fn(usize) -> R + Sync,
{
    let workers = effective_workers(jobs, n);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let _ = slots[i].set(f(i));
                })
            })
            .collect();
        for h in handles {
            h.join().expect("par_map worker panicked");
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every index was mapped"))
        .collect()
}

/// [`par_map_indexed`] over a slice: `f(index, &items[index])`.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed(jobs, items.len(), |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_ir::{ApiLevel, ApkBuilder, BodyBuilder, ClassBuilder, ClassOrigin};

    fn apk(pkg: &str, call_modern_api: bool) -> Apk {
        let main = ClassBuilder::new(format!("{pkg}.Main"), ClassOrigin::App)
            .extends("android.app.Activity")
            .method(
                "onCreate",
                "(Landroid/os/Bundle;)V",
                |b: &mut BodyBuilder| {
                    if call_modern_api {
                        b.invoke_virtual(
                            saint_adf::well_known::context_get_color_state_list(),
                            &[],
                            None,
                        );
                    }
                    b.ret_void();
                },
            )
            .unwrap()
            .build();
        ApkBuilder::new(pkg, ApiLevel::new(19), ApiLevel::new(28))
            .activity(format!("{pkg}.Main"))
            .class(main)
            .unwrap()
            .build()
    }

    fn small_batch() -> Vec<Apk> {
        (0..6).map(|i| apk(&format!("p{i}"), i % 2 == 0)).collect()
    }

    #[test]
    fn batch_matches_sequential_run() {
        let fw = Arc::new(AndroidFramework::curated());
        let apks = small_batch();
        let sequential: Vec<Report> = apks
            .iter()
            .map(|a| SaintDroid::new(Arc::clone(&fw)).run(a))
            .collect();
        let batch = ScanEngine::new(Arc::clone(&fw)).jobs(3).scan_batch(&apks);
        assert_eq!(batch.len(), sequential.len());
        for (b, s) in batch.iter().zip(&sequential) {
            assert_eq!(b.package, s.package);
            assert_eq!(b.mismatches, s.mismatches);
            assert_eq!(b.meter.total_bytes(), s.meter.total_bytes());
        }
    }

    #[test]
    fn batch_cache_deduplicates_materialization() {
        let fw = Arc::new(AndroidFramework::curated());
        let engine = ScanEngine::new(fw).jobs(2);
        let _ = engine.scan_batch(&small_batch());
        let stats = engine.cache_stats().expect("engine installs a cache");
        assert!(
            stats.hits > 0,
            "6 similar apps must share classes: {stats:?}"
        );
        assert!(stats.entries > 0);
    }

    #[test]
    fn timed_scan_accounts_every_app_once() {
        let fw = Arc::new(AndroidFramework::curated());
        let apks = small_batch();
        let outcome = ScanEngine::new(fw).jobs(4).scan_batch_timed(&apks);
        assert_eq!(outcome.reports.len(), apks.len());
        let worked: usize = outcome.workers.iter().map(|w| w.apps).sum();
        assert_eq!(worked, apks.len());
        assert!(outcome.wall > Duration::ZERO);
        assert!(outcome.apps_per_sec() > 0.0);
        assert!(outcome.peak_loaded_bytes() > 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let fw = Arc::new(AndroidFramework::curated());
        let outcome = ScanEngine::new(fw).scan_batch_timed(&[]);
        assert!(outcome.reports.is_empty());
        assert_eq!(outcome.peak_loaded_bytes(), 0);
    }

    #[test]
    fn par_map_preserves_order() {
        let squares = par_map_indexed(5, 100, |i| i * i);
        assert_eq!(squares.len(), 100);
        for (i, sq) in squares.iter().enumerate() {
            assert_eq!(*sq, i * i);
        }
        let items: Vec<usize> = (0..37).collect();
        let doubled = par_map(3, &items, |i, v| {
            assert_eq!(i, *v);
            v * 2
        });
        assert_eq!(doubled, items.iter().map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn two_level_schedule_splits_budget() {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        let fw = Arc::new(AndroidFramework::curated());
        let engine = ScanEngine::new(Arc::clone(&fw)).jobs(8);
        // Auto: the split always respects the global budget.
        for n in [1, 2, 100] {
            let (slots, per_app) = engine.schedule(n);
            assert!(slots >= 1 && per_app >= 1);
            assert!(slots * per_app <= 8.max(cores));
            assert!(slots <= n.max(1));
        }
        // Auto: one app → every usable worker goes intra-app.
        let (slots, per_app) = engine.schedule(1);
        assert_eq!(slots, 1);
        assert_eq!(per_app, 8.min(cores));
        // Explicit --app-jobs 4 under a budget of 8: at most two app
        // slots, exactly four intra-app tasks each.
        let engine = ScanEngine::new(fw).jobs(8).app_jobs(4);
        let (slots, per_app) = engine.schedule(100);
        assert_eq!(per_app, 4);
        assert!((1..=2).contains(&slots));
    }

    #[test]
    fn intra_app_batch_matches_sequential_run() {
        let fw = Arc::new(AndroidFramework::curated());
        let apks = small_batch();
        let sequential: Vec<Report> = apks
            .iter()
            .map(|a| SaintDroid::new(Arc::clone(&fw)).run(a))
            .collect();
        let batch = ScanEngine::new(Arc::clone(&fw))
            .jobs(4)
            .app_jobs(2)
            .scan_batch(&apks);
        for (b, s) in batch.iter().zip(&sequential) {
            assert_eq!(b.package, s.package);
            assert_eq!(b.mismatches, s.mismatches);
            assert_eq!(b.meter, s.meter);
        }
    }

    #[test]
    fn jobs_zero_clamps_to_one() {
        let fw = Arc::new(AndroidFramework::curated());
        let engine = ScanEngine::new(Arc::clone(&fw)).jobs(0);
        assert_eq!(engine.job_count(), 1);
        let (slots, per_app) = engine.schedule(5);
        assert_eq!((slots, per_app), (1, 1));
        // app_jobs(0) likewise clamps instead of dividing by zero.
        let engine = ScanEngine::new(fw).jobs(0).app_jobs(0);
        assert_eq!(engine.app_job_count(), Some(1));
        let (slots, per_app) = engine.schedule(5);
        assert_eq!((slots, per_app), (1, 1));
    }

    #[test]
    fn app_jobs_larger_than_budget_is_clamped() {
        let fw = Arc::new(AndroidFramework::curated());
        let engine = ScanEngine::new(fw).jobs(2).app_jobs(16);
        // The explicit intra-app request cannot exceed the global
        // budget: per-app shrinks to the budget, leaving one app slot.
        let (slots, per_app) = engine.schedule(10);
        assert_eq!(per_app, 2);
        assert_eq!(slots, 1);
    }

    #[test]
    fn from_tool_engine_without_caches_reports_none() {
        let fw = Arc::new(AndroidFramework::curated());
        let engine = ScanEngine::from_tool(SaintDroid::new(fw));
        assert!(engine.cache_stats().is_none());
        assert!(engine.scan_cache_stats().is_none());
        assert!(engine.artifact_cache_stats().is_none());
        // The cache-less engine still scans (strictly per-app
        // materialization).
        let report = engine.scan_one(&apk("nocache", true));
        assert_eq!(report.package, "nocache");
    }

    #[test]
    fn scan_one_matches_batch_report() {
        let fw = Arc::new(AndroidFramework::curated());
        let apks = small_batch();
        let engine = ScanEngine::new(Arc::clone(&fw)).jobs(2);
        let batch = engine.scan_batch(&apks);
        let warm = ScanEngine::new(fw).jobs(2);
        warm.prewarm();
        for (apk, expected) in apks.iter().zip(&batch) {
            let one = warm.scan_one(apk);
            assert_eq!(one.package, expected.package);
            assert_eq!(one.mismatches, expected.mismatches);
            assert_eq!(one.meter, expected.meter);
        }
    }

    #[test]
    fn metrics_snapshot_reflects_scans_and_reports_stay_identical() {
        let fw = Arc::new(AndroidFramework::curated());
        let apks = small_batch();
        let plain = ScanEngine::new(Arc::clone(&fw)).jobs(2).scan_batch(&apks);
        let metered = ScanEngine::new(Arc::clone(&fw)).jobs(2).ensure_metrics();
        let reports = metered.scan_batch(&apks);
        // Observation never changes the analysis.
        for (m, p) in reports.iter().zip(&plain) {
            assert_eq!(m.mismatches, p.mismatches);
            assert_eq!(m.meter, p.meter);
        }
        let snap = metered.metrics_snapshot();
        assert_eq!(
            snap.registry.counter("apps_scanned"),
            Some(apks.len() as u64)
        );
        let scans = snap.registry.phase("scan_total").expect("scan spans");
        assert_eq!(scans.count, apks.len() as u64);
        assert!(scans.total_ns > 0);
        let cc = snap.class_cache.expect("engine installs a class cache");
        assert_eq!(cc.hits + cc.misses, cc.lookups);
        assert!(cc.lookups > 0);
        // Meter totals equal the sum of the per-app report meters.
        let bytes: u64 = reports.iter().map(|r| r.meter.total_bytes() as u64).sum();
        assert_eq!(snap.meter.total_bytes(), bytes);
        // No registry attached → empty but well-formed snapshot.
        let bare = ScanEngine::new(fw).metrics_snapshot();
        assert_eq!(bare.registry.counter("apps_scanned"), Some(0));
        assert!(bare.queue.is_none());
    }

    #[test]
    fn par_map_sequential_fallback() {
        assert_eq!(par_map_indexed(1, 4, |i| i + 1), vec![1, 2, 3, 4]);
        assert_eq!(par_map_indexed(8, 0, |i| i), Vec::<usize>::new());
    }
}
