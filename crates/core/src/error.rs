//! Typed scan failures and the panic-isolation plumbing behind them.
//!
//! A scan that panics — a detector bug on one pathological app, an
//! injected fault, a corrupted container — must cost exactly one
//! report, never a worker thread or a whole batch. The engine wraps
//! every scan in [`std::panic::catch_unwind`] and converts the payload
//! into a [`ScanError::Internal`] carrying two things a human (or a
//! regression test) needs to triage it: *which pipeline phase* was
//! executing when the unwind started, and the rendered panic message.
//!
//! The phase is tracked with a thread-local marker that each phase
//! scope sets on entry and restores **only on success** — an unwind
//! leaves the innermost phase name in place for the catch site to
//! read. Work that panics on a *different* thread (the scoped detector
//! workers) can't use the marker, because the thread-local dies with
//! the thread; those sites re-raise on the scanning thread as a
//! [`PhasePanic`] that carries the phase name alongside the original
//! payload.

use std::any::Any;
use std::cell::Cell;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A failure recorded in a [`Report`](crate::Report) instead of
/// crashing the scan that produced it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ScanError {
    /// A pipeline phase panicked. The panic was caught at the engine's
    /// isolation boundary and demoted to this entry; the rest of the
    /// batch (and, in the daemon, every other request) is unaffected.
    Internal {
        /// Pipeline phase executing when the unwind started (`decode`,
        /// `explore`, `arm_mine`, `detect_invocation`,
        /// `detect_callback`, `detect_permission`, or `scan` when the
        /// panic predates any phase marker).
        phase: String,
        /// Rendered panic payload (the `panic!` message when it was a
        /// string, a placeholder otherwise).
        payload: String,
    },
}

impl ScanError {
    /// The phase name carried by this error.
    #[must_use]
    pub fn phase(&self) -> &str {
        match self {
            ScanError::Internal { phase, .. } => phase,
        }
    }
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanError::Internal { phase, payload } => {
                write!(f, "internal error in phase `{phase}`: {payload}")
            }
        }
    }
}

impl std::error::Error for ScanError {}

/// Phase name used when a panic unwinds before any phase scope was
/// entered (or after the marker was reset).
pub(crate) const PHASE_UNKNOWN: &str = "scan";

thread_local! {
    static CURRENT_PHASE: Cell<&'static str> = const { Cell::new(PHASE_UNKNOWN) };
}

/// Runs `f` with the thread-local phase marker set to `phase`.
///
/// The previous marker is restored only when `f` returns normally: if
/// `f` unwinds, the marker keeps the innermost phase name so the
/// engine's catch site can attribute the panic.
pub(crate) fn in_phase<T>(phase: &'static str, f: impl FnOnce() -> T) -> T {
    let prev = CURRENT_PHASE.with(|c| c.replace(phase));
    let out = f();
    CURRENT_PHASE.with(|c| c.set(prev));
    out
}

/// Resets the marker at scan entry, so a stale phase from an earlier
/// (caught) unwind on this thread can't leak into the next report.
pub(crate) fn reset_phase() {
    CURRENT_PHASE.with(|c| c.set(PHASE_UNKNOWN));
}

/// Panic payload wrapper that carries a phase name across threads.
///
/// Scoped detector workers panic on their own thread, where the
/// thread-local marker is useless to the join site; the joiner wraps
/// the original payload in one of these and re-raises with
/// [`std::panic::panic_any`] so the engine boundary sees both.
pub(crate) struct PhasePanic {
    /// Phase the panicking worker was running.
    pub phase: &'static str,
    /// The worker's original panic payload.
    pub payload: Box<dyn Any + Send>,
}

/// Renders a panic payload the way the default panic hook does:
/// `&str` and `String` payloads verbatim, anything else a placeholder.
#[must_use]
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Converts a caught panic payload into a typed error, preferring the
/// phase carried by a [`PhasePanic`] wrapper over the calling thread's
/// marker (the payload crossed a thread boundary in that case).
pub(crate) fn from_panic(payload: Box<dyn Any + Send>) -> ScanError {
    let (phase, message) = match payload.downcast::<PhasePanic>() {
        Ok(pp) => (pp.phase, panic_message(&*pp.payload)),
        Err(payload) => (CURRENT_PHASE.with(Cell::get), panic_message(&*payload)),
    };
    ScanError::Internal {
        phase: phase.to_string(),
        payload: message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};

    #[test]
    fn marker_survives_unwind_and_restores_on_success() {
        reset_phase();
        let ok = in_phase("explore", || CURRENT_PHASE.with(Cell::get));
        assert_eq!(ok, "explore");
        assert_eq!(CURRENT_PHASE.with(Cell::get), PHASE_UNKNOWN);

        let payload = catch_unwind(AssertUnwindSafe(|| {
            in_phase("detect_invocation", || panic!("boom"));
        }))
        .unwrap_err();
        // The unwind left the innermost phase in place.
        let err = from_panic(payload);
        assert_eq!(err.phase(), "detect_invocation");
        assert!(err.to_string().contains("boom"));
        reset_phase();
    }

    #[test]
    fn nested_phases_attribute_to_the_innermost() {
        reset_phase();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            in_phase("explore", || in_phase("arm_mine", || panic!("inner")));
        }))
        .unwrap_err();
        assert_eq!(from_panic(payload).phase(), "arm_mine");
        reset_phase();
    }

    #[test]
    fn phase_panic_wrapper_wins_over_thread_local() {
        reset_phase();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            in_phase("explore", || {
                panic_any(PhasePanic {
                    phase: "detect_callback",
                    payload: Box::new("from a worker".to_string()),
                });
            });
        }))
        .unwrap_err();
        let err = from_panic(payload);
        assert_eq!(err.phase(), "detect_callback");
        assert!(err.to_string().contains("from a worker"));
        reset_phase();
    }

    #[test]
    fn panic_messages_render_strings_and_placeholders() {
        assert_eq!(panic_message(&"hi"), "hi");
        assert_eq!(panic_message(&"hi".to_string()), "hi");
        assert_eq!(panic_message(&42_u32), "non-string panic payload");
    }

    #[test]
    fn scan_error_round_trips_through_serde() {
        let err = ScanError::Internal {
            phase: "decode".into(),
            payload: "injected".into(),
        };
        let json = serde_json::to_string(&err).unwrap();
        let back: ScanError = serde_json::from_str(&json).unwrap();
        assert_eq!(err, back);
    }
}
