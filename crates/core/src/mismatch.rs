//! Mismatch taxonomy — paper Table I.
//!
//! | Mismatch | Abbr | App level | Device level | Results in |
//! |---|---|---|---|---|
//! | API invocation (App → API) | API | ≥ α | < α | app invokes method introduced/updated in α |
//! | API callback (API → App) | APC | ≥ α | < α | app overrides a callback introduced/updated in α |
//! | Permission-induced | PRM | ≥ 23 / < 23 | < 23 / ≥ 23 | app misuses runtime permission checking |

use std::fmt;

use saint_adf::spec::LifeSpan;
use saint_ir::{ApiLevel, LevelRange, MethodRef, Permission};
use serde::{Deserialize, Serialize};

/// The concrete mismatch kinds SAINTDroid detects: the paper's three
/// AMD families plus the declared-SDK consistency (DSD) family added
/// by the vetting detector (Wu et al., *Scalable Online Vetting of
/// Android Apps*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MismatchKind {
    /// API invocation mismatch (abbr. **API**): the app calls a method
    /// that does not exist at some supported device level.
    ApiInvocation,
    /// API callback mismatch (abbr. **APC**): the app overrides a
    /// framework method that does not exist at some supported device
    /// level — the override is silently never invoked there.
    ApiCallback,
    /// Permission request mismatch (**PRM**): the app targets API ≥ 23
    /// and uses dangerous permissions without implementing the runtime
    /// request protocol.
    PermissionRequest,
    /// Permission revocation mismatch (**PRM**): the app targets API
    /// < 23 but uses dangerous permissions a ≥ 23 device lets the user
    /// revoke at any time.
    PermissionRevocation,
    /// Declared-SDK overuse (**DSD**): the app calls an API introduced
    /// after its declared `minSdkVersion` without an `SDK_INT` guard —
    /// a runtime crash on every supported device below the API's
    /// introduction level.
    DsdOveruse,
    /// Declared-SDK underuse (**DSD**): the declared SDK bounds are
    /// inconsistent with actual usage — `minSdkVersion` sits needlessly
    /// above every level the used APIs require, or a declared
    /// `maxSdkVersion` leaves a used API with no supported level at
    /// which it exists.
    DsdUnderuse,
}

impl MismatchKind {
    /// The three-letter family abbreviation (`API`, `APC`, `PRM`,
    /// `DSD`).
    #[must_use]
    pub fn abbreviation(self) -> &'static str {
        match self {
            MismatchKind::ApiInvocation => "API",
            MismatchKind::ApiCallback => "APC",
            MismatchKind::PermissionRequest | MismatchKind::PermissionRevocation => "PRM",
            MismatchKind::DsdOveruse | MismatchKind::DsdUnderuse => "DSD",
        }
    }
}

impl fmt::Display for MismatchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MismatchKind::ApiInvocation => "API invocation mismatch",
            MismatchKind::ApiCallback => "API callback mismatch",
            MismatchKind::PermissionRequest => "permission request mismatch",
            MismatchKind::PermissionRevocation => "permission revocation mismatch",
            MismatchKind::DsdOveruse => "declared-SDK overuse",
            MismatchKind::DsdUnderuse => "declared-SDK underuse",
        };
        f.write_str(s)
    }
}

/// Figure 1 of the paper: whether a `(device level, API lifetime)`
/// pairing falls in a mismatch region — the device below the API's
/// introduction (backward incompatibility) or at/above its removal
/// (forward incompatibility).
#[must_use]
pub fn is_mismatch_region(device: ApiLevel, api: LifeSpan) -> bool {
    !api.exists_at(device)
}

/// One detected mismatch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mismatch {
    /// Mismatch kind.
    pub kind: MismatchKind,
    /// The app method where the issue is anchored: the method
    /// containing the offending call site (API/PRM) or the overriding
    /// method itself (APC).
    pub site: MethodRef,
    /// The framework API involved: the invoked method, the overridden
    /// callback, or the dangerous-permission-bearing API.
    pub api: MethodRef,
    /// The API's mined lifetime, when applicable.
    pub api_life: Option<LifeSpan>,
    /// Supported device levels at which the mismatch manifests.
    pub missing_levels: Vec<ApiLevel>,
    /// The (guard-refined) level range under which the site executes.
    pub context: Option<LevelRange>,
    /// The dangerous permission involved (PRM kinds only).
    pub permission: Option<Permission>,
    /// Call chain from the app method to the API for detections deeper
    /// than the first framework level; empty for direct calls.
    pub via: Vec<MethodRef>,
}

impl Mismatch {
    /// Whether this mismatch was found beyond the first framework call
    /// level (the capability CID lacks; paper §III-A).
    #[must_use]
    pub fn is_deep(&self) -> bool {
        !self.via.is_empty()
    }

    /// Deduplication key: two reports of the same kind at the same site
    /// against the same API/permission are the same finding.
    #[must_use]
    pub fn dedup_key(&self) -> (MismatchKind, MethodRef, MethodRef, Option<Permission>) {
        (
            self.kind,
            self.site.clone(),
            self.api.clone(),
            self.permission.clone(),
        )
    }
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} -> {}",
            self.kind.abbreviation(),
            self.site,
            self.api
        )?;
        if let Some(p) = &self.permission {
            write!(f, " (permission {p})")?;
        }
        if !self.missing_levels.is_empty() {
            let levels: Vec<String> = self
                .missing_levels
                .iter()
                .map(ApiLevel::to_string)
                .collect();
            write!(f, " missing at levels {}", levels.join(","))?;
        }
        if self.is_deep() {
            write!(f, " via {} hops", self.via.len())?;
        }
        Ok(())
    }
}

/// Computes the supported levels at which an API with lifetime `life`
/// is missing, within `range`.
#[must_use]
pub fn missing_levels_in(range: LevelRange, life: LifeSpan) -> Vec<ApiLevel> {
    range.iter().filter(|&l| !life.exists_at(l)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(kind: MismatchKind) -> Mismatch {
        Mismatch {
            kind,
            site: MethodRef::new("p.Main", "onCreate", "()V"),
            api: MethodRef::new("android.content.Context", "getColorStateList", "(I)V"),
            api_life: Some(LifeSpan::since(23)),
            missing_levels: vec![ApiLevel::new(21), ApiLevel::new(22)],
            context: None,
            permission: None,
            via: Vec::new(),
        }
    }

    #[test]
    fn taxonomy_abbreviations_match_table_1() {
        assert_eq!(MismatchKind::ApiInvocation.abbreviation(), "API");
        assert_eq!(MismatchKind::ApiCallback.abbreviation(), "APC");
        assert_eq!(MismatchKind::PermissionRequest.abbreviation(), "PRM");
        assert_eq!(MismatchKind::PermissionRevocation.abbreviation(), "PRM");
        assert_eq!(MismatchKind::DsdOveruse.abbreviation(), "DSD");
        assert_eq!(MismatchKind::DsdUnderuse.abbreviation(), "DSD");
    }

    #[test]
    fn mismatch_region_figure_1() {
        // API introduced at 23: devices below are the red region.
        let api = LifeSpan::since(23);
        assert!(is_mismatch_region(ApiLevel::new(22), api));
        assert!(!is_mismatch_region(ApiLevel::new(23), api));
        // API removed at 23: devices at/above are the red region.
        let removed = LifeSpan::between(2, 23);
        assert!(!is_mismatch_region(ApiLevel::new(22), removed));
        assert!(is_mismatch_region(ApiLevel::new(23), removed));
    }

    #[test]
    fn missing_levels_backward_case() {
        let r = LevelRange::new(ApiLevel::new(21), ApiLevel::new(25));
        let missing = missing_levels_in(r, LifeSpan::since(23));
        assert_eq!(missing, vec![ApiLevel::new(21), ApiLevel::new(22)]);
    }

    #[test]
    fn missing_levels_forward_case() {
        let r = LevelRange::new(ApiLevel::new(21), ApiLevel::new(25));
        let missing = missing_levels_in(r, LifeSpan::between(2, 24));
        assert_eq!(missing, vec![ApiLevel::new(24), ApiLevel::new(25)]);
    }

    #[test]
    fn dedup_key_ignores_context() {
        let mut a = m(MismatchKind::ApiInvocation);
        let mut b = m(MismatchKind::ApiInvocation);
        a.context = Some(LevelRange::new(ApiLevel::new(21), ApiLevel::new(28)));
        b.context = Some(LevelRange::new(ApiLevel::new(21), ApiLevel::new(22)));
        assert_eq!(a.dedup_key(), b.dedup_key());
    }

    #[test]
    fn display_forms() {
        let s = m(MismatchKind::ApiInvocation).to_string();
        assert!(s.contains("[API]"));
        assert!(s.contains("missing at levels 21,22"));
    }

    #[test]
    fn serde_roundtrip() {
        let a = m(MismatchKind::ApiCallback);
        let json = serde_json::to_string(&a).unwrap();
        let back: Mismatch = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
