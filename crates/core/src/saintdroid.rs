//! The assembled SAINTDroid pipeline (paper Figure 2): AUM → ARM → AMD.

use std::sync::Arc;
use std::time::{Duration, Instant};

use saint_adf::AndroidFramework;
use saint_analysis::{ArtifactCache, ExploreConfig, ShardedClassCache};
use saint_ir::{Apk, ClassName, MethodRef};
use saint_obs::{Counter, MetricsRegistry, Phase, TraceSink};

use crate::amd;
use crate::arm::Arm;
use crate::aum::{AppModel, Aum};
use crate::detector::{Capabilities, CompatDetector, DetectorSet};
use crate::error::{in_phase, PhasePanic};
use crate::mismatch::{Mismatch, MismatchKind};
use crate::report::Report;

/// The raw, pre-merge outputs of one pipeline pass — everything needed
/// to splice this pass's findings into a larger report byte-identically
/// (see `saint-delta`). Produced by [`SaintDroid::run_parts`].
#[derive(Debug, Clone)]
pub struct ScanParts {
    /// Invocation findings bucketed per context root, in sorted root
    /// order (flattening reproduces Algorithm 2's flat output).
    pub invocation: Vec<(MethodRef, Vec<Mismatch>)>,
    /// Callback findings, in `all_classes` iteration order.
    pub callback: Vec<Mismatch>,
    /// Raw dangerous-permission usages (Algorithm 4's site list, before
    /// the whole-app gates are applied).
    pub usages: Vec<amd::permission::DangerousUsage>,
    /// Whether the scanned slice declares `onRequestPermissionsResult`.
    pub declares_handler: bool,
    /// Raw declared-SDK usage sites (empty unless the scanning tool's
    /// [`DetectorSet`] enables the DSD family).
    pub sdk_usages: Vec<amd::declared_sdk::SdkUsage>,
    /// Every CLVM load-table entry with its metered byte charge
    /// (`None` = remembered failed lookup).
    pub loaded: Vec<(ClassName, Option<usize>)>,
    /// Every explored method with its metered artifact bytes, sorted.
    pub methods: Vec<(MethodRef, usize)>,
}

/// The SAINTDroid analyzer: holds the once-per-framework ARM artifacts
/// and analyzes APKs with gradual class loading.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use saint_adf::AndroidFramework;
/// use saintdroid::{CompatDetector, SaintDroid};
/// use saint_ir::{ApkBuilder, ApiLevel};
///
/// let tool = SaintDroid::new(Arc::new(AndroidFramework::curated()));
/// let apk = ApkBuilder::new("com.example", ApiLevel::new(21), ApiLevel::new(28)).build();
/// let report = tool.analyze(&apk).expect("SAINTDroid analyzes any APK");
/// assert!(report.is_clean());
/// ```
pub struct SaintDroid {
    arm: Arm,
    config: ExploreConfig,
    detectors: DetectorSet,
    cache: Option<Arc<ShardedClassCache>>,
    artifact_cache: Option<Arc<ArtifactCache>>,
    scan_cache: Option<Arc<amd::invocation::DeepScanCache>>,
    app_jobs: usize,
    metrics: Option<Arc<MetricsRegistry>>,
    trace: Option<Arc<TraceSink>>,
}

impl SaintDroid {
    /// Creates the analyzer over a framework model. Each analysis
    /// materializes framework classes for itself (no cross-app
    /// sharing) — the configuration every single-app consumer wants.
    #[must_use]
    pub fn new(framework: Arc<AndroidFramework>) -> Self {
        SaintDroid {
            arm: Arm::new(framework),
            config: ExploreConfig::saintdroid(),
            detectors: DetectorSet::default(),
            cache: None,
            artifact_cache: None,
            scan_cache: None,
            app_jobs: 1,
            metrics: None,
            trace: None,
        }
    }

    /// Creates the analyzer with a custom exploration policy (used by
    /// ablation benchmarks).
    #[must_use]
    pub fn with_config(framework: Arc<AndroidFramework>, config: ExploreConfig) -> Self {
        SaintDroid {
            arm: Arm::new(framework),
            config,
            detectors: DetectorSet::default(),
            cache: None,
            artifact_cache: None,
            scan_cache: None,
            app_jobs: 1,
            metrics: None,
            trace: None,
        }
    }

    /// Attaches a metrics registry: every scan through this instance
    /// records per-phase spans (CLVM load, exploration, ARM mine, the
    /// three detectors, scan total) and bumps the monotone counters.
    /// Purely observational — reports and meters are byte-identical
    /// with or without a registry attached.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The attached metrics registry, if any.
    #[must_use]
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// Attaches a trace sink: every scan emits Chrome-trace complete
    /// spans (one per phase, named after the app's package) for
    /// `saint-cli scan --trace-json`. Purely observational, like
    /// [`with_metrics`](Self::with_metrics).
    #[must_use]
    pub fn with_trace(mut self, trace: Arc<TraceSink>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The attached trace sink, if any.
    #[must_use]
    pub fn trace(&self) -> Option<&Arc<TraceSink>> {
        self.trace.as_ref()
    }

    /// Sets the intra-app worker count (clamped to at least 1): with
    /// `jobs > 1` the Algorithm-1 exploration runs on a shared-CLVM
    /// task pool, the three AMD detectors run concurrently, and the
    /// deep framework-subtree descents of invocation detection are
    /// computed in parallel. Reports are identical to the sequential
    /// (`app_jobs = 1`) run — mismatches, order, and meter.
    #[must_use]
    pub fn with_app_jobs(mut self, jobs: usize) -> Self {
        self.app_jobs = jobs.max(1);
        self
    }

    /// The configured intra-app worker count.
    #[must_use]
    pub fn app_jobs(&self) -> usize {
        self.app_jobs
    }

    /// Attaches a batch-wide framework-class cache: every app analyzed
    /// through this instance materializes framework classes at most
    /// once per `(level, class)` for the lifetime of the cache. Reports
    /// (mismatches *and* per-app meter) are identical with or without
    /// it; see [`ShardedClassCache`] for why metering stays exact.
    #[must_use]
    pub fn with_shared_cache(mut self, cache: Arc<ShardedClassCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached batch cache, if any.
    #[must_use]
    pub fn shared_cache(&self) -> Option<&Arc<ShardedClassCache>> {
        self.cache.as_ref()
    }

    /// Attaches a batch-wide framework-artifact cache: the CFG and
    /// abstract state of a framework method are built at most once per
    /// `(level, method)` for the lifetime of the cache. Reports
    /// (mismatches *and* per-app meter) are identical with or without
    /// it; see [`ArtifactCache`].
    #[must_use]
    pub fn with_shared_artifact_cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.artifact_cache = Some(cache);
        self
    }

    /// The attached artifact cache, if any.
    #[must_use]
    pub fn shared_artifact_cache(&self) -> Option<&Arc<ArtifactCache>> {
        self.artifact_cache.as_ref()
    }

    /// Attaches a batch-wide framework-subtree scan cache: the
    /// beyond-first-level descent into a framework body is scanned at
    /// most once per `(level, method, incoming range)` for the lifetime
    /// of the cache, and replayed (re-attributed to each call site)
    /// everywhere else. Reports are identical with or without it; see
    /// [`DeepScanCache`](amd::invocation::DeepScanCache).
    #[must_use]
    pub fn with_shared_scan_cache(mut self, cache: Arc<amd::invocation::DeepScanCache>) -> Self {
        self.scan_cache = Some(cache);
        self
    }

    /// The attached subtree scan cache, if any.
    #[must_use]
    pub fn shared_scan_cache(&self) -> Option<&Arc<amd::invocation::DeepScanCache>> {
        self.scan_cache.as_ref()
    }

    /// The revision modeler (ARM) component.
    #[must_use]
    pub fn arm(&self) -> &Arm {
        &self.arm
    }

    /// The exploration policy this instance scans with. The incremental
    /// layer folds it into artifact keys so a policy change invalidates
    /// every cached slice.
    #[must_use]
    pub fn config(&self) -> &ExploreConfig {
        &self.config
    }

    /// Selects which detector families this instance runs. Defaults to
    /// [`DetectorSet::amd`] — the paper's three families, preserving
    /// the original report surface. [`DetectorSet::all`] additionally
    /// enables declared-SDK (DSD) vetting.
    #[must_use]
    pub fn with_detectors(mut self, detectors: DetectorSet) -> Self {
        self.detectors = detectors;
        self
    }

    /// The enabled detector families. The incremental layer folds the
    /// set (with the report schema version) into every content key so
    /// a set change invalidates cached artifacts instead of splicing
    /// reports that silently miss a family's findings.
    #[must_use]
    pub fn detectors(&self) -> DetectorSet {
        self.detectors
    }

    /// Builds the AUM model for an APK — exposed for tooling that wants
    /// the intermediate artifacts (paper: "SAINTDroid can be used by
    /// developers, end-users, and third-party reviewers").
    #[must_use]
    pub fn model(&self, apk: &Apk) -> AppModel {
        self.model_with(apk, self.app_jobs)
    }

    /// [`model`](Self::model) with an explicit intra-app worker count
    /// for this call.
    #[must_use]
    pub fn model_with(&self, apk: &Apk, app_jobs: usize) -> AppModel {
        Aum::build_metered(
            apk,
            self.arm.framework(),
            &self.config,
            self.cache.as_ref(),
            self.artifact_cache.as_ref(),
            app_jobs,
            self.metrics.as_ref(),
        )
    }

    /// Runs the full pipeline and returns the report.
    #[must_use]
    pub fn run(&self, apk: &Apk) -> Report {
        self.run_phased(apk).0
    }

    /// [`run`](Self::run) with an explicit intra-app worker count for
    /// this call, overriding [`with_app_jobs`](Self::with_app_jobs) —
    /// how the two-level batch scheduler hands each app its share of
    /// the global budget.
    #[must_use]
    pub fn run_with_jobs(&self, apk: &Apk, app_jobs: usize) -> Report {
        self.run_phased_with(apk, app_jobs).0
    }

    /// Runs the full pipeline, additionally returning the wall time of
    /// the two phases — model building (Algorithm-1 exploration) and
    /// mismatch detection — so benchmarks can attribute intra-app
    /// speedup per phase.
    #[must_use]
    pub fn run_phased(&self, apk: &Apk) -> (Report, Duration, Duration) {
        self.run_phased_with(apk, self.app_jobs)
    }

    /// [`run_phased`](Self::run_phased) with an explicit intra-app
    /// worker count for this call.
    #[must_use]
    pub fn run_phased_with(&self, apk: &Apk, app_jobs: usize) -> (Report, Duration, Duration) {
        let app_jobs = app_jobs.max(1);
        let package = apk.manifest.package.as_str();
        let start = Instant::now();
        let model = in_phase("explore", || self.model_with(apk, app_jobs));
        let explore_time = start.elapsed();
        // The Explore *phase* span is recorded inside the exploration
        // itself (analysis layer); here we only emit the trace event,
        // which wants the app's package on the span name.
        if let Some(trace) = &self.trace {
            trace.complete(
                format!("explore {package}"),
                Phase::Explore.name(),
                start,
                explore_time,
            );
        }
        let (db, pm) = in_phase("arm_mine", || self.arm.mine(self.metrics.as_deref()));
        let detect_start = Instant::now();

        // The detector families are independent functions of the
        // finished model; with an intra-app budget the enabled ones run
        // concurrently and merge in the fixed invocation → callback →
        // permission → declared-SDK order the sequential path uses, so
        // the report is identical. Each family records its own phase
        // span from its own worker — concurrent recording is just
        // atomics, never a lock. A disabled family contributes an empty
        // vector without touching its phase span.
        let d = self.detectors;
        let run_inv = || {
            if !d.contains(DetectorSet::INVOCATION) {
                return Vec::new();
            }
            self.observe(Phase::DetectInvocation, package, || {
                self.detect_invocation(&model, &db, app_jobs)
            })
        };
        let run_cb = || {
            if !d.contains(DetectorSet::CALLBACK) {
                return Vec::new();
            }
            self.observe(Phase::DetectCallback, package, || {
                amd::callback::detect(&model, &db)
            })
        };
        let run_prm = || {
            if !d.contains(DetectorSet::PERMISSION) {
                return Vec::new();
            }
            self.observe(Phase::DetectPermission, package, || {
                amd::permission::detect(&model, &pm)
            })
        };
        let run_dsd = || {
            if !d.contains(DetectorSet::DECLARED_SDK) {
                return Vec::new();
            }
            self.observe(Phase::DetectDeclaredSdk, package, || {
                amd::declared_sdk::detect(&model, &db)
            })
        };
        let (inv, cb, prm, dsd) = if app_jobs > 1 {
            std::thread::scope(|s| {
                let inv = s.spawn(run_inv);
                let cb = s.spawn(run_cb);
                let prm = s.spawn(run_prm);
                let dsd = s.spawn(run_dsd);
                // Join *every* handle before surfacing any panic:
                // propagating the first failure while a sibling's
                // panic is still unjoined would double-panic the
                // scope. A failed join is re-raised on this thread
                // wrapped in a `PhasePanic`, because the worker's
                // thread-local phase marker died with the worker.
                let inv = inv.join();
                let cb = cb.join();
                let prm = prm.join();
                let dsd = dsd.join();
                let unwrap = |r: std::thread::Result<Vec<crate::mismatch::Mismatch>>,
                              phase: &'static str| {
                    r.unwrap_or_else(|payload| std::panic::panic_any(PhasePanic { phase, payload }))
                };
                (
                    unwrap(inv, "detect_invocation"),
                    unwrap(cb, "detect_callback"),
                    unwrap(prm, "detect_permission"),
                    unwrap(dsd, "detect_declared_sdk"),
                )
            })
        } else {
            (run_inv(), run_cb(), run_prm(), run_dsd())
        };

        let mut report = Report::new(apk.manifest.package.clone(), self.name());
        report.extend_deduped(inv);
        report.extend_deduped(cb);
        report.extend_deduped(prm);
        report.extend_deduped(dsd);
        let detect_time = detect_start.elapsed();
        report.duration = start.elapsed();
        report.meter = model.clvm.meter();
        if let Some(metrics) = &self.metrics {
            metrics.record(Phase::ScanTotal, report.duration);
            metrics.add(Counter::AppsScanned, 1);
            metrics.add(Counter::MismatchesFound, report.mismatches.len() as u64);
            if d.contains(DetectorSet::DECLARED_SDK) {
                metrics.add(Counter::AppsVetted, 1);
                metrics.add(
                    Counter::DsdOveruseFound,
                    report.count(MismatchKind::DsdOveruse) as u64,
                );
                metrics.add(
                    Counter::DsdUnderuseFound,
                    report.count(MismatchKind::DsdUnderuse) as u64,
                );
            }
            // Fold the per-app meter into the fleet-wide byte counters;
            // the report's own meter is untouched.
            report.meter.record_into(metrics);
        }
        if let Some(trace) = &self.trace {
            trace.complete(
                format!("scan {package}"),
                Phase::ScanTotal.name(),
                start,
                report.duration,
            );
        }
        (report, explore_time, detect_time)
    }

    /// Runs the pipeline over `apk` and returns the raw, pre-merge
    /// detector outputs instead of an assembled [`Report`] — the
    /// per-slice half of an incremental scan (see `saint-delta`).
    ///
    /// Unlike [`run`](Self::run) this records *phase* spans only: the
    /// per-app aggregates (`apps_scanned`, `scan_total`,
    /// `mismatches_found`, the meter counters) are left to whoever
    /// merges the parts, so an app split into N slices is still counted
    /// once.
    #[must_use]
    pub fn run_parts(&self, apk: &Apk, app_jobs: usize) -> ScanParts {
        let app_jobs = app_jobs.max(1);
        let package = apk.manifest.package.as_str();
        let model = in_phase("explore", || self.model_with(apk, app_jobs));
        let (db, pm) = in_phase("arm_mine", || self.arm.mine(self.metrics.as_deref()));

        let d = self.detectors;
        let invocation = if d.contains(DetectorSet::INVOCATION) {
            self.observe(Phase::DetectInvocation, package, || {
                match &self.scan_cache {
                    Some(cache) => {
                        amd::invocation::detect_rooted_parallel(&model, &db, cache, app_jobs)
                    }
                    None => {
                        let cache = amd::invocation::DeepScanCache::new();
                        amd::invocation::detect_rooted_parallel(&model, &db, &cache, app_jobs)
                    }
                }
            })
        } else {
            Vec::new()
        };
        let callback = if d.contains(DetectorSet::CALLBACK) {
            self.observe(Phase::DetectCallback, package, || {
                amd::callback::detect(&model, &db)
            })
        } else {
            Vec::new()
        };
        let usages = if d.contains(DetectorSet::PERMISSION) {
            self.observe(Phase::DetectPermission, package, || {
                amd::permission::dangerous_usages(&model, &pm)
            })
        } else {
            Vec::new()
        };
        let sdk_usages = if d.contains(DetectorSet::DECLARED_SDK) {
            self.observe(Phase::DetectDeclaredSdk, package, || {
                amd::declared_sdk::usages(&model, &db)
            })
        } else {
            Vec::new()
        };
        let declares_handler =
            model.declares_app_method("onRequestPermissionsResult", "(I[Ljava/lang/String;[I)V");

        let mut methods: Vec<(MethodRef, usize)> = model
            .exploration
            .methods
            .iter()
            .map(|(m, a)| (m.clone(), a.cfg.size_bytes() + a.abs.size_bytes()))
            .collect();
        methods.sort_unstable_by(|a, b| a.0.cmp(&b.0));

        ScanParts {
            invocation,
            callback,
            usages,
            declares_handler,
            sdk_usages,
            loaded: model.clvm.loaded_entries(),
            methods,
        }
    }

    /// Runs `f`, recording it as a phase span (and a Chrome-trace event
    /// named after the app) when observation is enabled. With neither a
    /// registry nor a sink attached this is a plain call — no clocks
    /// are read.
    fn observe<T>(&self, phase: Phase, package: &str, f: impl FnOnce() -> T) -> T {
        // The phase marker and the fault-injection point piggyback on
        // the observation hook: both want exactly the per-detector
        // scope this function already delimits, and both are active
        // even with observation itself disabled.
        let fault = match phase {
            Phase::DetectInvocation => Some(saint_faults::FaultPoint::DetectInvocation),
            Phase::DetectCallback => Some(saint_faults::FaultPoint::DetectCallback),
            Phase::DetectPermission => Some(saint_faults::FaultPoint::DetectPermission),
            _ => None,
        };
        let f = || {
            in_phase(phase.name(), || {
                if let Some(point) = fault {
                    saint_faults::trip(point);
                }
                f()
            })
        };
        if self.metrics.is_none() && self.trace.is_none() {
            return f();
        }
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        if let Some(metrics) = &self.metrics {
            metrics.record(phase, elapsed);
        }
        if let Some(trace) = &self.trace {
            trace.complete(
                format!("{} {package}", phase.name()),
                phase.name(),
                start,
                elapsed,
            );
        }
        out
    }

    fn detect_invocation(
        &self,
        model: &AppModel,
        db: &saint_adf::ApiDatabase,
        app_jobs: usize,
    ) -> Vec<crate::mismatch::Mismatch> {
        match &self.scan_cache {
            Some(cache) => amd::invocation::detect_parallel(model, db, cache, app_jobs),
            None => {
                let cache = amd::invocation::DeepScanCache::new();
                amd::invocation::detect_parallel(model, db, &cache, app_jobs)
            }
        }
    }
}

impl CompatDetector for SaintDroid {
    fn name(&self) -> &'static str {
        "SAINTDroid"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            api: self.detectors.contains(DetectorSet::INVOCATION),
            apc: self.detectors.contains(DetectorSet::CALLBACK),
            prm: self.detectors.contains(DetectorSet::PERMISSION),
            dsd: self.detectors.contains(DetectorSet::DECLARED_SDK),
        }
    }

    fn analyze(&self, apk: &Apk) -> Option<Report> {
        Some(self.run(apk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mismatch::MismatchKind;
    use saint_adf::well_known;
    use saint_ir::{ApiLevel, ApkBuilder, BodyBuilder, ClassBuilder, ClassOrigin, Permission};

    fn tool() -> SaintDroid {
        SaintDroid::new(Arc::new(AndroidFramework::curated()))
    }

    /// One app exhibiting all three mismatch families at once.
    fn triple_threat() -> Apk {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method(
                "onCreate",
                "(Landroid/os/Bundle;)V",
                |b: &mut BodyBuilder| {
                    // API: getColorStateList (23) with min 19, unguarded.
                    b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
                    // PRM: camera usage, targets 26, no handler.
                    b.invoke_static(well_known::camera_open(), &[], None);
                    b.ret_void();
                },
            )
            .unwrap()
            // APC: onMultiWindowModeChanged (24) with min 19.
            .method("onMultiWindowModeChanged", "(Z)V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        ApkBuilder::new("p.triple", ApiLevel::new(19), ApiLevel::new(26))
            .permission(Permission::android("CAMERA"))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .build()
    }

    #[test]
    fn full_pipeline_detects_all_three_families() {
        let report = tool().run(&triple_threat());
        assert_eq!(report.api_count(), 1, "{report}");
        assert_eq!(report.apc_count(), 1, "{report}");
        assert!(report.prm_count() >= 1, "{report}");
        assert!(report.duration > std::time::Duration::ZERO);
        assert!(report.meter.classes_loaded > 0);
    }

    #[test]
    fn onmultiwindow_not_double_reported_as_invocation() {
        let report = tool().run(&triple_threat());
        // The APC override must not also appear as an API invocation.
        for m in report.of_kind(MismatchKind::ApiInvocation) {
            assert_ne!(&*m.api.name, "onMultiWindowModeChanged");
        }
    }

    #[test]
    fn lazy_loading_smaller_than_framework() {
        let fw = Arc::new(AndroidFramework::curated());
        let t = SaintDroid::new(Arc::clone(&fw));
        let report = t.run(&triple_threat());
        assert!(
            report.meter.classes_loaded < fw.class_count() / 2,
            "loaded {} of {}",
            report.meter.classes_loaded,
            fw.class_count()
        );
    }

    #[test]
    fn capabilities_cover_everything() {
        let t = tool();
        let c = t.capabilities();
        assert!(c.api && c.apc && c.prm);
        assert!(!c.dsd, "DSD is opt-in, not part of the default set");
        assert!(!t.requires_source());
        assert_eq!(t.name(), "SAINTDroid");
        let all = tool().with_detectors(DetectorSet::all());
        assert!(all.capabilities().dsd);
    }

    #[test]
    fn default_set_reports_no_dsd_findings() {
        // min 21 + unguarded getColorStateList is a DSD overuse, but
        // the default detector set must not report it — the paper
        // families' report surface is unchanged.
        let report = tool().run(&triple_threat());
        assert_eq!(report.dsd_count(), 0, "{report}");
    }

    #[test]
    fn dsd_enabled_pipeline_detects_all_four_families() {
        let t = tool().with_detectors(DetectorSet::all());
        let report = t.run(&triple_threat());
        assert_eq!(report.api_count(), 1, "{report}");
        assert_eq!(report.apc_count(), 1, "{report}");
        assert!(report.prm_count() >= 1, "{report}");
        assert_eq!(report.dsd_count(), 1, "{report}");
        assert_eq!(
            report.of_kind(MismatchKind::DsdOveruse).count(),
            1,
            "{report}"
        );
    }

    #[test]
    fn dsd_report_parity_across_app_jobs() {
        let apk = triple_threat();
        let mut seq = tool().with_detectors(DetectorSet::all()).run(&apk);
        let mut par = tool()
            .with_detectors(DetectorSet::all())
            .with_app_jobs(8)
            .run(&apk);
        seq.duration = Duration::ZERO;
        par.duration = Duration::ZERO;
        assert_eq!(seq, par);
    }

    #[test]
    fn clean_app_yields_clean_report() {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.invoke_virtual(well_known::activity_set_content_view(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p.clean", ApiLevel::new(21), ApiLevel::new(28))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .build();
        let report = tool().run(&apk);
        assert!(report.is_clean(), "{report}");
    }
}
