//! The common detector interface shared by SAINTDroid and the
//! baselines — the shape behind the paper's Table IV capability matrix.

use saint_ir::Apk;
use serde::{Deserialize, Serialize};

use crate::report::Report;

/// Which mismatch families a tool can detect (paper Table IV, extended
/// with the declared-SDK consistency family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capabilities {
    /// API invocation mismatches.
    pub api: bool,
    /// API callback mismatches.
    pub apc: bool,
    /// Permission-induced mismatches.
    pub prm: bool,
    /// Declared-SDK consistency mismatches (DSD overuse/underuse).
    pub dsd: bool,
}

impl Capabilities {
    /// Every family, DSD included (SAINTDroid's row with the
    /// declared-SDK detector enabled).
    #[must_use]
    pub fn all() -> Self {
        Capabilities {
            api: true,
            apc: true,
            prm: true,
            dsd: true,
        }
    }
}

impl std::fmt::Display for Capabilities {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mark = |b: bool| if b { "✓" } else { "✗" };
        write!(
            f,
            "API {} | APC {} | PRM {} | DSD {}",
            mark(self.api),
            mark(self.apc),
            mark(self.prm),
            mark(self.dsd)
        )
    }
}

/// The set of detector families one [`SaintDroid`](crate::SaintDroid)
/// instance runs, as a compact bitset. The set is part of a scan's
/// *identity*: the incremental layer folds [`bits`](Self::bits) into
/// every content key, and the daemon advertises it so clients can pin
/// the families they expect a report to cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DetectorSet {
    bits: u8,
}

impl DetectorSet {
    /// The API invocation detector (paper Algorithm 2).
    pub const INVOCATION: DetectorSet = DetectorSet { bits: 0b0001 };
    /// The API callback detector (paper Algorithm 3).
    pub const CALLBACK: DetectorSet = DetectorSet { bits: 0b0010 };
    /// The permission-induced detector (paper Algorithm 4).
    pub const PERMISSION: DetectorSet = DetectorSet { bits: 0b0100 };
    /// The declared-SDK consistency detector (DSD overuse/underuse).
    pub const DECLARED_SDK: DetectorSet = DetectorSet { bits: 0b1000 };

    /// The paper's three AMD families — the default set, preserving
    /// the original report surface byte-for-byte.
    #[must_use]
    pub fn amd() -> Self {
        Self::INVOCATION | Self::CALLBACK | Self::PERMISSION
    }

    /// Every family, the declared-SDK detector included.
    #[must_use]
    pub fn all() -> Self {
        Self::amd() | Self::DECLARED_SDK
    }

    /// The raw bitmask — what the incremental layer folds into content
    /// keys (a changed set must never replay another set's artifacts).
    #[must_use]
    pub const fn bits(self) -> u8 {
        self.bits
    }

    /// Whether every family in `other` is enabled in `self`.
    #[must_use]
    pub const fn contains(self, other: DetectorSet) -> bool {
        self.bits & other.bits == other.bits
    }

    /// Parses the CLI/wire form: `amd`, `all`, or a comma-separated
    /// list of `api`, `apc`, `prm`, `dsd` (the canonical
    /// [`Display`](std::fmt::Display) rendering round-trips).
    ///
    /// # Errors
    ///
    /// Returns the offending token on anything unrecognized or an
    /// empty set.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim() {
            "amd" => return Ok(Self::amd()),
            "all" => return Ok(Self::all()),
            _ => {}
        }
        let mut set = DetectorSet { bits: 0 };
        for token in s.split(',') {
            set = set
                | match token.trim() {
                    "api" => Self::INVOCATION,
                    "apc" => Self::CALLBACK,
                    "prm" => Self::PERMISSION,
                    "dsd" => Self::DECLARED_SDK,
                    other => return Err(format!("unknown detector family `{other}`")),
                };
        }
        if set.bits == 0 {
            return Err("empty detector set".to_string());
        }
        Ok(set)
    }
}

impl Default for DetectorSet {
    fn default() -> Self {
        Self::amd()
    }
}

impl std::ops::BitOr for DetectorSet {
    type Output = DetectorSet;
    fn bitor(self, rhs: DetectorSet) -> DetectorSet {
        DetectorSet {
            bits: self.bits | rhs.bits,
        }
    }
}

impl std::fmt::Display for DetectorSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (family, name) in [
            (Self::INVOCATION, "api"),
            (Self::CALLBACK, "apc"),
            (Self::PERMISSION, "prm"),
            (Self::DECLARED_SDK, "dsd"),
        ] {
            if self.contains(family) {
                if !first {
                    f.write_str(",")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        Ok(())
    }
}

/// A compatibility-issue detector over APKs.
pub trait CompatDetector {
    /// The tool's display name (`SAINTDroid`, `CID`, `CIDER`, `Lint`).
    fn name(&self) -> &'static str;

    /// Which mismatch families the tool covers.
    fn capabilities(&self) -> Capabilities;

    /// Whether the tool needs buildable app source (LINT does; paper
    /// §IV-A excluded eight benchmark apps for it).
    fn requires_source(&self) -> bool {
        false
    }

    /// Analyzes one APK and reports mismatches plus resource usage.
    /// Tools that cannot analyze the app (e.g. missing source) return
    /// `None` — the dashes in the paper's tables.
    fn analyze(&self, apk: &Apk) -> Option<Report>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_display() {
        let c = Capabilities {
            api: true,
            apc: false,
            prm: true,
            dsd: false,
        };
        assert_eq!(c.to_string(), "API ✓ | APC ✗ | PRM ✓ | DSD ✗");
        assert_eq!(
            Capabilities::all().to_string(),
            "API ✓ | APC ✓ | PRM ✓ | DSD ✓"
        );
    }

    #[test]
    fn detector_set_parse_and_display_round_trip() {
        assert_eq!(DetectorSet::parse("amd").unwrap(), DetectorSet::amd());
        assert_eq!(DetectorSet::parse("all").unwrap(), DetectorSet::all());
        let set = DetectorSet::parse("api,dsd").unwrap();
        assert!(set.contains(DetectorSet::INVOCATION));
        assert!(set.contains(DetectorSet::DECLARED_SDK));
        assert!(!set.contains(DetectorSet::CALLBACK));
        assert_eq!(set.to_string(), "api,dsd");
        assert_eq!(DetectorSet::parse(&set.to_string()).unwrap(), set);
        assert!(DetectorSet::parse("bogus").is_err());
        assert!(DetectorSet::parse("").is_err());
    }

    #[test]
    fn detector_set_default_is_the_paper_families() {
        let d = DetectorSet::default();
        assert_eq!(d, DetectorSet::amd());
        assert!(!d.contains(DetectorSet::DECLARED_SDK));
        assert_eq!(d.to_string(), "api,apc,prm");
        // The bit layout is part of delta-key identity; pin it.
        assert_eq!(DetectorSet::amd().bits(), 0b0111);
        assert_eq!(DetectorSet::all().bits(), 0b1111);
    }

    #[test]
    fn trait_is_object_safe() {
        fn _take(_: &dyn CompatDetector) {}
    }
}
