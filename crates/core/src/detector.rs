//! The common detector interface shared by SAINTDroid and the
//! baselines — the shape behind the paper's Table IV capability matrix.

use saint_ir::Apk;
use serde::{Deserialize, Serialize};

use crate::report::Report;

/// Which mismatch families a tool can detect (paper Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capabilities {
    /// API invocation mismatches.
    pub api: bool,
    /// API callback mismatches.
    pub apc: bool,
    /// Permission-induced mismatches.
    pub prm: bool,
}

impl Capabilities {
    /// All three families (SAINTDroid's row in Table IV).
    #[must_use]
    pub fn all() -> Self {
        Capabilities {
            api: true,
            apc: true,
            prm: true,
        }
    }
}

impl std::fmt::Display for Capabilities {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mark = |b: bool| if b { "✓" } else { "✗" };
        write!(
            f,
            "API {} | APC {} | PRM {}",
            mark(self.api),
            mark(self.apc),
            mark(self.prm)
        )
    }
}

/// A compatibility-issue detector over APKs.
pub trait CompatDetector {
    /// The tool's display name (`SAINTDroid`, `CID`, `CIDER`, `Lint`).
    fn name(&self) -> &'static str;

    /// Which mismatch families the tool covers.
    fn capabilities(&self) -> Capabilities;

    /// Whether the tool needs buildable app source (LINT does; paper
    /// §IV-A excluded eight benchmark apps for it).
    fn requires_source(&self) -> bool {
        false
    }

    /// Analyzes one APK and reports mismatches plus resource usage.
    /// Tools that cannot analyze the app (e.g. missing source) return
    /// `None` — the dashes in the paper's tables.
    fn analyze(&self, apk: &Apk) -> Option<Report>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_display() {
        let c = Capabilities {
            api: true,
            apc: false,
            prm: true,
        };
        assert_eq!(c.to_string(), "API ✓ | APC ✗ | PRM ✓");
        assert_eq!(Capabilities::all().to_string(), "API ✓ | APC ✓ | PRM ✓");
    }

    #[test]
    fn trait_is_object_safe() {
        fn _take(_: &dyn CompatDetector) {}
    }
}
