//! # saintdroid — the paper's primary contribution
//!
//! A reproduction of **SAINTDroid: Scalable, Automated Incompatibility
//! Detection for Android** (DSN 2022). SAINTDroid statically detects
//! three families of crash-leading Android compatibility issues
//! (paper Table I):
//!
//! * **API invocation mismatches** — the app calls a method missing at
//!   some supported device level (Algorithm 2);
//! * **API callback mismatches** — the app overrides a framework method
//!   missing at some supported level (Algorithm 3);
//! * **permission-induced mismatches** — the app misuses the API-23
//!   runtime permission system (Algorithm 4).
//!
//! Its defining trait is *gradual class loading*: instead of loading
//! the whole app + framework monolithically, a Class Loader Virtual
//! Machine loads classes on demand as a worklist-driven reachability
//! analysis discovers them (Algorithm 1), letting the analysis walk
//! seamlessly from app code into framework code and back.
//!
//! ```
//! use std::sync::Arc;
//! use saint_adf::{well_known, AndroidFramework};
//! use saintdroid::{CompatDetector, MismatchKind, SaintDroid};
//! use saint_ir::{ApkBuilder, ApiLevel, ClassBuilder, ClassOrigin};
//!
//! // An app with minSdkVersion 21 calling an API introduced in 23:
//! let main = ClassBuilder::new("com.x.Main", ClassOrigin::App)
//!     .extends("android.app.Activity")
//!     .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
//!         b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
//!         b.ret_void();
//!     })?
//!     .build();
//! let apk = ApkBuilder::new("com.x", ApiLevel::new(21), ApiLevel::new(28))
//!     .activity("com.x.Main")
//!     .class(main)?
//!     .build();
//!
//! let tool = SaintDroid::new(Arc::new(AndroidFramework::curated()));
//! let report = tool.analyze(&apk).unwrap();
//! assert_eq!(report.count(MismatchKind::ApiInvocation), 1);
//! # Ok::<(), saint_ir::IrError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod amd;
mod arm;
mod aum;
mod detector;
pub mod engine;
mod error;
mod frozen;
mod mismatch;
pub mod repair;
mod report;
mod saintdroid;

pub use arm::Arm;
pub use aum::{is_app_origin, AppModel, Aum};
pub use detector::{Capabilities, CompatDetector, DetectorSet};
pub use engine::{BatchScan, ScanEngine, WorkerStat};
pub use error::{panic_message, ScanError};
pub use frozen::FrozenBoot;
pub use mismatch::{is_mismatch_region, missing_levels_in, Mismatch, MismatchKind};
pub use report::{Report, REPORT_SCHEMA_VERSION};
pub use saintdroid::{SaintDroid, ScanParts};
