//! ARM — the Android Revision Modeler (paper §III-B).
//!
//! Wraps a framework model and exposes the two once-per-framework
//! artifacts every app analysis reuses: the mined [`ApiDatabase`] and
//! the PScout-style [`PermissionMap`]. Both are built lazily on first
//! use and shared thereafter — "the API database is constructed once
//! for a given framework … as a reusable model upon which the
//! compatibility analysis of all apps relies."

use std::sync::Arc;

use saint_adf::{AndroidFramework, ApiDatabase, PermissionMap};
use saint_analysis::FrameworkProvider;
use saint_ir::ApiLevel;

/// The revision modeler.
#[derive(Debug, Clone)]
pub struct Arm {
    framework: Arc<AndroidFramework>,
}

impl Arm {
    /// Wraps a framework model.
    #[must_use]
    pub fn new(framework: Arc<AndroidFramework>) -> Self {
        Arm { framework }
    }

    /// The framework model itself.
    #[must_use]
    pub fn framework(&self) -> &Arc<AndroidFramework> {
        &self.framework
    }

    /// The mined API lifetime database.
    #[must_use]
    pub fn database(&self) -> Arc<ApiDatabase> {
        self.framework.database()
    }

    /// The method → permission map.
    #[must_use]
    pub fn permission_map(&self) -> Arc<PermissionMap> {
        self.framework.permission_map()
    }

    /// Fetches both once-per-framework artifacts, recording the
    /// acquisition as one [`saint_obs::Phase::ArmMine`] span when a
    /// registry is attached. The first call per framework pays the
    /// actual mining cost; warm calls record near-zero spans — which is
    /// itself the observable signal that ARM reuse is working (the
    /// paper's "constructed once … reusable model" claim).
    #[must_use]
    pub fn mine(
        &self,
        metrics: Option<&saint_obs::MetricsRegistry>,
    ) -> (Arc<ApiDatabase>, Arc<PermissionMap>) {
        let fetch = || (self.framework.database(), self.framework.permission_map());
        match metrics {
            Some(metrics) => metrics.time(saint_obs::Phase::ArmMine, fetch),
            None => fetch(),
        }
    }

    /// A class provider serving the framework as it exists at `level`
    /// (clamped into the modeled range).
    #[must_use]
    pub fn provider(&self, level: ApiLevel) -> FrameworkProvider {
        FrameworkProvider::new(Arc::clone(&self.framework), level.clamp_modeled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_are_shared_across_calls() {
        let arm = Arm::new(Arc::new(AndroidFramework::curated()));
        assert!(Arc::ptr_eq(&arm.database(), &arm.database()));
        assert!(Arc::ptr_eq(&arm.permission_map(), &arm.permission_map()));
    }

    #[test]
    fn provider_clamps_level() {
        let arm = Arm::new(Arc::new(AndroidFramework::curated()));
        let p = arm.provider(ApiLevel::new(99));
        assert_eq!(p.level(), ApiLevel::new(29));
    }
}
