//! AUM — the API Usage Modeler (paper §III-A).
//!
//! Builds the per-app analysis model: a [`Clvm`] wired with the app's
//! primary dex, its bundled secondary dex payloads, and the framework
//! at the app's target level; then runs the Algorithm-1 exploration to
//! produce the method universe, call graph and late-binding
//! discoveries. Framework ancestors of app classes are resolved once
//! here (they drive the callback detector).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use saint_adf::AndroidFramework;
use saint_analysis::{
    app_method_roots, explore_parallel, ArtifactCache, Clvm, Exploration, ExploreConfig,
    FrameworkProvider, PrimaryDexProvider, SecondaryDexProvider, ShardedClassCache,
};
use saint_ir::{ApiLevel, Apk, ClassDef, ClassName, ClassOrigin, LevelRange, Manifest};

/// The per-app analysis model the AMD detectors consume.
pub struct AppModel {
    /// The app's manifest (cloned out of the APK).
    pub manifest: Manifest,
    /// Device levels the app declares support for.
    pub supported: LevelRange,
    /// The app's target level, clamped into the modeled range — the
    /// framework snapshot classes are materialized from.
    pub target: ApiLevel,
    /// Every class bundled in the package (primary + payloads).
    pub app_classes: Vec<Arc<ClassDef>>,
    /// The exploration result (methods, call graph, resolutions).
    pub exploration: Exploration,
    /// The class loader, retained for post-exploration lookups and its
    /// meter.
    pub clvm: Clvm,
    fw_ancestors: HashMap<ClassName, Option<ClassName>>,
    /// Name → descriptors of every method declared by an app class —
    /// built once so per-API permission-handler probes are O(1) instead
    /// of walking every method of every class.
    declared_methods: HashMap<String, HashSet<String>>,
}

impl AppModel {
    /// The first framework class above `class` in the superclass
    /// chain, if any (resolved once at build time).
    #[must_use]
    pub fn framework_ancestor(&self, class: &ClassName) -> Option<&ClassName> {
        self.fw_ancestors.get(class).and_then(Option::as_ref)
    }

    /// Whether any app (non-framework) class declares a method with
    /// this name and descriptor — e.g. the runtime-permission handler
    /// Algorithm 4 looks for.
    #[must_use]
    pub fn declares_app_method(&self, name: &str, descriptor: &str) -> bool {
        self.declared_methods
            .get(name)
            .is_some_and(|descriptors| descriptors.contains(descriptor))
    }
}

impl std::fmt::Debug for AppModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppModel")
            .field("package", &self.manifest.package)
            .field("supported", &self.supported)
            .field("methods", &self.exploration.methods.len())
            .finish()
    }
}

/// The API Usage Modeler.
#[derive(Debug, Default)]
pub struct Aum;

impl Aum {
    /// Builds the analysis model for an APK against a framework.
    #[must_use]
    pub fn build(apk: &Apk, framework: &Arc<AndroidFramework>, config: &ExploreConfig) -> AppModel {
        Self::build_cached(apk, framework, config, None, None, 1)
    }

    /// Builds the analysis model, optionally serving framework-class
    /// materializations from a batch-wide [`ShardedClassCache`] and
    /// framework-method artifacts (CFG + abstract state) from a
    /// batch-wide [`ArtifactCache`]. The resulting model (and its
    /// per-app meter) is identical either way; only where the work
    /// happens moves from per-app to per-batch.
    ///
    /// `app_jobs > 1` runs the Algorithm-1 exploration on that many
    /// worker threads sharing the CLVM; the model is identical to the
    /// sequential build (see [`explore_parallel`]).
    #[must_use]
    pub fn build_cached(
        apk: &Apk,
        framework: &Arc<AndroidFramework>,
        config: &ExploreConfig,
        cache: Option<&Arc<ShardedClassCache>>,
        artifacts: Option<&Arc<ArtifactCache>>,
        app_jobs: usize,
    ) -> AppModel {
        Self::build_metered(apk, framework, config, cache, artifacts, app_jobs, None)
    }

    /// [`build_cached`](Self::build_cached) with a metrics registry
    /// attached to the model's CLVM: class materializations and the
    /// exploration are recorded as phase spans, and the detectors reach
    /// the registry through `model.clvm`. The model itself — classes,
    /// exploration, meter — is identical with or without it.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn build_metered(
        apk: &Apk,
        framework: &Arc<AndroidFramework>,
        config: &ExploreConfig,
        cache: Option<&Arc<ShardedClassCache>>,
        artifacts: Option<&Arc<ArtifactCache>>,
        app_jobs: usize,
        metrics: Option<&Arc<saint_obs::MetricsRegistry>>,
    ) -> AppModel {
        let target = apk.manifest.target_sdk.clamp_modeled();
        let mut clvm = Clvm::new();
        if let Some(metrics) = metrics {
            clvm.set_metrics(Arc::clone(metrics));
        }
        clvm.add_provider(Box::new(PrimaryDexProvider::new(apk)));
        for dex in &apk.secondary {
            clvm.add_provider(Box::new(SecondaryDexProvider::new(dex)));
        }
        let mut provider = match cache {
            Some(cache) => {
                FrameworkProvider::with_cache(Arc::clone(framework), target, Arc::clone(cache))
            }
            None => FrameworkProvider::new(Arc::clone(framework), target),
        };
        if let Some(metrics) = metrics {
            provider = provider.with_metrics(Arc::clone(metrics));
        }
        clvm.add_provider(Box::new(provider));

        let exploration = explore_parallel(
            &clvm,
            app_method_roots(apk),
            config,
            artifacts.map(|a| (a.as_ref(), target)),
            app_jobs,
        );

        // Snapshot the package's classes and resolve each one's
        // framework ancestor (cheap: classes on the chain are loaded at
        // most once; most are already in the CLVM).
        let mut app_classes = Vec::with_capacity(apk.class_count());
        let mut fw_ancestors = HashMap::new();
        let mut declared_methods: HashMap<String, HashSet<String>> = HashMap::new();
        for class in apk.all_classes() {
            let arc = clvm
                .load_class(&class.name)
                .unwrap_or_else(|| Arc::new(class.clone()));
            fw_ancestors.insert(class.name.clone(), clvm.framework_ancestor(&class.name));
            for m in &arc.methods {
                declared_methods
                    .entry(m.name.clone())
                    .or_default()
                    .insert(m.descriptor.clone());
            }
            app_classes.push(arc);
        }

        AppModel {
            manifest: apk.manifest.clone(),
            supported: apk.manifest.supported_levels(),
            target,
            app_classes,
            exploration,
            clvm,
            fw_ancestors,
            declared_methods,
        }
    }
}

/// Classifies whether an analyzed method belongs to the app side
/// (anything that shipped in the package) rather than the platform.
#[must_use]
pub fn is_app_origin(origin: ClassOrigin) -> bool {
    !matches!(origin, ClassOrigin::Framework)
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_ir::{ApkBuilder, ClassBuilder};

    fn framework() -> Arc<AndroidFramework> {
        Arc::new(AndroidFramework::curated())
    }

    fn demo_apk() -> Apk {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        let plain = ClassBuilder::new("p.Util", ClassOrigin::App).build();
        ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .class(plain)
            .unwrap()
            .build()
    }

    #[test]
    fn model_captures_manifest_and_range() {
        let model = Aum::build(&demo_apk(), &framework(), &ExploreConfig::saintdroid());
        assert_eq!(model.manifest.package, "p");
        assert_eq!(model.supported.min(), ApiLevel::new(21));
        assert_eq!(model.target, ApiLevel::new(28));
        assert_eq!(model.app_classes.len(), 2);
    }

    #[test]
    fn framework_ancestors_resolved() {
        let model = Aum::build(&demo_apk(), &framework(), &ExploreConfig::saintdroid());
        assert_eq!(
            model
                .framework_ancestor(&ClassName::new("p.Main"))
                .map(ClassName::as_str),
            Some("android.app.Activity")
        );
        // Every class bottoms out at java.lang.Object, which the
        // framework model provides — so even plain utility classes have
        // a framework ancestor (their methods just never match an API).
        assert_eq!(
            model
                .framework_ancestor(&ClassName::new("p.Util"))
                .map(ClassName::as_str),
            Some("java.lang.Object")
        );
    }

    #[test]
    fn declares_app_method_scans_all_classes() {
        let model = Aum::build(&demo_apk(), &framework(), &ExploreConfig::saintdroid());
        assert!(model.declares_app_method("onCreate", "(Landroid/os/Bundle;)V"));
        assert!(
            !model.declares_app_method("onRequestPermissionsResult", "(I[Ljava/lang/String;[I)V")
        );
    }

    #[test]
    fn target_is_clamped() {
        let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(33)).build();
        let model = Aum::build(&apk, &framework(), &ExploreConfig::saintdroid());
        assert_eq!(model.target, ApiLevel::new(29));
    }
}
