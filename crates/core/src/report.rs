//! Analysis reports: mismatches plus resource accounting.

use std::collections::{BTreeSet, HashMap};
use std::time::Duration;

use saint_analysis::LoadMeter;
use serde::{Deserialize, Serialize};

use crate::error::ScanError;
use crate::mismatch::{Mismatch, MismatchKind};

/// Version of the report schema: the set of mismatch kinds a complete
/// report can carry plus the report's field shape. Bumped whenever a
/// detector family is added or a kind's meaning changes, so cached
/// artifacts produced under an older schema can never be replayed as
/// complete reports (the incremental layer folds this into every
/// content key *and* its store header — see `saint-delta`).
///
/// History: 1 = the paper's three AMD families; 2 = declared-SDK
/// consistency (DSD) kinds added.
pub const REPORT_SCHEMA_VERSION: u32 = 2;

/// The outcome of analyzing one app with one detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// The analyzed app's package id.
    pub package: String,
    /// Name of the detector that produced this report.
    pub detector: String,
    /// All detected mismatches, deduplicated.
    pub mismatches: Vec<Mismatch>,
    /// Wall-clock analysis time.
    pub duration: Duration,
    /// What the analysis materialized (classes, methods, bytes) — the
    /// Figure-4 quantity.
    pub meter: LoadMeter,
    /// Failures demoted to report entries by the engine's panic
    /// isolation. A report with entries here is *partial*: the scan
    /// did not finish, and its mismatch set must not be trusted as
    /// complete. Empty on every successful scan.
    pub errors: Vec<ScanError>,
}

impl Report {
    /// Creates an empty report.
    #[must_use]
    pub fn new(package: impl Into<String>, detector: impl Into<String>) -> Self {
        Report {
            package: package.into(),
            detector: detector.into(),
            mismatches: Vec::new(),
            duration: Duration::ZERO,
            meter: LoadMeter::new(),
            errors: Vec::new(),
        }
    }

    /// Creates a report that records only a scan failure — what the
    /// engine hands back when a whole scan panicked and there is no
    /// partial result to salvage.
    #[must_use]
    pub fn from_error(
        package: impl Into<String>,
        detector: impl Into<String>,
        error: ScanError,
    ) -> Self {
        let mut report = Report::new(package, detector);
        report.errors.push(error);
        report
    }

    /// Whether the scan behind this report failed partway through.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        !self.errors.is_empty()
    }

    /// Adds mismatches, dropping duplicates (same kind, site, API and
    /// permission) and merging their missing-level sets. Duplicates are
    /// found through a `dedup_key() → index` side table (O(1) per
    /// addition instead of a linear scan over everything added so far);
    /// output order and merge semantics are unchanged.
    pub fn extend_deduped(&mut self, additions: impl IntoIterator<Item = Mismatch>) {
        let mut index: HashMap<_, usize> = HashMap::with_capacity(self.mismatches.len());
        for (i, m) in self.mismatches.iter().enumerate() {
            // First index wins, matching the linear scan this replaces.
            index.entry(m.dedup_key()).or_insert(i);
        }
        for add in additions {
            let key = add.dedup_key();
            if let Some(&i) = index.get(&key) {
                let existing = &mut self.mismatches[i];
                let mut levels: BTreeSet<_> = existing.missing_levels.iter().copied().collect();
                levels.extend(add.missing_levels.iter().copied());
                existing.missing_levels = levels.into_iter().collect();
                if existing.via.len() > add.via.len() {
                    existing.via = add.via;
                }
            } else {
                index.insert(key, self.mismatches.len());
                self.mismatches.push(add);
            }
        }
    }

    /// Number of mismatches of a kind.
    #[must_use]
    pub fn count(&self, kind: MismatchKind) -> usize {
        self.mismatches.iter().filter(|m| m.kind == kind).count()
    }

    /// Number of API invocation mismatches.
    #[must_use]
    pub fn api_count(&self) -> usize {
        self.count(MismatchKind::ApiInvocation)
    }

    /// Number of API callback mismatches.
    #[must_use]
    pub fn apc_count(&self) -> usize {
        self.count(MismatchKind::ApiCallback)
    }

    /// Number of permission-induced mismatches (request + revocation).
    #[must_use]
    pub fn prm_count(&self) -> usize {
        self.count(MismatchKind::PermissionRequest) + self.count(MismatchKind::PermissionRevocation)
    }

    /// Number of declared-SDK consistency mismatches (overuse +
    /// underuse).
    #[must_use]
    pub fn dsd_count(&self) -> usize {
        self.count(MismatchKind::DsdOveruse) + self.count(MismatchKind::DsdUnderuse)
    }

    /// Total mismatches.
    #[must_use]
    pub fn total(&self) -> usize {
        self.mismatches.len()
    }

    /// Whether the report flags any issue.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Mismatches of one kind.
    pub fn of_kind(&self, kind: MismatchKind) -> impl Iterator<Item = &Mismatch> {
        self.mismatches.iter().filter(move |m| m.kind == kind)
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} on {}: {} mismatches (API {}, APC {}, PRM {}, DSD {}) in {:.1?} [{}]",
            self.detector,
            self.package,
            self.total(),
            self.api_count(),
            self.apc_count(),
            self.prm_count(),
            self.dsd_count(),
            self.duration,
            self.meter,
        )?;
        for m in &self.mismatches {
            writeln!(f, "  {m}")?;
        }
        for e in &self.errors {
            writeln!(f, "  ERROR {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_adf::spec::LifeSpan;
    use saint_ir::{ApiLevel, MethodRef};

    fn mismatch(site: &str, levels: &[u8]) -> Mismatch {
        Mismatch {
            kind: MismatchKind::ApiInvocation,
            site: MethodRef::new("p.C", site, "()V"),
            api: MethodRef::new("android.x.Y", "api", "()V"),
            api_life: Some(LifeSpan::since(23)),
            missing_levels: levels.iter().map(|&l| ApiLevel::new(l)).collect(),
            context: None,
            permission: None,
            via: Vec::new(),
        }
    }

    #[test]
    fn dedup_merges_levels() {
        let mut r = Report::new("p", "saintdroid");
        r.extend_deduped([mismatch("m", &[21, 22]), mismatch("m", &[22, 24])]);
        assert_eq!(r.total(), 1);
        assert_eq!(
            r.mismatches[0].missing_levels,
            vec![ApiLevel::new(21), ApiLevel::new(22), ApiLevel::new(24)]
        );
    }

    #[test]
    fn distinct_sites_kept() {
        let mut r = Report::new("p", "saintdroid");
        r.extend_deduped([mismatch("m1", &[21]), mismatch("m2", &[21])]);
        assert_eq!(r.total(), 2);
    }

    #[test]
    fn dedup_prefers_shortest_chain() {
        let mut deep = mismatch("m", &[21]);
        deep.via = vec![MethodRef::new("a.B", "hop", "()V")];
        let direct = mismatch("m", &[21]);
        let mut r = Report::new("p", "saintdroid");
        r.extend_deduped([deep, direct]);
        assert_eq!(r.total(), 1);
        assert!(!r.mismatches[0].is_deep());
    }

    #[test]
    fn counters_by_kind() {
        let mut r = Report::new("p", "saintdroid");
        let mut apc = mismatch("m", &[21]);
        apc.kind = MismatchKind::ApiCallback;
        let mut prm = mismatch("m2", &[]);
        prm.kind = MismatchKind::PermissionRevocation;
        r.extend_deduped([mismatch("m0", &[21]), apc, prm]);
        assert_eq!(r.api_count(), 1);
        assert_eq!(r.apc_count(), 1);
        assert_eq!(r.prm_count(), 1);
        assert_eq!(r.total(), 3);
        assert!(!r.is_clean());
    }

    #[test]
    fn display_includes_detector_and_counts() {
        let mut r = Report::new("com.example", "saintdroid");
        r.extend_deduped([mismatch("m", &[21])]);
        let s = r.to_string();
        assert!(s.contains("saintdroid on com.example"));
        assert!(s.contains("API 1"));
    }
}
