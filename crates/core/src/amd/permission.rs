//! Permission-induced mismatch detection — paper Algorithm 4.
//!
//! The API-23 runtime permission system split the world in two
//! (paper §II-C):
//!
//! * apps **targeting ≥ 23** must request dangerous permissions at run
//!   time; using one without implementing
//!   `onRequestPermissionsResult` is a *permission request mismatch*;
//! * apps **targeting < 23** get install-time grants, but on a ≥ 23
//!   device the user can revoke them at any moment — every dangerous
//!   usage is a *permission revocation mismatch*.
//!
//! Dangerous usages are found by scanning every analyzed package
//! method's call sites against the permission map, and — uniquely —
//! by following calls *into framework code* whose deeper levels touch
//! permission-guarded APIs (the `MediaHelper.record` →
//! `MediaRecorder.setAudioSource` pattern first-level tools miss).

use std::collections::{HashMap, HashSet};

use saint_adf::{is_dangerous, PermissionMap};
use saint_ir::{ApiLevel, ClassOrigin, MethodRef, Permission};

use crate::aum::{is_app_origin, AppModel};
use crate::mismatch::{Mismatch, MismatchKind};

/// One dangerous-permission usage site.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct DangerousUsage {
    /// The package method from which the usage is reachable.
    pub site: MethodRef,
    /// The permission-guarded framework API.
    pub api: MethodRef,
    /// The dangerous permission involved.
    pub permission: Permission,
    /// Framework hops between site and API (empty = direct call).
    pub via: Vec<MethodRef>,
}

/// The three whole-app facts Algorithm 4 gates on. They depend only on
/// the manifest and on *whether any* app class declares the runtime
/// result handler — so the incremental layer can recompute them from
/// per-class slices and [`assemble`] the verdict without re-walking
/// call graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PermissionGates {
    /// The manifest requests at least one dangerous permission.
    pub requests_dangerous: bool,
    /// `targetSdkVersion >= 23` (runtime-permission protocol applies).
    pub targets_runtime: bool,
    /// Some app class overrides `onRequestPermissionsResult`.
    pub implements_handler: bool,
}

impl PermissionGates {
    /// Evaluates the gates against a built model.
    #[must_use]
    pub fn of(model: &AppModel) -> Self {
        Self {
            requests_dangerous: model.manifest.uses_permissions.iter().any(is_dangerous),
            targets_runtime: model.manifest.targets_runtime_permissions(),
            implements_handler: model
                .declares_app_method("onRequestPermissionsResult", "(I[Ljava/lang/String;[I)V"),
        }
    }
}

/// Detects permission-induced mismatches in the model.
#[must_use]
pub fn detect(model: &AppModel, pm: &PermissionMap) -> Vec<Mismatch> {
    assemble(
        PermissionGates::of(model),
        model.supported,
        dangerous_usages(model, pm),
    )
}

/// Turns gates + usage sites into the final mismatch list — the pure
/// decision half of Algorithm 4, shared by [`detect`] and the
/// incremental merge path.
#[must_use]
pub fn assemble(
    gates: PermissionGates,
    supported: saint_ir::LevelRange,
    usages: Vec<DangerousUsage>,
) -> Vec<Mismatch> {
    // Algorithm 4 line 2 gates on the manifest; we also proceed when a
    // dangerous API is used without being declared (the Listing-3
    // shape), which crashes the same way.
    if !gates.requests_dangerous && usages.is_empty() {
        return Vec::new();
    }

    let kind = if gates.targets_runtime {
        if gates.implements_handler {
            // Runtime permission protocol implemented: no mismatch
            // (Algorithm 4 line 9).
            return Vec::new();
        }
        MismatchKind::PermissionRequest
    } else {
        MismatchKind::PermissionRevocation
    };

    usages
        .into_iter()
        .map(|u| Mismatch {
            kind,
            site: u.site,
            api: u.api,
            api_life: None,
            missing_levels: if gates.targets_runtime {
                // Manifest range ∩ runtime-permission devices.
                supported
                    .iter()
                    .filter(|l| *l >= ApiLevel::RUNTIME_PERMISSIONS)
                    .collect()
            } else {
                // Legacy-target app on modern devices.
                ApiLevel::all_modeled()
                    .filter(|l| *l >= ApiLevel::RUNTIME_PERMISSIONS)
                    .collect()
            },
            context: Some(supported),
            permission: Some(u.permission),
            via: u.via,
        })
        .collect()
}

/// Finds every dangerous-permission usage reachable from package code:
/// direct calls to mapped APIs, plus usages buried inside framework
/// call chains.
#[must_use]
pub fn dangerous_usages(model: &AppModel, pm: &PermissionMap) -> Vec<DangerousUsage> {
    // Pre-index edges by caller.
    let mut edges_by_caller: HashMap<&MethodRef, Vec<&MethodRef>> = HashMap::new();
    for e in &model.exploration.edges {
        if let Some(r) = &e.resolved {
            edges_by_caller.entry(&e.caller).or_default().push(r);
        }
    }

    // Memoized reachability of dangerous APIs through *framework*
    // methods.
    let mut memo: HashMap<MethodRef, Vec<(MethodRef, Permission)>> = HashMap::new();

    let mut out = Vec::new();
    // Callee checks against the permission map are counted locally and
    // merged into the registry once at the end (lock-cheap shard
    // pattern).
    let mut checked: u64 = 0;
    let mut seen: HashSet<(MethodRef, MethodRef, Permission)> = HashSet::new();
    // Stable report order regardless of hash-map iteration.
    let mut app_methods: Vec<_> = model
        .exploration
        .methods
        .values()
        .filter(|a| is_app_origin(a.origin))
        .collect();
    app_methods.sort_by(|a, b| a.method.cmp(&b.method));
    for art in app_methods {
        let Some(callees) = edges_by_caller.get(&art.method) else {
            continue;
        };

        for callee in callees {
            checked += 1;
            // Direct dangerous call.
            for p in pm.required_dangerous(callee) {
                if seen.insert((art.method.clone(), (*callee).clone(), p.clone())) {
                    out.push(DangerousUsage {
                        site: art.method.clone(),
                        api: (*callee).clone(),
                        permission: p.clone(),
                        via: Vec::new(),
                    });
                }
            }
            // Deep: dangerous APIs reachable inside the framework.
            let callee_is_framework = model
                .exploration
                .artifacts(callee)
                .is_some_and(|a| matches!(a.origin, ClassOrigin::Framework));
            if callee_is_framework {
                let deep = framework_reachable(callee, &edges_by_caller, pm, &mut memo, model);
                for (api, p) in deep {
                    if seen.insert((art.method.clone(), api.clone(), p.clone())) {
                        out.push(DangerousUsage {
                            site: art.method.clone(),
                            api,
                            permission: p,
                            via: vec![(*callee).clone()],
                        });
                    }
                }
            }
        }
    }
    if let Some(metrics) = model.clvm.metrics() {
        metrics.add(saint_obs::Counter::PermissionChecksPerformed, checked);
    }
    out
}

/// Dangerous `(api, permission)` pairs reachable from `entry` through
/// framework bodies: the full closure over framework→framework call
/// edges, walked with a visited *set* (not a path stack). The result is
/// canonical — it depends only on the call graph, never on which app
/// method asked first or on memo state — so per-run memoization is pure
/// and the incremental layer can recompute it per slice and still match
/// a whole-app pass byte-for-byte. (A path-stack cut would make values
/// memoized mid-cycle depend on query order.)
fn framework_reachable(
    entry: &MethodRef,
    edges_by_caller: &HashMap<&MethodRef, Vec<&MethodRef>>,
    pm: &PermissionMap,
    memo: &mut HashMap<MethodRef, Vec<(MethodRef, Permission)>>,
    model: &AppModel,
) -> Vec<(MethodRef, Permission)> {
    if let Some(hit) = memo.get(entry) {
        return hit.clone();
    }
    let mut found = Vec::new();
    let mut visited: HashSet<MethodRef> = HashSet::new();
    let mut stack = vec![entry.clone()];
    visited.insert(entry.clone());
    while let Some(m) = stack.pop() {
        if let Some(callees) = edges_by_caller.get(&m) {
            for callee in callees {
                for p in pm.required_dangerous(callee) {
                    found.push(((*callee).clone(), p.clone()));
                }
                let is_framework = model
                    .exploration
                    .artifacts(callee)
                    .is_some_and(|a| matches!(a.origin, ClassOrigin::Framework));
                if is_framework && visited.insert((*callee).clone()) {
                    stack.push((*callee).clone());
                }
            }
        }
    }
    found.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    found.dedup();
    memo.insert(entry.clone(), found.clone());
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aum::Aum;
    use saint_adf::{well_known, AndroidFramework};
    use saint_analysis::ExploreConfig;
    use saint_ir::{ApiLevel, Apk, ApkBuilder, BodyBuilder, ClassBuilder};
    use std::sync::Arc;

    fn analyze(apk: &Apk) -> Vec<Mismatch> {
        let fw = Arc::new(AndroidFramework::curated());
        let model = Aum::build(apk, &fw, &ExploreConfig::saintdroid());
        detect(&model, &fw.permission_map())
    }

    fn storage_app(min: u8, target: u8, with_handler: bool, declare: bool) -> Apk {
        let mut main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method(
                "onCreate",
                "(Landroid/os/Bundle;)V",
                |b: &mut BodyBuilder| {
                    b.invoke_static(well_known::get_external_storage_directory(), &[], None);
                    b.ret_void();
                },
            )
            .unwrap();
        if with_handler {
            main = main
                .method(
                    "onRequestPermissionsResult",
                    "(I[Ljava/lang/String;[I)V",
                    |b| {
                        b.ret_void();
                    },
                )
                .unwrap();
        }
        let mut b =
            ApkBuilder::new("p", ApiLevel::new(min), ApiLevel::new(target)).activity("p.Main");
        if declare {
            b = b.permission(saint_ir::Permission::android("WRITE_EXTERNAL_STORAGE"));
        }
        b.class(main.build()).unwrap().build()
    }

    #[test]
    fn request_mismatch_kolab_notes_shape() {
        // Targets 26, uses WRITE_EXTERNAL_STORAGE, no runtime handler.
        let ms = analyze(&storage_app(19, 26, false, true));
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].kind, MismatchKind::PermissionRequest);
        assert_eq!(
            ms[0].permission.as_ref().unwrap().as_str(),
            "android.permission.WRITE_EXTERNAL_STORAGE"
        );
        // Manifests at 23..=26 are the vulnerable devices (within the
        // app's supported span up to max=29 default → 23..).
        assert!(ms[0].missing_levels.iter().all(|l| l.get() >= 23));
    }

    #[test]
    fn handler_implemented_is_quiet() {
        let ms = analyze(&storage_app(19, 26, true, true));
        assert!(ms.is_empty());
    }

    #[test]
    fn revocation_mismatch_adaway_shape() {
        // Targets 22: install-time grants, revocable on ≥23 devices.
        let ms = analyze(&storage_app(15, 22, false, true));
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].kind, MismatchKind::PermissionRevocation);
    }

    #[test]
    fn revocation_even_with_handler_declared() {
        // Target < 23 never uses the runtime protocol; the handler is
        // irrelevant.
        let ms = analyze(&storage_app(15, 22, true, true));
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].kind, MismatchKind::PermissionRevocation);
    }

    #[test]
    fn usage_without_declaration_still_flagged() {
        // Listing 3: dangerous API used though never requested.
        let ms = analyze(&storage_app(19, 26, false, false));
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].kind, MismatchKind::PermissionRequest);
    }

    #[test]
    fn no_dangerous_usage_no_mismatch() {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.invoke_virtual(well_known::activity_set_content_view(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(19), ApiLevel::new(26))
            .class(main)
            .unwrap()
            .build();
        assert!(analyze(&apk).is_empty());
    }

    #[test]
    fn declared_but_unused_dangerous_permission_no_usage_sites() {
        // Manifest declares CAMERA but code never touches it: gate
        // passes but there are zero usage sites to report.
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(19), ApiLevel::new(26))
            .permission(saint_ir::Permission::android("CAMERA"))
            .class(main)
            .unwrap()
            .build();
        assert!(analyze(&apk).is_empty());
    }

    #[test]
    fn deep_permission_usage_through_framework() {
        // MediaHelper.record → openSession → MediaRecorder.setAudioSource
        // (RECORD_AUDIO): two framework hops.
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.invoke_virtual(well_known::media_helper_record(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(19), ApiLevel::new(26))
            .permission(saint_ir::Permission::android("RECORD_AUDIO"))
            .class(main)
            .unwrap()
            .build();
        let ms = analyze(&apk);
        assert_eq!(ms.len(), 1);
        assert!(ms[0].is_deep());
        assert_eq!(ms[0].api.class.as_str(), "android.media.MediaRecorder");
        assert_eq!(
            ms[0].permission.as_ref().unwrap().as_str(),
            "android.permission.RECORD_AUDIO"
        );
    }

    #[test]
    fn multiple_usages_counted_per_site_api_permission() {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.invoke_static(well_known::camera_open(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .method("onResume", "()V", |b| {
                b.invoke_static(well_known::camera_open(), &[], None);
                b.invoke_virtual(well_known::request_location_updates(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(19), ApiLevel::new(26))
            .permission(saint_ir::Permission::android("CAMERA"))
            .class(main)
            .unwrap()
            .build();
        let ms = analyze(&apk);
        // camera in onCreate, camera in onResume, location in onResume
        assert_eq!(ms.len(), 3);
    }
}
