//! API callback mismatch detection — paper Algorithm 3.
//!
//! For every method declared in an app class, find the framework method
//! it overrides (walking the app-side hierarchy to its framework
//! ancestor, then the mined framework hierarchy to the declaring class)
//! and query the API database across the app's declared range. Where
//! the overridden API is missing at some supported level, the override
//! is dead code there — initialization it performs is silently skipped
//! (backward), or the platform may no longer deliver the event
//! (forward).
//!
//! No hand-built callback lists are involved: the database mined from
//! the framework history covers *all* classes, which is what lets this
//! detector flag e.g. `View.drawableHotspotChanged` (the FOSDEM case
//! study) that CIDER's four modeled classes cannot.

use saint_adf::ApiDatabase;

use crate::aum::AppModel;
use crate::mismatch::{missing_levels_in, Mismatch, MismatchKind};

/// Detects API callback mismatches in the model.
#[must_use]
pub fn detect(model: &AppModel, db: &ApiDatabase) -> Vec<Mismatch> {
    let mut out = Vec::new();
    // Overrides checked are counted locally and merged into the
    // registry once at the end (lock-cheap shard pattern).
    let mut checked: u64 = 0;
    for class in &model.app_classes {
        // Paper §VI: dynamically-generated anonymous inner classes are
        // invisible to SAINTDroid — reproduce the limitation.
        if class.name.is_anonymous_inner() {
            continue;
        }
        let Some(fw_ancestor) = model.framework_ancestor(&class.name) else {
            continue;
        };
        for method in &class.methods {
            if method.name == "<init>" || method.name == "<clinit>" || method.flags.is_static {
                continue;
            }
            // The runtime-permission protocol methods are the *correct*
            // way to handle API-23 permissions; implementing them on an
            // app that also supports pre-23 devices is not a callback
            // bug (pre-23 devices grant at install time and simply never
            // call them). Algorithm 4 owns this protocol.
            if method.name == "onRequestPermissionsResult"
                || method.name == "shouldShowRequestPermissionRationale"
            {
                continue;
            }
            checked += 1;
            let sig = method.signature();
            let Some((api, life)) = db.overridden_callback(fw_ancestor, &sig) else {
                continue;
            };
            let missing = missing_levels_in(model.supported, life);
            if missing.is_empty() {
                continue;
            }
            out.push(Mismatch {
                kind: MismatchKind::ApiCallback,
                site: method.reference(&class.name),
                api,
                api_life: Some(life),
                missing_levels: missing,
                context: Some(model.supported),
                permission: None,
                via: Vec::new(),
            });
        }
    }
    if let Some(metrics) = model.clvm.metrics() {
        metrics.add(saint_obs::Counter::CallbackOverridesChecked, checked);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aum::Aum;
    use saint_adf::AndroidFramework;
    use saint_analysis::ExploreConfig;
    use saint_ir::{ApiLevel, Apk, ApkBuilder, ClassBuilder, ClassDef, ClassOrigin};
    use std::sync::Arc;

    fn analyze(apk: &Apk) -> Vec<Mismatch> {
        let fw = Arc::new(AndroidFramework::curated());
        let model = Aum::build(apk, &fw, &ExploreConfig::saintdroid());
        detect(&model, &fw.database())
    }

    fn apk(min: u8, target: u8, classes: Vec<ClassDef>) -> Apk {
        let mut b = ApkBuilder::new("p", ApiLevel::new(min), ApiLevel::new(target));
        for c in classes {
            b = b.class(c).unwrap();
        }
        b.build()
    }

    #[test]
    fn fragment_on_attach_context_mismatch() {
        // Simple Solitaire (Listing 2): overrides onAttach(Context)
        // (API 23) with minSdkVersion below 23.
        let frag = ClassBuilder::new("p.GameFragment", ClassOrigin::App)
            .extends("android.app.Fragment")
            .method("onAttach", "(Landroid/content/Context;)V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        let ms = analyze(&apk(14, 27, vec![frag]));
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].kind, MismatchKind::ApiCallback);
        assert_eq!(ms[0].api.class.as_str(), "android.app.Fragment");
        assert_eq!(ms[0].missing_levels.len(), 9); // 14..=22
    }

    #[test]
    fn drawable_hotspot_changed_beyond_cider_models() {
        // FOSDEM: ForegroundLinearLayout extends LinearLayout and
        // overrides View.drawableHotspotChanged (API 21), min 15.
        let layout = ClassBuilder::new("p.ForegroundLinearLayout", ClassOrigin::App)
            .extends("android.widget.LinearLayout")
            .method("drawableHotspotChanged", "(FF)V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        let ms = analyze(&apk(15, 27, vec![layout]));
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].api.class.as_str(), "android.view.View");
        let missing: Vec<u8> = ms[0].missing_levels.iter().map(|l| l.get()).collect();
        assert_eq!(missing, vec![15, 16, 17, 18, 19, 20]);
    }

    #[test]
    fn supported_override_is_quiet() {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        assert!(analyze(&apk(8, 28, vec![main])).is_empty());
    }

    #[test]
    fn override_through_app_intermediate_class() {
        // Base extends Activity; Sub extends Base and overrides
        // onMultiWindowModeChanged (API 24) — resolution crosses the
        // app-side hop.
        let base = ClassBuilder::new("p.Base", ClassOrigin::App)
            .extends("android.app.Activity")
            .build();
        let sub = ClassBuilder::new("p.Sub", ClassOrigin::App)
            .extends("p.Base")
            .method("onMultiWindowModeChanged", "(Z)V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        let ms = analyze(&apk(21, 27, vec![base, sub]));
        assert_eq!(ms.len(), 1);
        let missing: Vec<u8> = ms[0].missing_levels.iter().map(|l| l.get()).collect();
        assert_eq!(missing, vec![21, 22, 23]);
    }

    #[test]
    fn anonymous_inner_override_invisible() {
        // The acknowledged limitation (paper §VI): a callback inside
        // WebView$1 is not seen.
        let anon = ClassBuilder::new("p.Browser$1", ClassOrigin::App)
            .extends("android.webkit.WebViewClient")
            .method(
                "onPageCommitVisible",
                "(Landroid/webkit/WebView;Ljava/lang/String;)V",
                |b| {
                    b.ret_void();
                },
            )
            .unwrap()
            .build();
        assert!(analyze(&apk(19, 27, vec![anon])).is_empty());
    }

    #[test]
    fn named_inner_override_visible() {
        let named = ClassBuilder::new("p.Browser$Client", ClassOrigin::App)
            .extends("android.webkit.WebViewClient")
            .method(
                "onPageCommitVisible",
                "(Landroid/webkit/WebView;Ljava/lang/String;)V",
                |b| {
                    b.ret_void();
                },
            )
            .unwrap()
            .build();
        let ms = analyze(&apk(19, 27, vec![named]));
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn non_framework_classes_ignored() {
        let plain = ClassBuilder::new("p.Util", ClassOrigin::App)
            .method("onSomething", "()V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        assert!(analyze(&apk(8, 28, vec![plain])).is_empty());
    }

    #[test]
    fn app_method_not_in_api_ignored() {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("loadData", "()V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        assert!(analyze(&apk(8, 28, vec![main])).is_empty());
    }

    #[test]
    fn static_and_constructors_skipped() {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("<init>", "()V", |b| {
                b.ret_void();
            })
            .unwrap()
            .static_method("onMultiWindowModeChanged", "(Z)V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        assert!(analyze(&apk(21, 27, vec![main])).is_empty());
    }
}
