//! AMD — the Android Mismatch Detector (paper §III-C).
//!
//! Four detectors over the AUM/ARM artifacts:
//!
//! * [`invocation`] — paper Algorithm 2 (API invocation mismatches);
//! * [`callback`] — paper Algorithm 3 (API callback mismatches);
//! * [`permission`] — paper Algorithm 4 (permission-induced
//!   mismatches), a capability unique to SAINTDroid among the compared
//!   tools;
//! * [`declared_sdk`] — declared-SDK consistency vetting (the DSD
//!   overuse/underuse family), opt-in via
//!   [`DetectorSet`](crate::DetectorSet).

pub mod callback;
pub mod declared_sdk;
pub mod invocation;
pub mod permission;
