//! AMD — the Android Mismatch Detector (paper §III-C).
//!
//! Three detectors over the AUM/ARM artifacts:
//!
//! * [`invocation`] — paper Algorithm 2 (API invocation mismatches);
//! * [`callback`] — paper Algorithm 3 (API callback mismatches);
//! * [`permission`] — paper Algorithm 4 (permission-induced
//!   mismatches), a capability unique to SAINTDroid among the compared
//!   tools.

pub mod callback;
pub mod invocation;
pub mod permission;
