//! API invocation mismatch detection — paper Algorithm 2.
//!
//! Walks every execution context of the app: starting from the
//! call-graph roots (component callbacks and uncalled methods), each
//! method is scanned under the level range that reaches it. Guard
//! conditions narrow the range per block (path sensitivity); calls into
//! user-defined methods recurse with the caller's refined range
//! (context sensitivity, Alg. 2 lines 8–9); calls into framework
//! methods are checked against the API database *and then followed
//! into the framework body* — the beyond-first-level capability that
//! distinguishes SAINTDroid from CID.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use saint_sync::RwLock;

use saint_adf::{ApiDatabase, LifeSpan};
use saint_analysis::{BlockRanges, CacheStats, MethodArtifacts};
use saint_ir::{ApiLevel, ClassOrigin, Instr, LevelRange, MethodRef};

use crate::aum::{is_app_origin, AppModel};
use crate::mismatch::{missing_levels_in, Mismatch, MismatchKind};

const MAX_DEPTH: usize = 48;

/// One mismatch found inside a framework subtree, stored relative to
/// the subtree root: `via` begins with the root method itself, and
/// `context` is the guard-refined range at the offending call site
/// inside the framework body.
#[derive(Debug, Clone)]
struct DeepFinding {
    api: MethodRef,
    life: LifeSpan,
    missing: Vec<ApiLevel>,
    context: LevelRange,
    via: Vec<MethodRef>,
}

/// A cached framework-subtree scan.
#[derive(Clone)]
enum Cached {
    /// The subtree stayed inside framework code: its findings depend
    /// only on the key and replay at any app call site.
    Findings(Arc<Vec<DeepFinding>>),
    /// The subtree descended back into app code (callback dispatch),
    /// so its results are app-specific — always scan it in line.
    Inline,
}

/// A cache of framework-subtree scan results, keyed by
/// `(snapshot level, subtree root, incoming level range)`.
///
/// The beyond-first-level descent — following a call from app code into
/// the framework body and scanning everything below it — is by far the
/// dominant cost of invocation detection, and its result is
/// app-invariant: the framework snapshot at a given level is the same
/// for every app, so the mismatches found under `F` entered with range
/// `R` are the same wherever `F` is called from. Only the *attribution*
/// (which app method is the site, the `via` prefix) differs, and that
/// is recomputed at replay time.
///
/// Subtrees that re-enter app code (framework dispatching a callback)
/// are app-specific; they are marked [`Cached::Inline`] and scanned the
/// old way.
///
/// `detect` uses a private per-app cache (collapsing repeated sites
/// within one app); the batch engine shares one instance across a whole
/// corpus so only the first app to reach a subtree pays for it.
#[derive(Default)]
pub struct DeepScanCache {
    map: RwLock<HashMap<(ApiLevel, MethodRef, LevelRange), Cached>>,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DeepScanCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Activity counters (hits, misses, cached subtrees). Maintains
    /// `hits + misses == lookups`: every probe — including speculative
    /// prewarm computations, which count as misses — resolves to
    /// exactly one outcome.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.read().len(),
        }
    }
}

impl std::fmt::Debug for DeepScanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("DeepScanCache")
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

/// Detects API invocation mismatches in the model.
#[must_use]
pub fn detect(model: &AppModel, db: &ApiDatabase) -> Vec<Mismatch> {
    detect_with(model, db, &DeepScanCache::new())
}

/// Detects API invocation mismatches, serving framework-subtree scans
/// from (and filling) `cache`. Results are identical to [`detect`] —
/// only where the subtree work happens changes.
#[must_use]
pub fn detect_with(model: &AppModel, db: &ApiDatabase, cache: &DeepScanCache) -> Vec<Mismatch> {
    detect_rooted_with(model, db, cache)
        .into_iter()
        .flat_map(|(_, bucket)| bucket)
        .collect()
}

/// [`detect_with`], but keeping each context root's findings in its own
/// bucket instead of one flat vector. Buckets come back in sorted root
/// order — flattening them *is* `detect_with` — and the memo is shared
/// across roots exactly as in the flat pass, so a bucket's contents
/// depend on the roots scanned before it. The incremental layer scans
/// disjoint root subsets separately and re-interleaves their buckets by
/// root to reproduce the full-scan finding order byte-for-byte.
#[must_use]
pub fn detect_rooted_with(
    model: &AppModel,
    db: &ApiDatabase,
    cache: &DeepScanCache,
) -> Vec<(MethodRef, Vec<Mismatch>)> {
    let mut ctx = Ctx {
        model,
        db,
        memo: HashSet::new(),
        out: Vec::new(),
        cache: Some(cache),
        cacheable: true,
        collect: None,
        sites: 0,
    };
    let roots = context_roots(model, db);
    let mut rooted = Vec::with_capacity(roots.len());
    for root in roots {
        let Some(art) = model.exploration.artifacts(&root) else {
            continue;
        };
        let art = Arc::clone(art);
        let mut chain = Vec::new();
        let start = ctx.out.len();
        ctx.scan(&art, model.supported, &mut chain);
        let bucket = ctx.out.split_off(start);
        rooted.push((root, bucket));
    }
    // Site accounting is kept in a plain per-run counter and merged
    // into the shared registry once at the end — the lock-cheap shard
    // pattern; subtree replays and prewarm walks are excluded, so the
    // number means "call sites inspected by this detection pass".
    if let Some(metrics) = model.clvm.metrics() {
        metrics.add(saint_obs::Counter::InvocationSitesScanned, ctx.sites);
    }
    rooted
}

/// Detects API invocation mismatches with `jobs` worker threads
/// computing the deep framework-subtree descents concurrently.
///
/// The subtree computations are app-invariant (keyed by snapshot level,
/// root and incoming range — see [`DeepScanCache`]), so prewarming the
/// cache in parallel and then running the ordinary sequential
/// [`detect_with`] pass yields results identical to [`detect`]: the
/// sequential pass finds every subtree already cached and replays it at
/// each site in deterministic order.
#[must_use]
pub fn detect_parallel(
    model: &AppModel,
    db: &ApiDatabase,
    cache: &DeepScanCache,
    jobs: usize,
) -> Vec<Mismatch> {
    // Prewarming pays for an extra boundary-collection walk with
    // concurrent subtree computation; on a single-core host the walks
    // serialize and the speculation is a pure loss, so it is gated on
    // actual hardware parallelism, not just the requested job count.
    // Either way the detection pass below computes the same results
    // (uncached boundaries are simply scanned in line).
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if jobs > 1 && cores > 1 {
        prewarm_subtrees(model, db, cache, jobs);
    }
    detect_with(model, db, cache)
}

/// [`detect_rooted_with`] with parallel subtree prewarming — the
/// bucketed analogue of [`detect_parallel`].
#[must_use]
pub fn detect_rooted_parallel(
    model: &AppModel,
    db: &ApiDatabase,
    cache: &DeepScanCache,
    jobs: usize,
) -> Vec<(MethodRef, Vec<Mismatch>)> {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if jobs > 1 && cores > 1 {
        prewarm_subtrees(model, db, cache, jobs);
    }
    detect_rooted_with(model, db, cache)
}

/// Walks the app-side execution contexts *without* descending into
/// framework bodies, collecting every app→framework boundary descent
/// `(root, artifacts, range)` the detection pass will take, then
/// computes each subtree not already cached on `jobs` workers.
///
/// Boundaries only reachable through `Cached::Inline` subtrees
/// (framework code dispatching back into the app) are not collected
/// here; the detection pass simply computes those in line, exactly as
/// it would without prewarming.
fn prewarm_subtrees(model: &AppModel, db: &ApiDatabase, cache: &DeepScanCache, jobs: usize) {
    let mut ctx = Ctx {
        model,
        db,
        memo: HashSet::new(),
        out: Vec::new(),
        cache: None,
        cacheable: true,
        collect: Some(Vec::new()),
        sites: 0,
    };
    for root in context_roots(model, db) {
        let Some(art) = model.exploration.artifacts(&root) else {
            continue;
        };
        let art = Arc::clone(art);
        let mut chain = Vec::new();
        ctx.scan(&art, model.supported, &mut chain);
    }

    let mut seen: HashSet<(MethodRef, LevelRange)> = HashSet::new();
    let todo: Vec<(MethodRef, Arc<MethodArtifacts>, LevelRange)> = ctx
        .collect
        .expect("prewarm context carries a collector")
        .into_iter()
        .filter(|(root, _, range)| seen.insert((root.clone(), *range)))
        .filter(|(root, _, range)| {
            let key = (model.target, root.clone(), *range);
            !cache.map.read().contains_key(&key)
        })
        .collect();

    crate::engine::par_map(jobs, &todo, |_, (root, art, range)| {
        let sub = Ctx {
            model,
            db,
            memo: HashSet::new(),
            out: Vec::new(),
            cache: None,
            cacheable: true,
            collect: None,
            sites: 0,
        };
        let computed = sub.compute_subtree(art, *range);
        cache.lookups.fetch_add(1, Ordering::Relaxed);
        cache.misses.fetch_add(1, Ordering::Relaxed);
        let key = (model.target, root.clone(), *range);
        cache.map.write().entry(key).or_insert(computed);
    });
}

/// The methods whose incoming level range is the app's full supported
/// span: methods never called from other analyzed package methods
/// (entry points) plus methods overriding framework APIs (the
/// framework invokes those at whatever level the device runs).
#[must_use]
pub fn context_roots(model: &AppModel, db: &ApiDatabase) -> Vec<MethodRef> {
    let mut called: HashSet<&MethodRef> = HashSet::new();
    for edge in &model.exploration.edges {
        if let Some(resolved) = &edge.resolved {
            // Only in-package callers constrain the context: a call
            // from framework code can happen at any device level.
            let caller_is_app = model
                .exploration
                .artifacts(&edge.caller)
                .is_some_and(|a| is_app_origin(a.origin));
            if caller_is_app {
                called.insert(resolved);
            }
        }
    }
    let mut roots: Vec<MethodRef> = model
        .exploration
        .methods
        .values()
        .filter(|a| is_app_origin(a.origin))
        .filter(|a| {
            if !called.contains(&a.method) {
                return true;
            }
            // Overrides of framework methods are additionally invoked
            // by the platform itself, unconstrained by app-side guards.
            model
                .framework_ancestor(&a.method.class)
                .and_then(|fw| db.overridden_callback(fw, &a.method.signature()))
                .is_some()
        })
        .map(|a| a.method.clone())
        .collect();

    // Methods stuck in call-graph cycles with no entry from outside
    // (mutual recursion) have in-degree > 0 everywhere; promote one
    // representative per uncovered cycle until every app method is
    // reachable from some root.
    let mut reachable: HashSet<MethodRef> = HashSet::new();
    let mut frontier: Vec<MethodRef> = roots.clone();
    let close = |frontier: &mut Vec<MethodRef>, reachable: &mut HashSet<MethodRef>| {
        while let Some(m) = frontier.pop() {
            if !reachable.insert(m.clone()) {
                continue;
            }
            for e in model.exploration.edges_from(&m) {
                if let Some(r) = &e.resolved {
                    if !reachable.contains(r) {
                        frontier.push(r.clone());
                    }
                }
            }
        }
    };
    close(&mut frontier, &mut reachable);
    let mut uncovered: Vec<MethodRef> = model
        .exploration
        .methods
        .values()
        .filter(|a| is_app_origin(a.origin) && !reachable.contains(&a.method))
        .map(|a| a.method.clone())
        .collect();
    uncovered.sort();
    for m in uncovered {
        if reachable.contains(&m) {
            continue;
        }
        roots.push(m.clone());
        let mut frontier = vec![m];
        close(&mut frontier, &mut reachable);
    }
    // Stable report order regardless of hash-map iteration.
    roots.sort();
    roots
}

struct Ctx<'a> {
    model: &'a AppModel,
    db: &'a ApiDatabase,
    memo: HashSet<(MethodRef, LevelRange, Option<MethodRef>)>,
    out: Vec<Mismatch>,
    /// Subtree cache for app→framework boundary descents. `None` inside
    /// a subtree computation (sub-scans run fully in line).
    cache: Option<&'a DeepScanCache>,
    /// Cleared when a sub-scan touches an app-origin frame, poisoning
    /// the subtree for caching.
    cacheable: bool,
    /// Prewarm mode: instead of descending into framework subtrees,
    /// record each boundary `(root, artifacts, range)` here.
    collect: Option<Vec<(MethodRef, Arc<MethodArtifacts>, LevelRange)>>,
    /// Call sites inspected by this context (merged into the metrics
    /// registry once per detection pass, never per site).
    sites: u64,
}

impl Ctx<'_> {
    fn scan(&mut self, art: &MethodArtifacts, incoming: LevelRange, chain: &mut Vec<MethodRef>) {
        if chain.len() >= MAX_DEPTH {
            return;
        }
        let caller_is_app = is_app_origin(art.origin);
        if self.cache.is_none() && caller_is_app {
            // A subtree computation descended back into app code: its
            // findings are app-specific and must not be shared.
            self.cacheable = false;
        }
        // Memoization: app methods are context-keyed by (method, range)
        // alone — any mismatch found inside is attributed to that
        // method itself. Framework methods additionally key on the
        // *app site* currently on the chain: the same framework subtree
        // reached from two different app sites must yield a finding at
        // each site, not just the first one explored.
        let key_site = (!caller_is_app && !chain.is_empty()).then(|| self.attribute(chain).0);
        if !self.memo.insert((art.method.clone(), incoming, key_site)) {
            return;
        }
        let Some(def) = art.class.method(&art.method.signature()) else {
            return;
        };
        let Some(body) = &def.body else { return };
        chain.push(art.method.clone());

        let ranges = BlockRanges::analyze(body, &art.cfg, &art.abs, incoming);
        for (block, range) in ranges.iter() {
            for instr in &body.block(block).instrs {
                let Instr::Invoke { method: target, .. } = instr else {
                    continue;
                };
                self.check_call(target, range, chain, caller_is_app);
            }
        }
        chain.pop();
    }

    fn check_call(
        &mut self,
        target: &MethodRef,
        range: LevelRange,
        chain: &mut Vec<MethodRef>,
        caller_is_app: bool,
    ) {
        self.sites += 1;
        let resolved = self
            .model
            .exploration
            .resolutions
            .get(target)
            .cloned()
            .flatten();

        // Determine the framework API this call reaches, if any. The
        // CLVM resolution (at the target snapshot) wins; the database
        // fallback covers APIs absent from the snapshot entirely —
        // removed classes like org.apache.http (forward compatibility).
        let api = match &resolved {
            Some(r) if self.db.is_api_method(r) => {
                self.db.method_lifespan(r).map(|life| (r.clone(), life))
            }
            _ => self.db.resolve(&target.class, &target.signature()),
        };

        if let Some((api_ref, life)) = api {
            let missing = missing_levels_in(range, life);
            if !missing.is_empty() {
                let (site, via) = self.attribute(chain);
                self.out.push(Mismatch {
                    kind: MismatchKind::ApiInvocation,
                    site,
                    api: api_ref,
                    api_life: Some(life),
                    missing_levels: missing,
                    context: Some(range),
                    permission: None,
                    via,
                });
            }
        }

        // Context-sensitive descent: user-defined callees (Alg. 2
        // lines 8–9) and framework bodies (beyond-first-level) are
        // analyzed under the refined range of this call site.
        if let Some(r) = resolved {
            if let Some(callee) = self.model.exploration.artifacts(&r) {
                let callee = Arc::clone(callee);
                if caller_is_app && matches!(callee.origin, ClassOrigin::Framework) {
                    if let Some(list) = &mut self.collect {
                        list.push((r.clone(), callee, range));
                        return;
                    }
                    if let Some(cache) = self.cache {
                        self.enter_framework(cache, &r, &callee, range, chain);
                        return;
                    }
                }
                self.scan(&callee, range, chain);
            }
        }
    }

    /// Crosses the app→framework boundary: serves the subtree's
    /// findings from the cache (attributing them to the current site)
    /// instead of re-scanning the framework body, computing and caching
    /// them on first visit.
    fn enter_framework(
        &mut self,
        cache: &DeepScanCache,
        root: &MethodRef,
        art: &Arc<MethodArtifacts>,
        range: LevelRange,
        chain: &mut Vec<MethodRef>,
    ) {
        let (site, via_prefix) = self.attribute(chain);
        // Same suppression the in-line scan's memo applies: one visit
        // of a given subtree context per app site.
        let memo_key = (root.clone(), range, Some(site.clone()));
        if self.memo.contains(&memo_key) {
            return;
        }
        let key = (self.model.target, root.clone(), range);
        cache.lookups.fetch_add(1, Ordering::Relaxed);
        let entry = cache.map.read().get(&key).cloned();
        let entry = match entry {
            Some(e) => {
                cache.hits.fetch_add(1, Ordering::Relaxed);
                e
            }
            None => {
                cache.misses.fetch_add(1, Ordering::Relaxed);
                let computed = self.compute_subtree(art, range);
                // First insert wins if two workers raced on the key.
                cache.map.write().entry(key).or_insert(computed).clone()
            }
        };
        match entry {
            // App-specific subtree: scan it in line, exactly as without
            // a cache (`scan` maintains the memo itself).
            Cached::Inline => self.scan(art, range, chain),
            Cached::Findings(findings) => {
                self.memo.insert(memo_key);
                for f in findings.iter() {
                    let mut via = via_prefix.clone();
                    via.extend(f.via.iter().cloned());
                    self.out.push(Mismatch {
                        kind: MismatchKind::ApiInvocation,
                        site: site.clone(),
                        api: f.api.clone(),
                        api_life: Some(f.life),
                        missing_levels: f.missing.clone(),
                        context: Some(f.context),
                        permission: None,
                        via,
                    });
                }
            }
        }
    }

    /// Scans a framework subtree in a fresh context (empty chain, fresh
    /// memo) and packages its findings relative to the subtree root.
    fn compute_subtree(&self, root: &Arc<MethodArtifacts>, range: LevelRange) -> Cached {
        let mut sub = Ctx {
            model: self.model,
            db: self.db,
            memo: HashSet::new(),
            out: Vec::new(),
            cache: None,
            cacheable: true,
            collect: None,
            sites: 0,
        };
        let mut chain = Vec::new();
        sub.scan(root, range, &mut chain);
        if !sub.cacheable {
            return Cached::Inline;
        }
        let findings = sub
            .out
            .into_iter()
            .map(|m| {
                // With an all-framework chain, `attribute` fell back to
                // the subtree root as the site; fold it back into the
                // hop chain so replay can prepend the real site.
                let mut via = vec![m.site];
                via.extend(m.via);
                DeepFinding {
                    api: m.api,
                    life: m.api_life.expect("invocation findings carry a lifespan"),
                    missing: m.missing_levels,
                    context: m.context.expect("invocation findings carry a context"),
                    via,
                }
            })
            .collect();
        Cached::Findings(Arc::new(findings))
    }

    /// Splits the current chain into (site, via): the site is the last
    /// in-package method on the chain; everything below it (framework
    /// hops) goes into `via`.
    fn attribute(&self, chain: &[MethodRef]) -> (MethodRef, Vec<MethodRef>) {
        let split = chain
            .iter()
            .rposition(|m| {
                self.model
                    .exploration
                    .artifacts(m)
                    .is_some_and(|a| is_app_origin(a.origin))
            })
            .unwrap_or(0);
        (chain[split].clone(), chain[split + 1..].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aum::Aum;
    use saint_adf::{well_known, AndroidFramework};
    use saint_analysis::ExploreConfig;
    use saint_ir::{ApiLevel, Apk, ApkBuilder, BodyBuilder, ClassBuilder, ClassOrigin};
    use std::sync::Arc;

    fn analyze(apk: &Apk) -> Vec<Mismatch> {
        let fw = Arc::new(AndroidFramework::curated());
        let model = Aum::build(apk, &fw, &ExploreConfig::saintdroid());
        detect(&model, &fw.database())
    }

    fn apk_with_oncreate(min: u8, target: u8, f: impl FnOnce(&mut BodyBuilder)) -> Apk {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", f)
            .unwrap()
            .build();
        ApkBuilder::new("p", ApiLevel::new(min), ApiLevel::new(target))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .build()
    }

    #[test]
    fn unguarded_new_api_flagged() {
        // Listing 1: min 21, calls getColorStateList (API 23) unguarded.
        let apk = apk_with_oncreate(21, 28, |b| {
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.ret_void();
        });
        let ms = analyze(&apk);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].kind, MismatchKind::ApiInvocation);
        assert_eq!(
            ms[0].missing_levels,
            vec![ApiLevel::new(21), ApiLevel::new(22)]
        );
        assert!(!ms[0].is_deep());
    }

    #[test]
    fn guarded_call_is_quiet() {
        let apk = apk_with_oncreate(21, 28, |b| {
            let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(23));
            b.switch_to(then_blk);
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.goto(join);
            b.switch_to(join);
            b.ret_void();
        });
        assert!(analyze(&apk).is_empty());
    }

    #[test]
    fn cross_method_guard_respected() {
        // onCreate guards, helper calls the API: context sensitivity.
        let helper = ClassBuilder::new("p.Helper", ClassOrigin::App)
            .static_method("tint", "()V", |b| {
                b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(23));
                b.switch_to(then_blk);
                b.invoke_static(MethodRef::new("p.Helper", "tint", "()V"), &[], None);
                b.goto(join);
                b.switch_to(join);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .class(helper)
            .unwrap()
            .build();
        assert!(analyze(&apk).is_empty(), "guard must propagate into callee");
    }

    #[test]
    fn unguarded_helper_called_from_unguarded_root_flagged() {
        let helper = ClassBuilder::new("p.Helper", ClassOrigin::App)
            .static_method("tint", "()V", |b| {
                b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.invoke_static(MethodRef::new("p.Helper", "tint", "()V"), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .class(helper)
            .unwrap()
            .build();
        let ms = analyze(&apk);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].site.class.as_str(), "p.Helper");
    }

    #[test]
    fn removed_api_forward_mismatch() {
        // App supports 21..=28 and still calls Apache HttpClient
        // (removed at 23).
        let apk = apk_with_oncreate(21, 28, |b| {
            b.invoke_virtual(well_known::http_client_execute(), &[], None);
            b.ret_void();
        });
        let ms = analyze(&apk);
        assert_eq!(ms.len(), 1);
        let missing: Vec<u8> = ms[0].missing_levels.iter().map(|l| l.get()).collect();
        // Undeclared maxSdkVersion defaults to the top of the modeled
        // range (29).
        assert_eq!(missing, vec![23, 24, 25, 26, 27, 28, 29]);
    }

    #[test]
    fn deep_framework_path_detected() {
        // App calls TintHelper.applyTint (present at all levels); its
        // body reaches View.setForeground (API 23). CID-style tools
        // stop at applyTint; SAINTDroid walks in.
        let apk = apk_with_oncreate(21, 28, |b| {
            b.invoke_virtual(well_known::tint_helper_apply_tint(), &[], None);
            b.ret_void();
        });
        let ms = analyze(&apk);
        assert_eq!(ms.len(), 1);
        assert!(ms[0].is_deep());
        assert_eq!(ms[0].api.class.as_str(), "android.view.View");
        assert_eq!(ms[0].site.class.as_str(), "p.Main");
    }

    #[test]
    fn three_hop_deep_chain_detected() {
        let apk = apk_with_oncreate(21, 28, |b| {
            b.invoke_virtual(well_known::font_facade_apply_font(), &[], None);
            b.ret_void();
        });
        let ms = analyze(&apk);
        assert_eq!(ms.len(), 1);
        assert!(
            ms[0].via.len() >= 2,
            "expected ≥2 framework hops, got {:?}",
            ms[0].via
        );
        assert_eq!(ms[0].api.class.as_str(), "android.content.res.Resources");
    }

    #[test]
    fn internally_guarded_compat_shim_is_quiet() {
        // ResourcesCompat guards its API-23 call internally; deep
        // analysis must respect the in-framework guard.
        let apk = apk_with_oncreate(19, 28, |b| {
            b.invoke_virtual(well_known::resources_compat_get_csl(), &[], None);
            b.ret_void();
        });
        assert!(analyze(&apk).is_empty());
    }

    #[test]
    fn app_within_api_lifetime_is_quiet() {
        // min 23: getColorStateList exists everywhere in range.
        let apk = apk_with_oncreate(23, 28, |b| {
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.ret_void();
        });
        assert!(analyze(&apk).is_empty());
    }

    #[test]
    fn inherited_api_call_resolved_through_app_class() {
        // p.Main extends Activity and calls this.getFragmentManager()
        // (API 11) with min 8 — the CID-Bench "Inheritance" pattern.
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.invoke_virtual(
                    MethodRef::new(
                        "p.Main",
                        "getFragmentManager",
                        "()Landroid/app/FragmentManager;",
                    ),
                    &[],
                    None,
                );
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(8), ApiLevel::new(28))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .build();
        let ms = analyze(&apk);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].api.class.as_str(), "android.app.Activity");
        let missing: Vec<u8> = ms[0].missing_levels.iter().map(|l| l.get()).collect();
        assert_eq!(missing, vec![8, 9, 10]);
    }

    #[test]
    fn callback_roots_ignore_internal_guarded_callers() {
        // onResume() is also *called* from a guarded helper, but as an
        // Activity callback the framework invokes it at every level —
        // its unguarded API call must still be flagged.
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onResume", "()V", |b| {
                b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .method("refresh", "()V", |b| {
                let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(23));
                b.switch_to(then_blk);
                b.invoke_virtual(MethodRef::new("p.Main", "onResume", "()V"), &[], None);
                b.goto(join);
                b.switch_to(join);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .build();
        let ms = analyze(&apk);
        assert_eq!(
            ms.len(),
            1,
            "callback must be re-scanned with the full range"
        );
        assert_eq!(
            ms[0].missing_levels,
            vec![ApiLevel::new(21), ApiLevel::new(22)]
        );
    }

    #[test]
    fn recursive_app_methods_terminate() {
        let rec = ClassBuilder::new("p.R", ClassOrigin::App)
            .static_method("f", "()V", |b| {
                b.invoke_static(MethodRef::new("p.R", "f", "()V"), &[], None);
                b.invoke_virtual(well_known::context_get_drawable(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(19), ApiLevel::new(28))
            .class(rec)
            .unwrap()
            .build();
        let ms = analyze(&apk);
        assert_eq!(ms.len(), 1); // getDrawable (21) missing at 19,20
    }

    #[test]
    fn prewarmed_cache_detection_matches_plain() {
        // Exercises `prewarm_subtrees` directly (the `detect_parallel`
        // hardware gate may skip it on single-core hosts): collecting
        // boundaries, computing subtrees on workers, and then running
        // the ordinary pass over the warm cache must reproduce the
        // plain run's mismatches, order included.
        let apk = apk_with_oncreate(21, 28, |b| {
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.invoke_virtual(well_known::context_get_drawable(), &[], None);
            b.ret_void();
        });
        let fw = Arc::new(AndroidFramework::curated());
        let model = Aum::build(&apk, &fw, &ExploreConfig::saintdroid());
        let db = fw.database();
        let plain = detect(&model, &db);

        let cache = DeepScanCache::new();
        prewarm_subtrees(&model, &db, &cache, 4);
        let warmed = cache.stats();
        assert!(warmed.entries > 0, "prewarm must compute boundary subtrees");
        let prewarmed = detect_with(&model, &db, &cache);
        assert_eq!(plain, prewarmed);
        assert!(
            cache.stats().hits > 0,
            "the detection pass must replay the prewarmed subtrees"
        );
    }
}
