//! Declared-SDK consistency detection — the DSD family (Wu et al.,
//! *Scalable Online Vetting of Android Apps*).
//!
//! Where the three AMD detectors chase execution contexts through the
//! whole call graph, DSD vetting is a cheap consistency check between
//! the manifest's declared SDK bounds and the framework APIs the app
//! actually touches:
//!
//! * **Overuse** — the app calls an API introduced *after* its declared
//!   `minSdkVersion` without an `SDK_INT` guard in the calling method:
//!   a runtime crash on every supported device below the API's
//!   introduction level.
//! * **Underuse** — the declared bounds are inconsistent with usage:
//!   `minSdkVersion` sits needlessly above every level the used APIs
//!   require (shrinking the install base for nothing), or a declared
//!   `maxSdkVersion` caps the app *below* the introduction level of an
//!   API it uses — no supported device can run that call at all.
//!
//! The detector deliberately scans each analyzed package method
//! independently, first level only, guard-refined within the method
//! body (no cross-method context propagation). That makes the usage
//! facts a *per-method* property: the incremental layer can recompute
//! them from class-group slices and [`assemble`] the verdict without
//! re-walking anything, and a group-sliced union equals the whole-app
//! scan byte-for-byte.

use std::collections::HashSet;

use saint_adf::{ApiDatabase, LifeSpan};
use saint_analysis::BlockRanges;
use saint_ir::{ApiLevel, Instr, LevelRange, Manifest, MethodRef};

use crate::aum::{is_app_origin, AppModel};
use crate::mismatch::{Mismatch, MismatchKind};

/// One framework-API usage relevant to declared-SDK vetting: a call
/// site in package code whose target API has a bounded lifetime.
///
/// Usages of APIs alive for the whole modeled history pin nothing and
/// are not recorded — they can never witness an overuse, and they ask
/// nothing of the declared bounds.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SdkUsage {
    /// The package method containing the call.
    pub site: MethodRef,
    /// The framework API invoked.
    pub api: MethodRef,
    /// The API's mined lifetime.
    pub life: LifeSpan,
    /// The guard-refined level range under which the call executes
    /// (refined within `site`'s body only).
    pub context: LevelRange,
}

/// The manifest facts DSD vetting gates on. Like the permission
/// detector's gates, they depend only on the manifest — the incremental
/// merge recomputes them from the container manifest and [`assemble`]s
/// the verdict over unioned per-group usages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdkFacts {
    /// Declared `minSdkVersion`.
    pub min_sdk: ApiLevel,
    /// Declared `maxSdkVersion`, if any.
    pub max_sdk: Option<ApiLevel>,
}

impl SdkFacts {
    /// Extracts the declared bounds from a manifest.
    #[must_use]
    pub fn of(manifest: &Manifest) -> Self {
        SdkFacts {
            min_sdk: manifest.min_sdk,
            max_sdk: manifest.max_sdk,
        }
    }
}

/// Detects declared-SDK consistency mismatches in the model.
#[must_use]
pub fn detect(model: &AppModel, db: &ApiDatabase) -> Vec<Mismatch> {
    assemble(
        SdkFacts::of(&model.manifest),
        model.supported,
        usages(model, db),
    )
}

/// Collects every bounded-lifetime API usage in analyzed package code:
/// each app-origin method's body is scanned under the app's supported
/// span, `SDK_INT` guards refining the range per block. First level
/// only — the call target itself, resolved exactly as the invocation
/// detector resolves it (CLVM resolution first, database fallback for
/// APIs absent from the snapshot).
///
/// The result is sorted by `(site, api, context)` and deduplicated, so
/// it is canonical: independent of method-map iteration order and of
/// how the app was sliced into class groups.
#[must_use]
pub fn usages(model: &AppModel, db: &ApiDatabase) -> Vec<SdkUsage> {
    let mut seen: HashSet<(MethodRef, MethodRef, LevelRange)> = HashSet::new();
    let mut out: Vec<SdkUsage> = Vec::new();

    let mut app_methods: Vec<_> = model
        .exploration
        .methods
        .values()
        .filter(|a| is_app_origin(a.origin))
        .collect();
    app_methods.sort_by(|a, b| a.method.cmp(&b.method));

    for art in app_methods {
        let Some(def) = art.class.method(&art.method.signature()) else {
            continue;
        };
        let Some(body) = &def.body else { continue };
        let ranges = BlockRanges::analyze(body, &art.cfg, &art.abs, model.supported);
        for (block, range) in ranges.iter() {
            for instr in &body.block(block).instrs {
                let Instr::Invoke { method: target, .. } = instr else {
                    continue;
                };
                let resolved = model.exploration.resolutions.get(target).cloned().flatten();
                let api = match &resolved {
                    Some(r) if db.is_api_method(r) => {
                        db.method_lifespan(r).map(|life| (r.clone(), life))
                    }
                    _ => db.resolve(&target.class, &target.signature()),
                };
                let Some((api_ref, life)) = api else { continue };
                // Whole-history APIs constrain nothing; skip them.
                if !life.introduced_after(ApiLevel::MIN) && life.removed.is_none() {
                    continue;
                }
                if seen.insert((art.method.clone(), api_ref.clone(), range)) {
                    out.push(SdkUsage {
                        site: art.method.clone(),
                        api: api_ref,
                        life,
                        context: range,
                    });
                }
            }
        }
    }
    sort_usages(&mut out);
    out
}

/// Canonical usage order: `(site, api, context)`. The incremental merge
/// sorts the unioned per-group usages with this before assembling, so
/// spliced verdicts reproduce the whole-app finding order.
pub fn sort_usages(usages: &mut [SdkUsage]) {
    usages.sort_by(|a, b| {
        (&a.site, &a.api, a.context.min(), a.context.max()).cmp(&(
            &b.site,
            &b.api,
            b.context.min(),
            b.context.max(),
        ))
    });
}

/// Turns manifest facts + usage sites into the final mismatch list —
/// the pure decision half of the detector, shared by [`detect`] and the
/// incremental merge path. `usages` must be in [`sort_usages`] order.
#[must_use]
pub fn assemble(facts: SdkFacts, supported: LevelRange, usages: Vec<SdkUsage>) -> Vec<Mismatch> {
    let mut out = Vec::new();

    // -- Overuse & ceiling inconsistency, per usage ---------------------
    for u in &usages {
        // A declared maxSdkVersion below the API's entire lifetime: no
        // supported device can execute this call — a bounds
        // inconsistency no in-method guard can repair (underuse).
        if facts.max_sdk.is_some() && u.life.introduced_after(supported.max()) {
            out.push(Mismatch {
                kind: MismatchKind::DsdUnderuse,
                site: u.site.clone(),
                api: u.api.clone(),
                api_life: Some(u.life),
                missing_levels: supported.iter().collect(),
                context: Some(supported),
                permission: None,
                via: Vec::new(),
            });
            continue;
        }
        // Unguarded use of an API introduced after the context floor:
        // crash on every context level below the introduction.
        let missing: Vec<ApiLevel> = u
            .context
            .iter()
            .filter(|&l| u.life.introduced_after(l))
            .collect();
        if !missing.is_empty() {
            out.push(Mismatch {
                kind: MismatchKind::DsdOveruse,
                site: u.site.clone(),
                api: u.api.clone(),
                api_life: Some(u.life),
                missing_levels: missing,
                context: Some(u.context),
                permission: None,
                via: Vec::new(),
            });
        }
    }

    // -- Underuse of the declared floor, per app ------------------------
    // The declared minSdkVersion is "pinned" by the unguarded usages
    // that execute at the floor itself: the highest introduction level
    // among them is what the floor actually needs to be. A floor
    // strictly above that excludes devices for nothing.
    let pinning: Vec<&SdkUsage> = usages
        .iter()
        .filter(|u| u.context.min() == supported.min())
        .collect();
    let needed = pinning.iter().map(|u| u.life.floor()).max();
    if let Some(needed) = needed {
        if needed > ApiLevel::MIN && supported.min() > needed {
            // Anchor the single per-app finding at the first usage (in
            // canonical order) that demands the highest floor.
            let anchor = pinning
                .iter()
                .find(|u| u.life.floor() == needed)
                .expect("a maximal pinning usage exists");
            out.push(Mismatch {
                kind: MismatchKind::DsdUnderuse,
                site: anchor.site.clone(),
                api: anchor.api.clone(),
                api_life: Some(anchor.life),
                // The levels needlessly excluded by the declared floor.
                missing_levels: LevelRange::new(needed, supported.min().pred())
                    .iter()
                    .collect(),
                context: Some(supported),
                permission: None,
                via: Vec::new(),
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aum::Aum;
    use saint_adf::{well_known, AndroidFramework};
    use saint_analysis::ExploreConfig;
    use saint_ir::{Apk, ApkBuilder, BodyBuilder, ClassBuilder, ClassOrigin};
    use std::sync::Arc;

    fn analyze(apk: &Apk) -> Vec<Mismatch> {
        let fw = Arc::new(AndroidFramework::curated());
        let model = Aum::build(apk, &fw, &ExploreConfig::saintdroid());
        detect(&model, &fw.database())
    }

    fn apk_with_oncreate(
        min: u8,
        target: u8,
        max: Option<u8>,
        f: impl FnOnce(&mut BodyBuilder),
    ) -> Apk {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", f)
            .unwrap()
            .build();
        let mut b = ApkBuilder::new("p", ApiLevel::new(min), ApiLevel::new(target));
        if let Some(m) = max {
            b = b.max_sdk(ApiLevel::new(m)).unwrap();
        }
        b.activity("p.Main").class(main).unwrap().build()
    }

    #[test]
    fn unguarded_new_api_is_overuse() {
        // min 21, getColorStateList introduced at 23, no guard.
        let apk = apk_with_oncreate(21, 28, None, |b| {
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.ret_void();
        });
        let ms = analyze(&apk);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].kind, MismatchKind::DsdOveruse);
        assert_eq!(
            ms[0].missing_levels,
            vec![ApiLevel::new(21), ApiLevel::new(22)]
        );
    }

    #[test]
    fn guarded_call_is_quiet() {
        let apk = apk_with_oncreate(21, 28, None, |b| {
            let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(23));
            b.switch_to(then_blk);
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.goto(join);
            b.switch_to(join);
            b.ret_void();
        });
        assert!(analyze(&apk).is_empty());
    }

    #[test]
    fn needlessly_high_floor_is_underuse() {
        // min 26 but the only bounded API used needs just 23: levels
        // 23..=25 are excluded for nothing.
        let apk = apk_with_oncreate(26, 28, None, |b| {
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.ret_void();
        });
        let ms = analyze(&apk);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].kind, MismatchKind::DsdUnderuse);
        assert_eq!(
            ms[0].missing_levels,
            vec![ApiLevel::new(23), ApiLevel::new(24), ApiLevel::new(25)]
        );
    }

    #[test]
    fn floor_matching_usage_is_quiet() {
        // min 23 exactly matches the API's introduction: consistent.
        let apk = apk_with_oncreate(23, 28, None, |b| {
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.ret_void();
        });
        assert!(analyze(&apk).is_empty());
    }

    #[test]
    fn ceiling_below_api_lifetime_is_underuse() {
        // maxSdkVersion 22 declared, but getColorStateList only exists
        // from 23: the call can never run on a supported device.
        let apk = apk_with_oncreate(19, 22, Some(22), |b| {
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.ret_void();
        });
        let ms = analyze(&apk);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].kind, MismatchKind::DsdUnderuse);
        // Every supported level is affected.
        assert_eq!(
            ms[0].missing_levels,
            (19..=22).map(ApiLevel::new).collect::<Vec<_>>()
        );
    }

    #[test]
    fn whole_history_api_constrains_nothing() {
        let apk = apk_with_oncreate(19, 28, None, |b| {
            b.invoke_virtual(well_known::activity_set_content_view(), &[], None);
            b.ret_void();
        });
        assert!(analyze(&apk).is_empty());
    }

    #[test]
    fn first_level_only_no_deep_descent() {
        // TintHelper.applyTint reaches View.setForeground (23) one
        // framework hop deep — invocation territory, not DSD's.
        let apk = apk_with_oncreate(21, 28, None, |b| {
            b.invoke_virtual(well_known::tint_helper_apply_tint(), &[], None);
            b.ret_void();
        });
        assert!(analyze(&apk).is_empty());
    }

    #[test]
    fn assemble_is_pure_over_sorted_usages() {
        // The split the incremental layer relies on: collecting usages
        // and assembling separately equals the one-shot detect.
        let apk = apk_with_oncreate(21, 28, None, |b| {
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.invoke_virtual(well_known::context_get_drawable(), &[], None);
            b.ret_void();
        });
        let fw = Arc::new(AndroidFramework::curated());
        let model = Aum::build(&apk, &fw, &ExploreConfig::saintdroid());
        let db = fw.database();
        let one_shot = detect(&model, &db);
        let mut us = usages(&model, &db);
        // Shuffle then re-sort: canonical order is order-insensitive.
        us.reverse();
        sort_usages(&mut us);
        let split = assemble(SdkFacts::of(&model.manifest), model.supported, us);
        assert_eq!(one_shot, split);
        // getColorStateList (23) overuses at min 21; getDrawable (21)
        // exists from the floor up and is quiet.
        assert_eq!(one_shot.len(), 1);
    }

    #[test]
    fn underuse_anchor_is_first_maximal_pinning_usage() {
        // Two bounded APIs (21 and 23) under min 26: the floor only
        // needs 23, and the finding anchors at the API demanding it.
        let apk = apk_with_oncreate(26, 28, None, |b| {
            b.invoke_virtual(well_known::context_get_drawable(), &[], None);
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.ret_void();
        });
        let ms = analyze(&apk);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].kind, MismatchKind::DsdUnderuse);
        assert_eq!(ms[0].api, well_known::context_get_color_state_list());
    }
}
