//! # saint-sync — poison-recovering locks for a fault-tolerant pipeline
//!
//! `std::sync` locks poison when a thread panics while holding them:
//! every later `lock().expect(...)` then panics too, so one crashing
//! scan cascades into a dead job queue, a dead cache shard, and a dead
//! daemon. This crate wraps the std primitives with the recovery
//! policy the scan pipeline wants everywhere: **a poisoned lock is
//! recovered transparently** (`PoisonError::into_inner`) instead of
//! propagating the failure.
//!
//! Why recovery is sound here: every structure guarded by these locks
//! in the workspace — the daemon's [`JobQueue`] state, the
//! [`ShardedClassCache`] / `DeepScanCache` shards, the CLVM class
//! table, trace shards — holds *monotone or re-derivable* data
//! (caches can only over- or under-contain, counters only lag, queue
//! entries are re-validated by their `cancelled` flag on dequeue). A
//! critical section interrupted mid-write leaves the map/deque in a
//! structurally valid state because the collection APIs themselves are
//! panic-safe; the worst case is one lost cache entry or one job whose
//! handler times out — never an invariant violation that must halt the
//! process.
//!
//! The API mirrors `std::sync` minus the `Result`s, plus a [`Condvar`]
//! whose `wait` recovers poison as well (the piece the vendored
//! `parking_lot` stand-in does not provide, and what the job queue
//! blocks on).
//!
//! [`JobQueue`]: https://docs.rs/saint-service
//! [`ShardedClassCache`]: https://docs.rs/saint-analysis

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock` never fails: a panic in a
/// previous critical section is recovered instead of cascading.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    #[must_use]
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value (poison
    /// recovered).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. A poisoned lock is
    /// recovered transparently — see the crate docs for why that is
    /// sound for every structure this workspace guards.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts to acquire the lock without blocking (`None` when the
    /// lock is held; poison is recovered, not reported).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A condition variable paired with [`Mutex`]: `wait` re-acquires the
/// lock with the same poison-recovery policy, so a panicking waiter
/// elsewhere never strands the remaining waiters.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard while parked and
    /// re-acquiring it (poison recovered) before returning.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard {
            inner: self
                .inner
                .wait(guard.inner)
                .unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// [`wait`](Self::wait) with a timeout; the boolean is `true` when
    /// the wait timed out rather than being notified.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.inner.wait_timeout(guard.inner, dur) {
            Ok((g, timeout)) => (MutexGuard { inner: g }, timeout.timed_out()),
            Err(poisoned) => {
                let (g, timeout) = poisoned.into_inner();
                (MutexGuard { inner: g }, timeout.timed_out())
            }
        }
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock whose `read`/`write` never fail: a panic in a
/// previous critical section is recovered instead of cascading.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    #[must_use]
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value (poison
    /// recovered).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, recovering poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access, recovering poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    #[test]
    fn mutex_recovers_after_panic_in_critical_section() {
        let m = Arc::new(Mutex::new(vec![1, 2, 3]));
        let m2 = Arc::clone(&m);
        let result = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("injected panic while holding the lock");
        })
        .join();
        assert!(result.is_err(), "the critical section panicked");
        // The std lock underneath is now poisoned; ours recovers.
        let mut g = m.lock();
        g.push(4);
        assert_eq!(*g, vec![1, 2, 3, 4]);
        drop(g);
        assert_eq!(m.try_lock().expect("uncontended").len(), 4);
    }

    #[test]
    fn rwlock_recovers_after_panic_in_write_section() {
        let l = Arc::new(RwLock::new(0u64));
        let l2 = Arc::clone(&l);
        let result = std::thread::spawn(move || {
            let mut g = l2.write();
            *g = 7;
            panic!("injected panic while holding the write lock");
        })
        .join();
        assert!(result.is_err());
        // Readers and writers both proceed; the partial write (a plain
        // store) is visible — recovery, not rollback.
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn condvar_wait_survives_a_poisoning_peer() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock();
                while !*ready {
                    ready = cv.wait(ready);
                }
                true
            })
        };
        // A peer poisons the same mutex before the wake-up…
        let poisoner = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let _g = pair.0.lock();
                panic!("injected panic while holding the condvar mutex");
            })
        };
        assert!(poisoner.join().is_err());
        // …and the waiter still observes the flag and wakes cleanly.
        *pair.0.lock() = true;
        pair.1.notify_all();
        assert!(waiter.join().expect("waiter exits cleanly"));
    }

    #[test]
    fn wait_timeout_reports_timeouts() {
        let pair = (Mutex::new(()), Condvar::new());
        let g = pair.0.lock();
        let (_g, timed_out) = pair.1.wait_timeout(g, Duration::from_millis(10));
        assert!(timed_out);
    }

    #[test]
    fn into_inner_and_get_mut_recover_poison() {
        let m = Mutex::new(5);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("poison it");
        }));
        assert!(caught.is_err());
        let mut m = m;
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 6);

        let l = RwLock::new(9);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _g = l.write();
            panic!("poison it");
        }));
        assert!(caught.is_err());
        let mut l = l;
        *l.get_mut() += 1;
        assert_eq!(l.into_inner(), 10);
    }
}
