//! Criterion micro-benchmarks over the substrate: codec round-trips,
//! revision mining, lazy vs. eager class loading, guard analysis, and
//! end-to-end detection on one benchmark app per tool.
//!
//! ```text
//! cargo bench -p saint-bench
//! ```

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use saint_adf::{android_spec, AndroidFramework, ApiDatabase, SynthConfig};
use saint_analysis::{
    app_method_roots, explore, AbsState, BlockRanges, Cfg, Clvm, ExploreConfig, FrameworkProvider,
    PrimaryDexProvider,
};
use saint_baselines::{Cid, Lint};
use saint_corpus::{cider_bench, RealWorldConfig, RealWorldCorpus};
use saint_ir::{codec, ApiLevel, Apk, BodyBuilder, LevelRange, MethodBody};
use saintdroid::{CompatDetector, SaintDroid, ScanEngine};

fn sample_apk() -> Apk {
    let corpus = RealWorldCorpus::new(RealWorldConfig::small());
    corpus.get(3).apk
}

fn guard_heavy_body() -> MethodBody {
    let mut b = BodyBuilder::new();
    for level in [19u8, 21, 23, 24, 26, 28] {
        let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(level));
        b.switch_to(then_blk);
        b.pad(8);
        b.goto(join);
        b.switch_to(join);
    }
    b.pad(4);
    b.ret_void();
    b.finish().expect("valid body")
}

fn bench_codec(c: &mut Criterion) {
    let apk = sample_apk();
    let bytes = codec::encode_apk(&apk);
    c.bench_function("codec/encode_apk", |b| {
        b.iter(|| codec::encode_apk(std::hint::black_box(&apk)))
    });
    c.bench_function("codec/decode_apk", |b| {
        b.iter(|| codec::decode_apk(std::hint::black_box(&bytes)).expect("valid"))
    });
}

fn bench_mining(c: &mut Criterion) {
    let spec = android_spec();
    c.bench_function("arm/mine_curated_database", |b| {
        b.iter(|| ApiDatabase::mine(std::hint::black_box(&spec)))
    });
}

fn bench_loading(c: &mut Criterion) {
    let fw = Arc::new(AndroidFramework::with_scale(&SynthConfig::medium()));
    let apk = sample_apk();
    let mut group = c.benchmark_group("clvm");
    group.sample_size(20);
    group.bench_function("lazy_explore", |b| {
        b.iter_batched(
            || {
                let mut clvm = Clvm::new();
                clvm.add_provider(Box::new(PrimaryDexProvider::new(&apk)));
                clvm.add_provider(Box::new(FrameworkProvider::new(
                    Arc::clone(&fw),
                    ApiLevel::new(28),
                )));
                clvm
            },
            |clvm| explore(&clvm, app_method_roots(&apk), &ExploreConfig::saintdroid()),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("eager_load_everything", |b| {
        b.iter_batched(
            || {
                let mut clvm = Clvm::new();
                clvm.add_provider(Box::new(PrimaryDexProvider::new(&apk)));
                clvm.add_provider(Box::new(FrameworkProvider::new(
                    Arc::clone(&fw),
                    ApiLevel::new(28),
                )));
                clvm
            },
            |clvm| {
                clvm.load_everything();
                clvm.loaded_count()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_guards(c: &mut Criterion) {
    let body = guard_heavy_body();
    let cfg = Cfg::build(&body);
    let abs = AbsState::analyze(&body, &cfg);
    let incoming = LevelRange::new(ApiLevel::new(14), ApiLevel::new(29));
    c.bench_function("guards/block_ranges_nested", |b| {
        b.iter(|| {
            BlockRanges::analyze(
                std::hint::black_box(&body),
                &cfg,
                &abs,
                std::hint::black_box(incoming),
            )
        })
    });
    c.bench_function("guards/abs_state", |b| {
        b.iter(|| AbsState::analyze(std::hint::black_box(&body), &cfg))
    });
}

fn bench_detectors(c: &mut Criterion) {
    let fw = Arc::new(AndroidFramework::with_scale(&SynthConfig::medium()));
    let _ = fw.database();
    let _ = fw.permission_map();
    let apps = cider_bench();
    let kolab = apps
        .iter()
        .find(|a| a.name == "Kolab notes")
        .expect("bench app present");
    let mut group = c.benchmark_group("detect/kolab_notes");
    group.sample_size(20);
    let saint = SaintDroid::new(Arc::clone(&fw));
    group.bench_function("saintdroid", |b| {
        b.iter(|| saint.analyze(std::hint::black_box(&kolab.apk)))
    });
    let cid = Cid::new(Arc::clone(&fw));
    group.bench_function("cid", |b| {
        b.iter(|| cid.analyze(std::hint::black_box(&kolab.apk)))
    });
    let lint = Lint::new(Arc::clone(&fw));
    group.bench_function("lint", |b| {
        b.iter(|| lint.analyze(std::hint::black_box(&kolab.apk)))
    });
    group.finish();
}

fn bench_scan_batch(c: &mut Criterion) {
    let fw = Arc::new(AndroidFramework::with_scale(&SynthConfig::medium()));
    let _ = fw.database();
    let _ = fw.permission_map();
    let apks: Vec<Apk> = cider_bench().into_iter().map(|a| a.apk).collect();
    let mut group = c.benchmark_group("engine/cider_bench");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        // Fresh tool per iteration: no cache survives between runs, the
        // pre-engine cost model.
        b.iter(|| {
            let tool = SaintDroid::new(Arc::clone(&fw));
            apks.iter()
                .map(|a| tool.run(std::hint::black_box(a)).total())
                .sum::<usize>()
        })
    });
    for jobs in [2usize, 4] {
        group.bench_function(&format!("scan_batch_jobs{jobs}"), |b| {
            b.iter(|| {
                ScanEngine::new(Arc::clone(&fw))
                    .jobs(jobs)
                    .scan_batch(std::hint::black_box(&apks))
                    .iter()
                    .map(saintdroid::Report::total)
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_mining,
    bench_loading,
    bench_guards,
    bench_detectors,
    bench_scan_batch
);
criterion_main!(benches);
