//! **Ablation** — quantifies the two design choices DESIGN.md calls
//! out, by running SAINTDroid variants over the benchmark suite:
//!
//! * **gradual vs. monolithic loading** (paper §III-A, first
//!   advantage): the `eager` variant preloads every available class
//!   before exploring — detection results are identical, but time and
//!   materialized bytes balloon;
//! * **beyond-first-level vs. shallow analysis** (paper §III-A, third
//!   advantage): the `shallow` variant stops at the framework boundary
//!   — faster, but the deep invocation and deep permission issues
//!   disappear from the reports.
//!
//! ```text
//! cargo run --release -p saint-bench --bin ablation
//! ```

use std::sync::Arc;
use std::time::Duration;

use saint_analysis::ExploreConfig;
use saint_bench::{fmt_mib, framework_at, markdown_table, write_json, Scale};
use saint_corpus::{cider_bench_scaled, score, Accuracy};
use saintdroid::{CompatDetector, SaintDroid};
use serde::Serialize;

#[derive(Serialize)]
struct VariantResult {
    variant: String,
    mean_seconds: f64,
    mean_bytes: usize,
    detections: usize,
    deep_detections: usize,
    accuracy_f: f64,
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("ablation: scale={}", scale.label());
    let fw = framework_at(scale);
    let apps = cider_bench_scaled(scale.bench_app_factor());

    let mut eager_cfg = ExploreConfig::saintdroid();
    eager_cfg.preload_all = true;
    let variants: Vec<(&str, SaintDroid)> = vec![
        (
            "gradual+deep (SAINTDroid)",
            SaintDroid::new(Arc::clone(&fw)),
        ),
        (
            "eager preload",
            SaintDroid::with_config(Arc::clone(&fw), eager_cfg),
        ),
        (
            "shallow (first level only)",
            SaintDroid::with_config(Arc::clone(&fw), ExploreConfig::shallow()),
        ),
    ];

    let mut rows_md = Vec::new();
    let mut rows_json = Vec::new();
    for (label, tool) in &variants {
        let mut total = Duration::ZERO;
        let mut bytes = 0usize;
        let mut detections = 0usize;
        let mut deep = 0usize;
        let mut acc = Accuracy::default();
        for app in &apps {
            let report = tool.analyze(&app.apk).expect("variants analyze all apps");
            total += report.duration;
            bytes += report.meter.total_bytes();
            detections += report.total();
            deep += report.mismatches.iter().filter(|m| m.is_deep()).count();
            acc.absorb(score(&report, &app.truth, None));
        }
        let n = apps.len();
        rows_md.push(vec![
            (*label).to_string(),
            format!("{:.3}", total.as_secs_f64() / n as f64),
            fmt_mib(bytes / n),
            detections.to_string(),
            deep.to_string(),
            format!("{:.0}%", acc.f_measure() * 100.0),
        ]);
        rows_json.push(VariantResult {
            variant: (*label).to_string(),
            mean_seconds: total.as_secs_f64() / n as f64,
            mean_bytes: bytes / n,
            detections,
            deep_detections: deep,
            accuracy_f: acc.f_measure(),
        });
    }

    println!("\nAblation over the {}-app benchmark suite:\n", apps.len());
    println!(
        "{}",
        markdown_table(
            &[
                "Variant",
                "mean s/app",
                "mean MiB/app",
                "detections",
                "deep",
                "F"
            ],
            &rows_md
        )
    );
    println!("Expected shape: eager preload detects the same issues at a multiple of the cost;");
    println!("shallow runs fastest but loses every deep detection (and its F-measure drops).");
    let path = write_json("ablation", &rows_json);
    eprintln!("json: {}", path.display());
}
