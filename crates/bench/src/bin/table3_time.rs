//! **Table III** — per-app analysis time (seconds) of SAINTDroid, CID
//! and Lint on the 12 CIDER-Bench apps. Dashes mark tools that crash
//! on or cannot build an app, exactly as in the paper. Each timing is
//! the mean of three attempts (paper §IV-C).
//!
//! ```text
//! cargo run --release -p saint-bench --bin table3_time
//! SAINT_SCALE=paper cargo run --release -p saint-bench --bin table3_time
//! ```

use std::sync::Arc;
use std::time::Duration;

use saint_baselines::{Cid, Lint};
use saint_bench::{fmt_secs, framework_at, markdown_table, timed_analyze, write_json, Scale};
use saint_corpus::cider_bench_scaled;
use saintdroid::engine::{default_jobs, par_map};
use saintdroid::SaintDroid;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    app: String,
    saintdroid_s: Option<f64>,
    cid_s: Option<f64>,
    lint_s: Option<f64>,
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("table3_time: scale={}", scale.label());
    let fw = framework_at(scale);

    // Like Figure 3, this is a cross-tool timing comparison, so
    // SAINTDroid runs without a batch cache — every tool pays its own
    // materialization cost, as in the paper's setup.
    let saint = SaintDroid::new(Arc::clone(&fw));
    let cid = Cid::new(Arc::clone(&fw));
    let lint = Lint::new(Arc::clone(&fw));

    let apps = cider_bench_scaled(scale.bench_app_factor());
    let timings: Vec<[Option<Duration>; 3]> = par_map(default_jobs(), &apps, |_, app| {
        [
            timed_analyze(&saint, &app.apk, 3).map(|(d, _)| d),
            timed_analyze(&cid, &app.apk, 3).map(|(d, _)| d),
            timed_analyze(&lint, &app.apk, 3).map(|(d, _)| d),
        ]
    });

    let mut rows_md: Vec<Vec<String>> = Vec::new();
    let mut rows_json: Vec<Row> = Vec::new();
    let mut sums: [Duration; 3] = [Duration::ZERO; 3];
    let mut counts = [0usize; 3];

    for (app, [s, c, l]) in apps.iter().zip(timings) {
        for (i, d) in [s, c, l].iter().enumerate() {
            if let Some(d) = d {
                sums[i] += *d;
                counts[i] += 1;
            }
        }
        rows_md.push(vec![
            app.name.to_string(),
            fmt_secs(s),
            fmt_secs(c),
            fmt_secs(l),
        ]);
        rows_json.push(Row {
            app: app.name.to_string(),
            saintdroid_s: s.map(|d| d.as_secs_f64()),
            cid_s: c.map(|d| d.as_secs_f64()),
            lint_s: l.map(|d| d.as_secs_f64()),
        });
    }

    println!("\nTable III: analysis time in seconds (mean of 3 runs; – = tool failed)\n");
    println!(
        "{}",
        markdown_table(&["App", "SAINTDroid", "CID", "Lint"], &rows_md)
    );
    let mean = |i: usize| {
        if counts[i] == 0 {
            f64::NAN
        } else {
            sums[i].as_secs_f64() / counts[i] as f64
        }
    };
    println!(
        "means over analyzable apps: SAINTDroid {:.2}s, CID {:.2}s, Lint {:.2}s",
        mean(0),
        mean(1),
        mean(2)
    );
    if mean(0) > 0.0 {
        println!(
            "speedup vs CID: {:.1}x | vs Lint: {:.1}x",
            mean(1) / mean(0),
            mean(2) / mean(0)
        );
    }
    let path = write_json("table3_time", &rows_json);
    eprintln!("json: {}", path.display());
}
