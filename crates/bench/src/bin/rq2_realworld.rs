//! **RQ2** — real-world applicability: SAINTDroid over the generated
//! corpus, reporting the paper's §V-B aggregate statistics:
//!
//! * total potential API invocation mismatches and the share of apps
//!   with at least one (paper: 68,268 / 41.19 %);
//! * API callback mismatches (2,115 / 20.05 %);
//! * the permission split: share of target ≥ 23 apps with request
//!   mismatches (12.34 %) and of target < 23 apps with revocation
//!   mismatches (68.68 %);
//! * a 60-app precision sample against the generator's injected ground
//!   truth (paper: 85 % / 100 % / 100 % for API / APC / PRM).
//!
//! ```text
//! cargo run --release -p saint-bench --bin rq2_realworld
//! SAINT_SCALE=paper cargo run --release -p saint-bench --bin rq2_realworld   # full 3,571 apps
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use saint_bench::{framework_at, write_json, Scale};
use saint_corpus::{InjectedCounts, RealWorldCorpus};
use saintdroid::engine::{
    default_jobs, par_map_indexed, ArtifactCache, DeepScanCache, ShardedClassCache,
};
use saintdroid::{CompatDetector, MismatchKind, SaintDroid};
use serde::Serialize;

#[derive(Serialize, Clone, Copy, Default)]
struct AppResult {
    index: usize,
    modern_target: bool,
    api: usize,
    apc: usize,
    prm_request: usize,
    prm_revocation: usize,
    injected: InjectedCounts,
}

#[derive(Serialize)]
struct Output {
    apps: usize,
    api_total: usize,
    api_app_pct: f64,
    apc_total: usize,
    apc_app_pct: f64,
    modern_apps: usize,
    request_pct_of_modern: f64,
    legacy_apps: usize,
    revocation_pct_of_legacy: f64,
    precision_api: f64,
    precision_apc: f64,
    precision_prm: f64,
}

fn main() {
    let scale = Scale::from_env();
    let cfg = scale.realworld_config();
    eprintln!("rq2_realworld: scale={} apps={}", scale.label(), cfg.apps);
    let fw = framework_at(scale);
    let corpus = RealWorldCorpus::new(cfg);
    // Detection counts are cache-invariant, so the whole sweep shares
    // the batch caches and just finishes sooner.
    let saint = SaintDroid::new(Arc::clone(&fw))
        .with_shared_cache(Arc::new(ShardedClassCache::new()))
        .with_shared_artifact_cache(Arc::new(ArtifactCache::new()))
        .with_shared_scan_cache(Arc::new(DeepScanCache::new()));

    let n = corpus.len();
    let done = AtomicUsize::new(0);
    let results: Vec<AppResult> = par_map_indexed(default_jobs(), n, |i| {
        let app = corpus.get(i);
        let report = saint
            .analyze(&app.apk)
            .expect("SAINTDroid analyzes any app");
        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
        if d.is_multiple_of(200) {
            eprintln!("  {d}/{n} apps analyzed");
        }
        AppResult {
            index: i,
            modern_target: app.apk.manifest.targets_runtime_permissions(),
            api: report.count(MismatchKind::ApiInvocation),
            apc: report.count(MismatchKind::ApiCallback),
            prm_request: report.count(MismatchKind::PermissionRequest),
            prm_revocation: report.count(MismatchKind::PermissionRevocation),
            injected: app.injected,
        }
    });

    let api_total: usize = results.iter().map(|r| r.api).sum();
    let api_apps = results.iter().filter(|r| r.api > 0).count();
    let apc_total: usize = results.iter().map(|r| r.apc).sum();
    let apc_apps = results.iter().filter(|r| r.apc > 0).count();
    let modern: Vec<&AppResult> = results.iter().filter(|r| r.modern_target).collect();
    let legacy: Vec<&AppResult> = results.iter().filter(|r| !r.modern_target).collect();
    let request_apps = modern.iter().filter(|r| r.prm_request > 0).count();
    let revocation_apps = legacy.iter().filter(|r| r.prm_revocation > 0).count();
    let pct = |a: usize, b: usize| 100.0 * a as f64 / b.max(1) as f64;

    // Precision sample: 60 apps with at least one detection, scored
    // against what the generator injected (paper §V-B samples 60 apps;
    // ground truth known here by construction).
    let mut sampled = 0usize;
    let mut tp = [0usize; 3];
    let mut fp = [0usize; 3];
    for r in &results {
        if sampled >= 60 {
            break;
        }
        if r.api + r.apc + r.prm_request + r.prm_revocation == 0 {
            continue;
        }
        sampled += 1;
        let pairs = [
            (r.api, r.injected.api),
            (r.apc, r.injected.apc),
            (
                r.prm_request + r.prm_revocation,
                r.injected.prm_request + r.injected.prm_revocation,
            ),
        ];
        for (k, (reported, injected)) in pairs.iter().enumerate() {
            tp[k] += reported.min(injected);
            fp[k] += reported.saturating_sub(*injected);
        }
    }
    let precision = |k: usize| {
        if tp[k] + fp[k] == 0 {
            1.0
        } else {
            tp[k] as f64 / (tp[k] + fp[k]) as f64
        }
    };

    println!("\nRQ2: real-world applicability over {n} generated apps\n");
    println!(
        "API invocation mismatches: {api_total} total; {:.2}% of apps affected (paper: 68,268 / 41.19%)",
        pct(api_apps, n)
    );
    println!(
        "API callback mismatches:   {apc_total} total; {:.2}% of apps affected (paper: 2,115 / 20.05%)",
        pct(apc_apps, n)
    );
    println!(
        "target >= 23 group: {} apps; {:.2}% with permission request mismatches (paper: 1,815 / 12.34%)",
        modern.len(),
        pct(request_apps, modern.len())
    );
    println!(
        "target <  23 group: {} apps; {:.2}% with permission revocation mismatches (paper: 1,756 / 68.68%)",
        legacy.len(),
        pct(revocation_apps, legacy.len())
    );
    println!(
        "precision over a {sampled}-app sample: API {:.0}%, APC {:.0}%, PRM {:.0}% (paper: 85/100/100)",
        precision(0) * 100.0,
        precision(1) * 100.0,
        precision(2) * 100.0
    );

    let output = Output {
        apps: n,
        api_total,
        api_app_pct: pct(api_apps, n),
        apc_total,
        apc_app_pct: pct(apc_apps, n),
        modern_apps: modern.len(),
        request_pct_of_modern: pct(request_apps, modern.len()),
        legacy_apps: legacy.len(),
        revocation_pct_of_legacy: pct(revocation_apps, legacy.len()),
        precision_api: precision(0),
        precision_apc: precision(1),
        precision_prm: precision(2),
    };
    let path = write_json("rq2_realworld", &(output, results));
    eprintln!("json: {}", path.display());
}
