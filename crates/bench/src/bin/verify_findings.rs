//! **Dynamic verification** — the experiment for the paper's §VI
//! future work: every SAINTDroid finding on the benchmark suite (and a
//! slice of the real-world corpus) is replayed on simulated devices.
//! Confirmed findings crashed as predicted; refuted findings survived
//! complete closed-world execution — in our corpus those are exactly
//! the anonymous-inner-class false alarms §VI describes.
//!
//! ```text
//! cargo run --release -p saint-bench --bin verify_findings
//! ```

use std::sync::Arc;

use saint_bench::{framework_at, markdown_table, write_json, Scale};
use saint_corpus::{benchmark_suite, RealWorldCorpus};
use saint_dynamic::Verifier;
use saintdroid::{CompatDetector, SaintDroid};
use serde::Serialize;

#[derive(Serialize, Default)]
struct Tally {
    confirmed: usize,
    refuted: usize,
    undetermined: usize,
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("verify_findings: scale={}", scale.label());
    let fw = framework_at(scale);
    let saint = SaintDroid::new(Arc::clone(&fw));
    let verifier = Verifier::new(Arc::clone(&fw));

    let mut rows = Vec::new();
    let mut bench_tally = Tally::default();
    for app in benchmark_suite() {
        let report = saint
            .analyze(&app.apk)
            .expect("SAINTDroid analyzes any app");
        if report.is_clean() {
            continue;
        }
        let v = verifier.verify(&app.apk, &report);
        bench_tally.confirmed += v.confirmed.len();
        bench_tally.refuted += v.refuted.len();
        bench_tally.undetermined += v.undetermined.len();
        rows.push(vec![
            app.name.to_string(),
            report.total().to_string(),
            v.confirmed.len().to_string(),
            v.refuted.len().to_string(),
            v.undetermined.len().to_string(),
        ]);
    }

    println!("\nDynamic verification of SAINTDroid findings (benchmark suite)\n");
    println!(
        "{}",
        markdown_table(
            &["App", "findings", "confirmed", "refuted", "undetermined"],
            &rows
        )
    );
    let decided = bench_tally.confirmed + bench_tally.refuted;
    println!(
        "benchmark: {} findings, {} confirmed, {} refuted (dynamic precision {:.0}%)",
        decided + bench_tally.undetermined,
        bench_tally.confirmed,
        bench_tally.refuted,
        100.0 * bench_tally.confirmed as f64 / decided.max(1) as f64
    );

    // A real-world slice: verification clears the anon-guard bait.
    let mut cfg = scale.realworld_config();
    cfg.apps = cfg.apps.min(40);
    let corpus = RealWorldCorpus::new(cfg);
    let mut rw_tally = Tally::default();
    for app in corpus.iter() {
        let report = saint
            .analyze(&app.apk)
            .expect("SAINTDroid analyzes any app");
        if report.is_clean() {
            continue;
        }
        let v = verifier.verify(&app.apk, &report);
        rw_tally.confirmed += v.confirmed.len();
        rw_tally.refuted += v.refuted.len();
        rw_tally.undetermined += v.undetermined.len();
    }
    let decided = rw_tally.confirmed + rw_tally.refuted;
    println!(
        "real-world slice ({} apps): {} confirmed, {} refuted, {} undetermined (dynamic precision {:.0}%)",
        corpus.len(),
        rw_tally.confirmed,
        rw_tally.refuted,
        rw_tally.undetermined,
        100.0 * rw_tally.confirmed as f64 / decided.max(1) as f64
    );
    println!(
        "\nThe refuted findings are the §VI anonymous-inner-class false alarms: the\n\
         interpreter executes the anonymous guard static analysis cannot see."
    );
    let path = write_json("verify_findings", &(bench_tally, rw_tally));
    eprintln!("json: {}", path.display());
}
