//! **Figure 4** — memory during analysis: how much code and graph
//! structure SAINTDroid vs. CID materialize per real-world app. The
//! meter counts bytes of class definitions loaded plus analysis
//! structures built (see `saint_analysis::LoadMeter`): the
//! deterministic equivalent of the paper's RSS measurements, which
//! showed SAINTDroid at ≈ 329 MB average vs CID at ≈ 1.3 GB (4×).
//!
//! ```text
//! cargo run --release -p saint-bench --bin fig4_memory
//! SAINT_SCALE=paper SAINT_APPS=3571 cargo run --release -p saint-bench --bin fig4_memory
//! ```

use std::sync::Arc;

use saint_baselines::Cid;
use saint_bench::{fmt_mib, framework_at, write_json, Scale};
use saint_corpus::RealWorldCorpus;
use saintdroid::engine::{
    default_jobs, par_map_indexed, ArtifactCache, DeepScanCache, ShardedClassCache,
};
use saintdroid::{CompatDetector, SaintDroid};
use serde::Serialize;

#[derive(Serialize, Clone, Copy, Default)]
struct Point {
    index: usize,
    kloc: f64,
    saintdroid_bytes: usize,
    saintdroid_classes: usize,
    cid_bytes: Option<usize>,
    cid_classes: Option<usize>,
}

fn main() {
    let scale = Scale::from_env();
    let cfg = scale.realworld_config();
    eprintln!("fig4_memory: scale={} apps={}", scale.label(), cfg.apps);
    let fw = framework_at(scale);
    let corpus = RealWorldCorpus::new(cfg);
    // This figure reports *metered* bytes, which are exact whether or
    // not materializations are shared (see `ShardedClassCache` and
    // `ArtifactCache`), so SAINTDroid gets the batch caches purely to
    // make the sweep faster.
    let saint = SaintDroid::new(Arc::clone(&fw))
        .with_shared_cache(Arc::new(ShardedClassCache::new()))
        .with_shared_artifact_cache(Arc::new(ArtifactCache::new()))
        .with_shared_scan_cache(Arc::new(DeepScanCache::new()));
    let cid = Cid::new(Arc::clone(&fw));

    let n = corpus.len();
    let points: Vec<Point> = par_map_indexed(default_jobs(), n, |i| {
        let app = corpus.get(i);
        let sr = saint
            .analyze(&app.apk)
            .expect("SAINTDroid analyzes any app");
        let cr = cid.analyze(&app.apk);
        Point {
            index: i,
            kloc: app.apk.kloc(),
            saintdroid_bytes: sr.meter.total_bytes(),
            saintdroid_classes: sr.meter.classes_loaded,
            cid_bytes: cr.as_ref().map(|r| r.meter.total_bytes()),
            cid_classes: cr.as_ref().map(|r| r.meter.classes_loaded),
        }
    });

    let mean = |it: &mut dyn Iterator<Item = usize>| -> (f64, usize, usize, usize) {
        let mut sum = 0usize;
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut n = 0usize;
        for v in it {
            sum += v;
            min = min.min(v);
            max = max.max(v);
            n += 1;
        }
        if n == 0 {
            (f64::NAN, 0, 0, 0)
        } else {
            (sum as f64 / n as f64, min, max, n)
        }
    };

    let (s_mean, s_min, s_max, _) = mean(&mut points.iter().map(|p| p.saintdroid_bytes));
    let (c_mean, c_min, c_max, c_n) = mean(&mut points.iter().filter_map(|p| p.cid_bytes));

    println!("\nFigure 4: materialized code + graph bytes per app ({n} apps)\n");
    println!(
        "SAINTDroid: mean {} MiB (range {}–{} MiB)",
        fmt_mib(s_mean as usize),
        fmt_mib(s_min),
        fmt_mib(s_max)
    );
    println!(
        "CID:        mean {} MiB (range {}–{} MiB) over {c_n} analyzable apps",
        fmt_mib(c_mean as usize),
        fmt_mib(c_min),
        fmt_mib(c_max)
    );
    println!(
        "ratio: CID materializes {:.1}x what SAINTDroid does (paper: ~4x, 1.3 GB vs 329 MB)",
        c_mean / s_mean
    );
    let s_cls: f64 = points
        .iter()
        .map(|p| p.saintdroid_classes as f64)
        .sum::<f64>()
        / n as f64;
    let c_cls: f64 = points
        .iter()
        .filter_map(|p| p.cid_classes)
        .map(|v| v as f64)
        .sum::<f64>()
        / c_n.max(1) as f64;
    println!(
        "classes loaded per app: SAINTDroid {s_cls:.0} vs CID {c_cls:.0} (of {} in the framework)",
        fw.class_count()
    );
    let path = write_json("fig4_memory", &points);
    eprintln!("json: {}", path.display());
}
