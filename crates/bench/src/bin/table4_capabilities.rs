//! **Table IV** — the detection-capability matrix: which mismatch
//! families each tool covers. Rows for the implemented tools come from
//! their [`saintdroid::CompatDetector::capabilities`]; the
//! IctApiFinder row is static, as in the paper (the tool was not
//! publicly available and was not run; §IV-B).
//!
//! ```text
//! cargo run --release -p saint-bench --bin table4_capabilities
//! ```

use std::sync::Arc;

use saint_adf::AndroidFramework;
use saint_baselines::{Cid, Cider, Lint};
use saint_bench::{markdown_table, write_json};
use saintdroid::{Capabilities, CompatDetector, SaintDroid};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    tool: String,
    api: bool,
    apc: bool,
    prm: bool,
    dsd: bool,
}

fn mark(b: bool) -> String {
    if b { "✓" } else { "✗" }.to_string()
}

fn main() {
    // The capability matrix does not depend on framework scale.
    let fw = Arc::new(AndroidFramework::curated());
    let tools: Vec<Box<dyn CompatDetector>> = vec![
        Box::new(Cid::new(Arc::clone(&fw))),
        Box::new(Cider::new(Arc::clone(&fw))),
        Box::new(Lint::new(Arc::clone(&fw))),
        Box::new(SaintDroid::new(Arc::clone(&fw)).with_detectors(saintdroid::DetectorSet::all())),
    ];

    let mut rows_md = Vec::new();
    let mut rows_json = Vec::new();
    for tool in &tools {
        let c = tool.capabilities();
        rows_md.push(vec![
            tool.name().to_string(),
            mark(c.api),
            mark(c.apc),
            mark(c.prm),
            mark(c.dsd),
        ]);
        rows_json.push(Row {
            tool: tool.name().to_string(),
            api: c.api,
            apc: c.apc,
            prm: c.prm,
            dsd: c.dsd,
        });
        // The paper's row order places IctApiFinder between CIDER and
        // LINT; we append its static row right after CIDER.
        if tool.name() == "CIDER" {
            let ict = Capabilities {
                api: true,
                apc: false,
                prm: false,
                dsd: false,
            };
            rows_md.push(vec![
                "IctApiFinder (reported)".to_string(),
                mark(ict.api),
                mark(ict.apc),
                mark(ict.prm),
                mark(ict.dsd),
            ]);
            rows_json.push(Row {
                tool: "IctApiFinder".to_string(),
                api: ict.api,
                apc: ict.apc,
                prm: ict.prm,
                dsd: ict.dsd,
            });
        }
    }

    println!("\nTable IV: detection capabilities per tool\n");
    println!(
        "{}",
        markdown_table(&["Tool", "API", "APC", "PRM", "DSD"], &rows_md)
    );
    println!("SAINTDroid is the only tool covering all four families, matching the paper's claim.");
    let path = write_json("table4_capabilities", &rows_json);
    eprintln!("json: {}", path.display());
}
