//! **Figure 3** — scatter of SAINTDroid analysis time vs. app size
//! (KLOC) over the real-world corpus, plus the per-tool average/range
//! comparison quoted in §V-C (SAINTDroid 6.2 s avg vs CID 29.5 s vs
//! Lint 24.7 s on the paper's testbed — expect the same *ordering and
//! ratios*, not the same absolute numbers).
//!
//! ```text
//! cargo run --release -p saint-bench --bin fig3_scatter
//! SAINT_SCALE=paper SAINT_APPS=3571 cargo run --release -p saint-bench --bin fig3_scatter
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use saint_baselines::{Cid, Lint};
use saint_bench::{framework_at, write_json, Scale};
use saint_corpus::RealWorldCorpus;
use saintdroid::engine::{default_jobs, par_map_indexed};
use saintdroid::{CompatDetector, SaintDroid};
use serde::Serialize;

#[derive(Serialize, Clone, Copy, Default)]
struct Point {
    index: usize,
    kloc: f64,
    saintdroid_s: f64,
    cid_s: Option<f64>,
    lint_s: Option<f64>,
}

#[derive(Default)]
struct Stats {
    sum: f64,
    min: f64,
    max: f64,
    n: usize,
}

impl Stats {
    fn push(&mut self, v: f64) {
        if self.n == 0 {
            self.min = v;
            self.max = v;
        }
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
        self.n += 1;
    }

    fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.sum / self.n as f64
        }
    }
}

fn main() {
    let scale = Scale::from_env();
    let cfg = scale.realworld_config();
    eprintln!("fig3_scatter: scale={} apps={}", scale.label(), cfg.apps);
    let fw = framework_at(scale);
    let corpus = RealWorldCorpus::new(cfg);

    // No batch-shared class cache here: this figure compares per-app
    // timings *across tools*, and CID/Lint materialize the framework
    // for themselves every run — giving only SAINTDroid a warm cache
    // would inflate the speedup ratios the paper reports.
    let saint = SaintDroid::new(Arc::clone(&fw));
    let cid = Cid::new(Arc::clone(&fw));
    let lint = Lint::new(Arc::clone(&fw));

    let n = corpus.len();
    let done = AtomicUsize::new(0);
    let points: Vec<Point> = par_map_indexed(default_jobs(), n, |i| {
        let app = corpus.get(i);
        let t0 = std::time::Instant::now();
        let _ = saint.analyze(&app.apk);
        let saint_s = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let cid_ok = cid.analyze(&app.apk).is_some();
        let cid_s = cid_ok.then(|| t1.elapsed().as_secs_f64());
        let t2 = std::time::Instant::now();
        let lint_ok = lint.analyze(&app.apk).is_some();
        let lint_s = lint_ok.then(|| t2.elapsed().as_secs_f64());
        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
        if d.is_multiple_of(100) {
            eprintln!("  {d}/{n} apps analyzed");
        }
        Point {
            index: i,
            kloc: app.apk.kloc(),
            saintdroid_s: saint_s,
            cid_s,
            lint_s,
        }
    });

    let mut s_saint = Stats::default();
    let mut s_cid = Stats::default();
    let mut s_lint = Stats::default();
    for p in &points {
        s_saint.push(p.saintdroid_s);
        if let Some(v) = p.cid_s {
            s_cid.push(v);
        }
        if let Some(v) = p.lint_s {
            s_lint.push(v);
        }
    }

    println!("\nFigure 3: SAINTDroid analysis time vs app size ({n} real-world apps)\n");
    println!("kloc,saintdroid_seconds   (scatter series; full data in the JSON dump)");
    let mut sample: Vec<&Point> = points.iter().collect();
    sample.sort_by(|a, b| a.kloc.partial_cmp(&b.kloc).expect("finite"));
    let step = (sample.len() / 20).max(1);
    for p in sample.iter().step_by(step) {
        println!("{:8.2},{:8.4}", p.kloc, p.saintdroid_s);
    }
    println!(
        "\nSAINTDroid: mean {:.3}s (range {:.3}–{:.3}s) over {} apps",
        s_saint.mean(),
        s_saint.min,
        s_saint.max,
        s_saint.n
    );
    println!(
        "CID:        mean {:.3}s (range {:.3}–{:.3}s) over {} analyzable apps",
        s_cid.mean(),
        s_cid.min,
        s_cid.max,
        s_cid.n
    );
    println!(
        "Lint:       mean {:.3}s (range {:.3}–{:.3}s) over {} analyzable apps",
        s_lint.mean(),
        s_lint.min,
        s_lint.max,
        s_lint.n
    );
    println!(
        "speedup: {:.1}x vs CID, {:.1}x vs Lint (paper: 4.8x and 4.0x on its testbed)",
        s_cid.mean() / s_saint.mean(),
        s_lint.mean() / s_saint.mean()
    );
    let path = write_json("fig3_scatter", &points);
    eprintln!("json: {}", path.display());
}
