//! **bench_summary** — headline numbers for the batch scan engine:
//! sequential `SaintDroid::run` (one plain tool, one app at a time)
//! vs `ScanEngine::scan_batch` with 4 workers and the batch-wide
//! caches, over the real-world corpus.
//!
//! Each side is timed in a **fresh child process** (best of
//! `SAINT_REPS`, default 3, alternating sides) so neither side inherits
//! the other's heap: measuring both in one process lets allocator state
//! and retained memory from whichever side ran first distort the
//! second, burying the real difference under noise. Children also emit
//! a fingerprint over every report; the parent verifies the two sides
//! produced identical per-app reports (mismatches *and* metered bytes)
//! before writing `BENCH_scan.json` to the working directory.
//!
//! ```text
//! cargo run --release -p saint-bench --bin bench_summary
//! SAINT_SCALE=small SAINT_REPS=5 cargo run --release -p saint-bench --bin bench_summary
//! ```

use std::io::Write as _;
use std::time::Instant;

use saint_bench::{framework_at, Scale};
use saint_corpus::RealWorldCorpus;
use saint_ir::Apk;
use saintdroid::{Report, SaintDroid, ScanEngine};
use serde::Serialize;

const SIDE_ENV: &str = "SAINT_BENCH_SIDE";
const OUT_ENV: &str = "SAINT_BENCH_OUT";

#[derive(Serialize)]
struct Summary {
    scale: String,
    apps: usize,
    jobs: usize,
    reps: usize,
    sequential_secs: f64,
    batch_secs: f64,
    sequential_apps_per_sec: f64,
    batch_apps_per_sec: f64,
    speedup: f64,
    peak_loaded_bytes: usize,
    cache_hits: u64,
    cache_misses: u64,
    cache_entries: usize,
    artifact_cache_hits: u64,
    artifact_cache_misses: u64,
    scan_cache_hits: u64,
    scan_cache_misses: u64,
    mismatches: usize,
    reports_identical: bool,
}

/// What one timed child run reports back to the orchestrator.
#[derive(Serialize, serde::Deserialize)]
struct SideRun {
    wall_secs: f64,
    peak_loaded_bytes: usize,
    cache_hits: u64,
    cache_misses: u64,
    cache_entries: usize,
    artifact_cache_hits: u64,
    artifact_cache_misses: u64,
    scan_cache_hits: u64,
    scan_cache_misses: u64,
    /// FNV-1a fingerprint over one canonical JSON line per app (the
    /// mismatches plus the metered loading footprint). FNV is computed
    /// by hand because it is stable across processes, unlike the
    /// randomly-keyed std hasher; comparing the two sides' fingerprints
    /// is the report-parity check.
    reports_fingerprint: String,
    mismatches: usize,
}

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn corpus_apks(scale: Scale) -> Vec<Apk> {
    let corpus = RealWorldCorpus::new(scale.realworld_config());
    (0..corpus.len()).map(|i| corpus.get(i).apk).collect()
}

fn digest(report: &Report) -> String {
    let mismatches = serde_json::to_string(&report.mismatches).expect("mismatches serialize");
    format!(
        "{}|{}|{}|{}",
        report.package,
        mismatches,
        report.meter.total_bytes(),
        report.meter.classes_loaded
    )
}

/// Child mode: run one side cold and write a [`SideRun`] JSON.
fn run_side(side: &str, out_path: &str) {
    let scale = Scale::from_env();
    let fw = framework_at(scale);
    let apks = corpus_apks(scale);
    let engine = match side {
        // The pre-engine shape: one plain tool, one app at a time,
        // strictly per-app materialization and analysis.
        "sequential" => ScanEngine::from_tool(SaintDroid::new(fw)).jobs(1),
        // The batch engine: worker threads (clamped to the core count)
        // plus the three batch-wide caches.
        "batch" => ScanEngine::new(fw).jobs(4),
        other => panic!("unknown side {other}"),
    };
    let start = Instant::now();
    let reports = engine.scan_batch(&apks);
    let wall_secs = start.elapsed().as_secs_f64();

    let zero = saint_analysis::CacheStats { hits: 0, misses: 0, entries: 0 };
    let class = engine.cache_stats().unwrap_or(zero);
    let artifacts = engine.artifact_cache_stats().unwrap_or(zero);
    let scans = engine.scan_cache_stats().unwrap_or(zero);
    let run = SideRun {
        wall_secs,
        peak_loaded_bytes: reports
            .iter()
            .map(|r| r.meter.total_bytes())
            .max()
            .unwrap_or(0),
        cache_hits: class.hits,
        cache_misses: class.misses,
        cache_entries: class.entries,
        artifact_cache_hits: artifacts.hits,
        artifact_cache_misses: artifacts.misses,
        scan_cache_hits: scans.hits,
        scan_cache_misses: scans.misses,
        reports_fingerprint: {
            let mut hash = 0xcbf2_9ce4_8422_2325;
            for report in &reports {
                hash = fnv1a(digest(report).as_bytes(), hash);
                hash = fnv1a(b"\n", hash);
            }
            format!("{hash:016x}")
        },
        mismatches: reports.iter().map(Report::total).sum(),
    };
    let json = serde_json::to_string(&run).expect("side run serializes");
    std::fs::File::create(out_path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write side run");
}

/// Spawns this binary in child mode and reads its result.
fn spawn_side(side: &str, out_path: &str) -> SideRun {
    let exe = std::env::current_exe().expect("own path");
    let status = std::process::Command::new(exe)
        .env(SIDE_ENV, side)
        .env(OUT_ENV, out_path)
        .status()
        .expect("spawn side child");
    assert!(status.success(), "{side} child failed");
    let text = std::fs::read_to_string(out_path).expect("read side run");
    serde_json::from_str(&text).expect("side run parses")
}

fn main() {
    if let Ok(side) = std::env::var(SIDE_ENV) {
        let out = std::env::var(OUT_ENV).expect("child needs an output path");
        run_side(&side, &out);
        return;
    }

    let scale = Scale::from_env();
    let reps: usize = std::env::var("SAINT_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let apps = scale.realworld_config().apps;
    let jobs = 4;
    eprintln!(
        "bench_summary: scale={} apps={apps} — timing each side in {reps} fresh processes",
        scale.label()
    );

    let out_dir = std::env::temp_dir();
    let mut best: Option<(SideRun, SideRun)> = None;
    for rep in 0..reps {
        let seq_path = out_dir.join(format!("saint_bench_seq_{rep}.json"));
        let bat_path = out_dir.join(format!("saint_bench_bat_{rep}.json"));
        let seq = spawn_side("sequential", seq_path.to_str().expect("utf-8 path"));
        let bat = spawn_side("batch", bat_path.to_str().expect("utf-8 path"));
        eprintln!(
            "  rep {rep}: sequential {:.2}s | batch {:.2}s",
            seq.wall_secs, bat.wall_secs
        );
        assert_eq!(
            seq.reports_fingerprint, bat.reports_fingerprint,
            "batch reports diverged from sequential — engine parity is broken"
        );
        assert_eq!(seq.mismatches, bat.mismatches);
        let _ = std::fs::remove_file(seq_path);
        let _ = std::fs::remove_file(bat_path);
        best = Some(match best {
            None => (seq, bat),
            Some((bs, bb)) => (
                if seq.wall_secs < bs.wall_secs { seq } else { bs },
                if bat.wall_secs < bb.wall_secs { bat } else { bb },
            ),
        });
    }
    let (seq, bat) = best.expect("at least one rep");

    let summary = Summary {
        scale: scale.label().to_string(),
        apps,
        jobs,
        reps,
        sequential_secs: seq.wall_secs,
        batch_secs: bat.wall_secs,
        sequential_apps_per_sec: apps as f64 / seq.wall_secs.max(f64::EPSILON),
        batch_apps_per_sec: apps as f64 / bat.wall_secs.max(f64::EPSILON),
        speedup: seq.wall_secs / bat.wall_secs.max(f64::EPSILON),
        peak_loaded_bytes: bat.peak_loaded_bytes,
        cache_hits: bat.cache_hits,
        cache_misses: bat.cache_misses,
        cache_entries: bat.cache_entries,
        artifact_cache_hits: bat.artifact_cache_hits,
        artifact_cache_misses: bat.artifact_cache_misses,
        scan_cache_hits: bat.scan_cache_hits,
        scan_cache_misses: bat.scan_cache_misses,
        mismatches: bat.mismatches,
        reports_identical: true,
    };

    println!(
        "\nBatch scan engine summary ({} apps, {} scale, best of {} cold runs/side)\n",
        summary.apps, summary.scale, summary.reps
    );
    println!(
        "sequential: {:>8.2}s  {:>8.1} apps/s",
        summary.sequential_secs, summary.sequential_apps_per_sec
    );
    println!(
        "jobs={}:     {:>8.2}s  {:>8.1} apps/s  ({:.2}x)",
        summary.jobs, summary.batch_secs, summary.batch_apps_per_sec, summary.speedup
    );
    println!(
        "peak per-app loaded bytes: {} | class cache: {} hits / {} misses ({} entries)",
        summary.peak_loaded_bytes,
        summary.cache_hits,
        summary.cache_misses,
        summary.cache_entries
    );
    println!(
        "artifact cache: {} hits / {} misses | subtree scan cache: {} hits / {} misses",
        summary.artifact_cache_hits,
        summary.artifact_cache_misses,
        summary.scan_cache_hits,
        summary.scan_cache_misses
    );
    println!(
        "{} mismatches; per-app reports identical to sequential: {}",
        summary.mismatches, summary.reports_identical
    );

    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    std::fs::write("BENCH_scan.json", json).expect("write BENCH_scan.json");
    eprintln!("json: BENCH_scan.json");
}
