//! **bench_summary** — headline numbers for the batch scan engine:
//! sequential `SaintDroid::run` (one plain tool, one app at a time)
//! vs `ScanEngine::scan_batch` with 4 workers and the batch-wide
//! caches, over the real-world corpus; plus the **large-app** pair —
//! few apps, several times the KLOC — where the same plain sequential
//! shape is measured against the intra-app-parallel pipeline
//! (shared-CLVM exploration, concurrent detectors, parallel
//! framework-subtree scans, batch caches) with a per-phase breakdown
//! (explore vs detect), so single-app latency is visible separately
//! from batch throughput; plus the **service regime** — the corpus
//! pushed through a warm `saint-service` event-loop daemon by a
//! ladder of concurrent pipelined connections (1 / 64 / 1000 clients,
//! id-tagged scans in flight, newline-delimited JSON), emitting
//! apps/s plus p50/p99 wire latency per rung and measured against the
//! in-process batch engine's throughput — the online-vetting shape,
//! where the daemon must hold batch-engine throughput under
//! store-scale ingest; plus the
//! **frozen regime** — the same batch read off pre-compiled, mmap'd
//! `.sfrz` images (framework artifacts attached instead of mined, the
//! corpus decoded in place) against the parsed batch, and the
//! parsed-vs-frozen time-to-first-scan pair a daemon pays at startup;
//! plus the **campaign regime** — the corpus sharded across local
//! fleets of 1 / 2 / 4 paced daemons by the campaign driver
//! (consistent hashing, checkpointed journal), emitting apps/s per
//! fleet size with per-daemon attribution and a fingerprint-parity
//! gate against the batch engine at every size.
//!
//! Each side is timed in a **fresh child process** (best of
//! `SAINT_REPS`, default 3, alternating sides) so neither side inherits
//! the other's heap: measuring both in one process lets allocator state
//! and retained memory from whichever side ran first distort the
//! second, burying the real difference under noise. Children also emit
//! a fingerprint over every report; the parent verifies the two sides
//! produced identical per-app reports (mismatches *and* metered bytes)
//! before writing `BENCH_scan.json` to the working directory.
//!
//! ```text
//! cargo run --release -p saint-bench --bin bench_summary
//! SAINT_SCALE=small SAINT_REPS=5 cargo run --release -p saint-bench --bin bench_summary
//! ```

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use saint_analysis::{ArtifactCache, ShardedClassCache};
use saint_bench::{framework_at, Scale};
use saint_corpus::RealWorldCorpus;
use saint_ir::Apk;
use saintdroid::amd::invocation::DeepScanCache;
use saintdroid::engine::default_jobs;
use saintdroid::{Report, SaintDroid, ScanEngine};
use serde::Serialize;

const SIDE_ENV: &str = "SAINT_BENCH_SIDE";
const OUT_ENV: &str = "SAINT_BENCH_OUT";
/// Directory of pre-encoded `.sapk` files for the service regime: the
/// client child submits them over the protocol, so corpus generation
/// is never inside a timed region.
const PKG_DIR_ENV: &str = "SAINT_BENCH_PKG_DIR";
/// How many concurrent pipelined clients a `service-clients` child
/// drives against its daemon.
const CLIENTS_ENV: &str = "SAINT_BENCH_CLIENTS";
/// Pre-compiled frozen framework image (`.sfrz`) for the frozen-regime
/// children: the parent compiles it once so no child pays freezing
/// inside its timed region — children only attach.
const FROZEN_FW_ENV: &str = "SAINT_BENCH_FROZEN_FW";
/// Pre-compiled frozen corpus image for the frozen-regime children.
const FROZEN_CORPUS_ENV: &str = "SAINT_BENCH_FROZEN_CORPUS";
/// The concurrent-clients ladder of the service regime: one pipelined
/// connection, a rackful, and store-scale ingest.
const SERVICE_CLIENT_COUNTS: [usize; 3] = [1, 64, 1000];
/// Per-client pipeline depth (clamped to the client's share of the
/// scans) for the service regime.
const SERVICE_WINDOW: usize = 32;
/// Daemon queue depth for the service regime: deep enough that a
/// thousand single-scan pipelines queue instead of parking.
const SERVICE_QUEUE_DEPTH: usize = 1024;
/// The campaign regime's fleet-size ladder.
const CAMPAIGN_FLEET_SIZES: [usize; 3] = [1, 2, 4];
/// Artificial per-scan service time for every campaign daemon
/// (`jobs=1` each): capacity emulation. A daemon's throughput is then
/// `1 / (pace + real scan cost)`, so adding daemons scales the fleet
/// the way adding *machines* would, even when the measuring host has
/// fewer cores than daemons — what the campaign driver distributes is
/// service capacity, not CPU. The real per-scan cost stays in the
/// denominator, so the numbers remain honest about the host
/// (`host_cores` is recorded alongside).
const CAMPAIGN_PACE_MS: u64 = 25;
/// Share of the corpus that ships an update in the incremental
/// regime's churn wave (5% — typical daily app-update traffic).
const INCREMENTAL_WAVE_PCT: f64 = 0.05;
/// Share of each updated app's classes the wave mutates.
const INCREMENTAL_CHURN: f64 = 0.10;

#[derive(Serialize)]
struct Summary {
    scale: String,
    apps: usize,
    jobs: usize,
    reps: usize,
    sequential_secs: f64,
    batch_secs: f64,
    sequential_apps_per_sec: f64,
    batch_apps_per_sec: f64,
    speedup: f64,
    peak_loaded_bytes: usize,
    cache_hits: u64,
    cache_misses: u64,
    cache_entries: usize,
    artifact_cache_hits: u64,
    artifact_cache_misses: u64,
    scan_cache_hits: u64,
    scan_cache_misses: u64,
    mismatches: usize,
    reports_identical: bool,
    metrics: MetricsOverheadSummary,
    large_app: LargeAppSummary,
    service: ServiceSummary,
    frozen: FrozenSummary,
    campaign: CampaignSummary,
    incremental: IncrementalSummary,
}

/// The incremental regime: the whole corpus rescanned after an
/// app-update wave — [`INCREMENTAL_WAVE_PCT`] of the apps ship a new
/// version with [`INCREMENTAL_CHURN`] of their classes mutated
/// (analysis-neutral, but content-hash-changing) — through the
/// `saint-delta` artifact store, against a plain full rescan of the
/// same updated corpus. The store was populated by the previous scan
/// of the corpus (outside the timed region — every store already paid
/// it), so unchanged apps ride the whole-app fast path and updated
/// apps re-analyze only their changed class groups. The fingerprint
/// gate holds the tentpole guarantee: both rescans must produce
/// byte-identical reports.
#[derive(Serialize)]
struct IncrementalSummary {
    apps: usize,
    /// Apps that shipped an update in the wave.
    updated_apps: usize,
    /// Share of each updated app's classes mutated.
    churn_pct: f64,
    full_rescan_secs: f64,
    incremental_rescan_secs: f64,
    full_apps_per_sec: f64,
    incremental_apps_per_sec: f64,
    /// Full-rescan wall over incremental wall (acceptance bound: >= 3x
    /// at the medium 400-app scale).
    speedup: f64,
    delta_hits: u64,
    delta_misses: u64,
    classes_reanalyzed: u64,
    /// `delta_hits / classes_seen` across the incremental rescan.
    hit_rate: f64,
    /// Rescans served entirely by the whole-app fast path.
    app_fast_path: usize,
    mismatches: usize,
    reports_identical: bool,
}

/// The campaign regime: the whole corpus pushed through
/// `saint_campaign::run_campaign` — consistent-hash sharding, one
/// pipelined connection per daemon, checkpointed journal — against
/// local fleets of 1 / 2 / 4 paced daemons ([`CAMPAIGN_PACE_MS`],
/// `jobs=1` each, so daemon *capacity* is the bottleneck and fleet
/// scaling is visible on any host). Every run's per-app results are
/// fingerprint-checked against the in-process batch engine's reports,
/// and the result-set fingerprint must be identical at every fleet
/// size — distribution must change nothing about the answer.
#[derive(Serialize)]
struct CampaignSummary {
    apps: usize,
    jobs_per_daemon: usize,
    window: usize,
    chunk: usize,
    /// Artificial per-scan service time added by every daemon.
    pace_ms: u64,
    /// Cores on the measuring host — context for reading the paced
    /// fleet numbers (4 daemons on 1 core share that core's real scan
    /// cost).
    host_cores: usize,
    reps: usize,
    mismatches: usize,
    reports_identical: bool,
    /// Fleet-2 throughput over fleet-1 (the acceptance bound: >= 1.5x).
    speedup_fleet2_over_fleet1: f64,
    fleets: Vec<CampaignFleetRegime>,
}

/// One rung of the campaign fleet ladder (best of `reps` runs).
#[derive(Serialize)]
struct CampaignFleetRegime {
    fleet: usize,
    secs: f64,
    apps_per_sec: f64,
    resubmissions: u64,
    daemon_failovers: u64,
    checkpoint_flushes: u64,
    /// Per-daemon completion attribution from the winning run.
    per_daemon: Vec<saint_campaign::DaemonStats>,
    /// FNV fingerprint of the campaign's result set (id-ordered per-app
    /// report fingerprints) — identical across every fleet size.
    report_fingerprint: String,
}

/// The frozen-artifact regime: the batch engine reading the mined
/// framework artifacts and the SAPK corpus off pre-compiled `.sfrz`
/// images (mmap'd, decoded in place) against the metrics-on parsed
/// batch; plus the time-to-first-scan pair — everything a fresh daemon
/// pays between exec and its first report, framework mined from spec on
/// one side vs attached from the image on the other. The clvm_load
/// shares come from the registry on both sides: the frozen side's
/// prewarm preloads every framework class from the image, so warm-path
/// materialization should all but vanish.
#[derive(Serialize)]
struct FrozenSummary {
    apps: usize,
    jobs: usize,
    framework_image_bytes: u64,
    corpus_image_bytes: u64,
    parsed_batch_secs: f64,
    frozen_batch_secs: f64,
    parsed_clvm_share_pct: f64,
    frozen_clvm_share_pct: f64,
    ttfs_parsed_secs: f64,
    ttfs_parsed_startup_secs: f64,
    ttfs_frozen_secs: f64,
    ttfs_frozen_startup_secs: f64,
    ttfs_speedup: f64,
    mismatches: usize,
    reports_identical: bool,
}

/// The observability regime: the same batch scan with the metrics
/// registry attached, against the plain batch side. `overhead_pct` is
/// the wall-clock cost of recording (acceptance bound: <= 2%); the
/// phase splits and hit rates are what the registry itself measured —
/// the paper's Tables III–IV per-phase story from live counters
/// instead of external stopwatches.
#[derive(Serialize)]
struct MetricsOverheadSummary {
    batch_secs: f64,
    batch_metrics_secs: f64,
    overhead_pct: f64,
    scan_spans: u64,
    clvm_load_secs: f64,
    explore_secs: f64,
    detect_secs: f64,
    scan_total_secs: f64,
    class_cache_hit_rate: f64,
    artifact_cache_hit_rate: f64,
    scan_cache_hit_rate: f64,
    reports_identical: bool,
}

/// The service regime: the warm event-loop daemon under a ladder of
/// concurrent pipelined clients (1 / 64 / 1000 connections), measured
/// against the in-process batch engine's throughput over the same
/// corpus. One warm daemon per client count (startup — framework
/// mining, cache prewarm, bind — is outside every timed region), then
/// [`service_reps`] measured passes with the best wall kept, frozen-
/// regime style. Every pass records each request's wire latency, so
/// p50/p99 come from the winning pass, and every pass's reports are
/// fingerprint-checked against the batch engine's.
#[derive(Serialize)]
struct ServiceSummary {
    apps: usize,
    jobs: usize,
    window: usize,
    queue_depth: usize,
    reps: usize,
    batch_apps_per_sec: f64,
    regimes: Vec<ClientsRegime>,
}

/// One rung of the concurrent-clients ladder.
#[derive(Serialize)]
struct ClientsRegime {
    clients: usize,
    scans: usize,
    warm_startup_secs: f64,
    secs: f64,
    apps_per_sec: f64,
    /// Warm pipelined throughput as a share of the in-process batch
    /// engine's (the tentpole acceptance bound: >= 90% at 1k clients).
    pct_of_batch: f64,
    p50_ms: f64,
    p99_ms: f64,
    mismatches: usize,
    reports_identical: bool,
}

/// What one `service-clients` child (one daemon, one client count,
/// best of [`service_reps`] passes) reports back.
#[derive(Serialize, serde::Deserialize)]
struct ClientsRun {
    clients: usize,
    scans: usize,
    startup_secs: f64,
    wall_secs: f64,
    p50_ms: f64,
    p99_ms: f64,
    /// FNV-1a fingerprint over the first full corpus cycle of reports,
    /// in corpus order — directly comparable to the batch side's
    /// `reports_fingerprint` at any client count.
    corpus_fingerprint: String,
    mismatches: usize,
}

/// The large-app pair: few apps, several times the KLOC, so the run is
/// in the single-app-latency regime where batch-level app slots cannot
/// help and intra-app parallelism is the only lever. Per-phase seconds
/// separate Algorithm-1 exploration from AMD detection.
#[derive(Serialize)]
struct LargeAppSummary {
    apps: usize,
    app_jobs: usize,
    sequential_secs: f64,
    parallel_secs: f64,
    speedup: f64,
    sequential_explore_secs: f64,
    sequential_detect_secs: f64,
    parallel_explore_secs: f64,
    parallel_detect_secs: f64,
    mismatches: usize,
    reports_identical: bool,
}

/// What one timed child run reports back to the orchestrator.
#[derive(Serialize, serde::Deserialize)]
struct SideRun {
    wall_secs: f64,
    peak_loaded_bytes: usize,
    cache_hits: u64,
    cache_misses: u64,
    cache_entries: usize,
    artifact_cache_hits: u64,
    artifact_cache_misses: u64,
    scan_cache_hits: u64,
    scan_cache_misses: u64,
    /// FNV-1a fingerprint over one canonical JSON line per app (the
    /// mismatches plus the metered loading footprint). FNV is computed
    /// by hand because it is stable across processes, unlike the
    /// randomly-keyed std hasher; comparing the two sides' fingerprints
    /// is the report-parity check.
    reports_fingerprint: String,
    mismatches: usize,
    /// Seconds inside Algorithm-1 exploration (CLVM materialization
    /// included); only the large-app sides fill this in.
    explore_secs: f64,
    /// Seconds inside the three AMD detectors; large-app sides only.
    detect_secs: f64,
    /// One-off cost paid before the timed region; only the
    /// `service-warm` side fills this in (framework mining, cache
    /// prewarm, daemon startup).
    startup_secs: f64,
    /// Registry-measured seconds in CLVM class materialization; only
    /// the `batch-metrics` side (observability on) fills these in.
    metrics_clvm_secs: f64,
    /// Registry-measured seconds in Algorithm-1 exploration.
    metrics_explore_secs: f64,
    /// Registry-measured seconds across the three AMD detectors.
    metrics_detect_secs: f64,
    /// Registry-measured seconds across whole per-app scans.
    metrics_scan_secs: f64,
    /// Number of `scan_total` spans (must equal the app count).
    metrics_scan_spans: u64,
    /// Class-cache hit rate from the unified snapshot.
    class_hit_rate: f64,
    /// Artifact-cache hit rate from the unified snapshot.
    artifact_hit_rate: f64,
    /// Deep-scan-cache hit rate from the unified snapshot.
    scan_hit_rate: f64,
}

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn corpus_apks(scale: Scale) -> Vec<Apk> {
    let corpus = RealWorldCorpus::new(scale.realworld_config());
    (0..corpus.len()).map(|i| corpus.get(i).apk).collect()
}

fn digest(report: &Report) -> String {
    let mismatches = serde_json::to_string(&report.mismatches).expect("mismatches serialize");
    format!(
        "{}|{}|{}|{}",
        report.package,
        mismatches,
        report.meter.total_bytes(),
        report.meter.classes_loaded
    )
}

/// Intra-app workers for the `large-par` side: the whole hardware
/// budget, exactly what the two-level scheduler grants in the latency
/// regime (one oversized app at a time, so every core goes intra-app).
/// On a single-core host that is 1 — parallel exploration and detector
/// threads would only timeslice one CPU, so the pipeline degrades to
/// its sequential paths and the measured gain is the shared-cache work
/// reduction; report parity at higher counts is enforced by the
/// `intra_app_parity` suite. Overridable via `SAINT_LARGE_JOBS`.
fn large_app_jobs() -> usize {
    std::env::var("SAINT_LARGE_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(default_jobs)
}

fn fingerprint_reports(reports: &[Report]) -> String {
    let mut hash = 0xcbf2_9ce4_8422_2325;
    for report in reports {
        hash = fnv1a(digest(report).as_bytes(), hash);
        hash = fnv1a(b"\n", hash);
    }
    format!("{hash:016x}")
}

/// Child mode: run one side cold and write a [`SideRun`] JSON.
fn run_side(side: &str, out_path: &str) {
    let scale = Scale::from_env();
    if side == "service-clients" {
        run_service_clients(scale, out_path);
        return;
    }
    let run = match side {
        "sequential" | "batch" | "batch-metrics" => run_batch_side(side, scale),
        "large-seq" | "large-par" => run_large_side(side, scale),
        "frozen-batch" => run_frozen_batch(scale),
        "ttfs-parsed" | "ttfs-frozen" => run_ttfs_side(side, scale),
        other => panic!("unknown side {other}"),
    };
    let json = serde_json::to_string(&run).expect("side run serializes");
    std::fs::File::create(out_path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write side run");
}

fn run_batch_side(side: &str, scale: Scale) -> SideRun {
    let fw = framework_at(scale);
    let apks = corpus_apks(scale);
    let engine = match side {
        // The pre-engine shape: one plain tool, one app at a time,
        // strictly per-app materialization and analysis.
        "sequential" => ScanEngine::from_tool(SaintDroid::new(fw)).jobs(1),
        // The batch engine: worker threads (clamped to the core count)
        // plus the three batch-wide caches.
        "batch" => ScanEngine::new(fw).jobs(4),
        // The batch engine with the observability layer on: the delta
        // against `batch` is the measured metrics overhead.
        "batch-metrics" => ScanEngine::new(fw).jobs(4).ensure_metrics(),
        other => panic!("unknown batch side {other}"),
    };
    let start = Instant::now();
    let reports = engine.scan_batch(&apks);
    let wall_secs = start.elapsed().as_secs_f64();
    engine_side_run(&engine, &reports, wall_secs)
}

/// Folds an engine's cache stats, registry phases (when the metrics-on
/// side has one) and the report fingerprint into a [`SideRun`] — the
/// shared tail of the `batch*` and `frozen-batch` sides.
fn engine_side_run(engine: &ScanEngine, reports: &[Report], wall_secs: f64) -> SideRun {
    let zero = saint_analysis::CacheStats::default();
    let class = engine.cache_stats().unwrap_or(zero);
    let artifacts = engine.artifact_cache_stats().unwrap_or(zero);
    let scans = engine.scan_cache_stats().unwrap_or(zero);

    // Phase splits and hit rates, filled by the metrics-on sides only.
    let mut run = SideRun {
        wall_secs,
        peak_loaded_bytes: reports
            .iter()
            .map(|r| r.meter.total_bytes())
            .max()
            .unwrap_or(0),
        cache_hits: class.hits,
        cache_misses: class.misses,
        cache_entries: class.entries,
        artifact_cache_hits: artifacts.hits,
        artifact_cache_misses: artifacts.misses,
        scan_cache_hits: scans.hits,
        scan_cache_misses: scans.misses,
        reports_fingerprint: fingerprint_reports(reports),
        mismatches: reports.iter().map(Report::total).sum(),
        explore_secs: 0.0,
        detect_secs: 0.0,
        startup_secs: 0.0,
        metrics_clvm_secs: 0.0,
        metrics_explore_secs: 0.0,
        metrics_detect_secs: 0.0,
        metrics_scan_secs: 0.0,
        metrics_scan_spans: 0,
        class_hit_rate: 0.0,
        artifact_hit_rate: 0.0,
        scan_hit_rate: 0.0,
    };
    if engine.metrics().is_some() {
        let snap = engine.metrics_snapshot();
        let phase_secs = |name: &str| snap.registry.phase(name).map_or(0.0, |p| p.total_secs());
        run.metrics_clvm_secs = phase_secs("clvm_load");
        run.metrics_explore_secs = phase_secs("explore");
        run.metrics_detect_secs = phase_secs("detect_invocation")
            + phase_secs("detect_callback")
            + phase_secs("detect_permission");
        run.metrics_scan_secs = phase_secs("scan_total");
        run.metrics_scan_spans = snap.registry.phase("scan_total").map_or(0, |p| p.count);
        run.class_hit_rate = snap.class_cache.map_or(0.0, |c| c.hit_rate());
        run.artifact_hit_rate = snap.artifact_cache.map_or(0.0, |c| c.hit_rate());
        run.scan_hit_rate = snap.deep_scan_cache.map_or(0.0, |c| c.hit_rate());
    }
    run
}

/// The frozen warm-batch side: same worker count and registry as
/// `batch-metrics`, but the framework artifacts are attached from the
/// pre-compiled image (no mining — the engine gets an un-mined
/// framework on purpose), every framework class is preloaded off the
/// image before the clock starts, and the corpus is decoded package by
/// package from the mmap'd corpus image inside the workers.
fn run_frozen_batch(scale: Scale) -> SideRun {
    let fw_img = std::env::var(FROZEN_FW_ENV).expect("frozen side needs the framework image");
    let corpus_img = std::env::var(FROZEN_CORPUS_ENV).expect("frozen side needs the corpus image");
    let corpus = saint_frozen::FrozenCorpus::open(std::path::Path::new(&corpus_img))
        .expect("open frozen corpus image");
    let fw = Arc::new(saint_adf::AndroidFramework::with_scale(
        &scale.synth_config(),
    ));
    let engine = ScanEngine::new(fw).jobs(4).ensure_metrics();
    engine
        .attach_frozen(std::path::Path::new(&fw_img))
        .expect("attach frozen framework image");
    engine.prewarm();
    let start = Instant::now();
    let reports = engine.scan_frozen_batch(&corpus);
    let wall_secs = start.elapsed().as_secs_f64();
    engine_side_run(&engine, &reports, wall_secs)
}

/// Time-to-first-scan children: everything a fresh daemon pays between
/// exec and its first report — framework artifacts (mined from the spec
/// on the parsed side, attached from the image on the frozen side),
/// cache prewarm, then one scan. The corpus image is opened before the
/// clock starts on both sides (it is the shared input, not the
/// contested cost); `startup_secs` isolates the artifact step from the
/// scan itself.
fn run_ttfs_side(side: &str, scale: Scale) -> SideRun {
    let corpus_img = std::env::var(FROZEN_CORPUS_ENV).expect("ttfs side needs the corpus image");
    let corpus = saint_frozen::FrozenCorpus::open(std::path::Path::new(&corpus_img))
        .expect("open frozen corpus image");
    let start = Instant::now();
    let engine = if side == "ttfs-frozen" {
        // The daemon warm boot: the image — verified end to end when it
        // was compiled — *is* the framework. No spec synthesis, no
        // mining, no bulk preload; classes decode lazily out of the
        // mapping as the first scan touches them. The cross-side report
        // fingerprint assert in `run_frozen_regime` is the proof this
        // boot serves the same results as the parse path.
        let fw_img = std::env::var(FROZEN_FW_ENV).expect("ttfs-frozen needs the framework image");
        let fw = Arc::new(saint_adf::AndroidFramework::from_spec(
            saint_adf::FrameworkSpec::new(),
        ));
        let engine = ScanEngine::new(fw).jobs(1);
        engine
            .attach_frozen_trusted(std::path::Path::new(&fw_img))
            .expect("attach frozen framework image");
        engine
    } else {
        let fw = Arc::new(saint_adf::AndroidFramework::with_scale(
            &scale.synth_config(),
        ));
        let engine = ScanEngine::new(fw).jobs(1);
        engine.prewarm();
        engine
    };
    let startup_secs = start.elapsed().as_secs_f64();
    let apk = corpus.decode(0).expect("decode first package");
    let reports = vec![engine.scan_one(&apk)];
    let wall_secs = start.elapsed().as_secs_f64();
    let mut run = engine_side_run(&engine, &reports, wall_secs);
    run.startup_secs = startup_secs;
    run
}

/// The large-app sides analyze the few oversized apps one after the
/// other (there are not enough of them to fill app slots), so the two
/// shapes differ only in what happens *inside* one app: `large-seq`
/// is the plain single-threaded tool, `large-par` the intra-app
/// pipeline — shared-CLVM parallel exploration, concurrent detectors,
/// parallel framework-subtree scans — over the batch-wide caches.
fn run_large_side(side: &str, scale: Scale) -> SideRun {
    let cfg = scale.large_app_config();
    // The analyzed framework must match the corpus generator's synth
    // expansion (the large-app regime uses a tighter one — see
    // [`Scale::large_app_config`]); pre-mine it outside the timed
    // region like `framework_at` does.
    let fw = Arc::new(saint_adf::AndroidFramework::with_scale(&cfg.synth));
    let _ = fw.database();
    let _ = fw.permission_map();
    let corpus = RealWorldCorpus::new(cfg);
    let apks: Vec<Apk> = (0..corpus.len()).map(|i| corpus.get(i).apk).collect();
    let class_cache = Arc::new(ShardedClassCache::new());
    let artifact_cache = Arc::new(ArtifactCache::new());
    let scan_cache = Arc::new(DeepScanCache::new());
    let (tool, app_jobs) = match side {
        "large-seq" => (SaintDroid::new(fw), 1),
        "large-par" => (
            SaintDroid::new(fw)
                .with_shared_cache(Arc::clone(&class_cache))
                .with_shared_artifact_cache(Arc::clone(&artifact_cache))
                .with_shared_scan_cache(Arc::clone(&scan_cache)),
            large_app_jobs(),
        ),
        other => panic!("unknown large side {other}"),
    };

    let start = Instant::now();
    let mut explore_secs = 0.0;
    let mut detect_secs = 0.0;
    let reports: Vec<Report> = apks
        .iter()
        .map(|apk| {
            let (report, explore, detect) = tool.run_phased_with(apk, app_jobs);
            explore_secs += explore.as_secs_f64();
            detect_secs += detect.as_secs_f64();
            report
        })
        .collect();
    let wall_secs = start.elapsed().as_secs_f64();

    let class = class_cache.stats();
    let artifacts = artifact_cache.stats();
    let scans = scan_cache.stats();
    SideRun {
        wall_secs,
        peak_loaded_bytes: reports
            .iter()
            .map(|r| r.meter.total_bytes())
            .max()
            .unwrap_or(0),
        cache_hits: class.hits,
        cache_misses: class.misses,
        cache_entries: class.entries,
        artifact_cache_hits: artifacts.hits,
        artifact_cache_misses: artifacts.misses,
        scan_cache_hits: scans.hits,
        scan_cache_misses: scans.misses,
        reports_fingerprint: fingerprint_reports(&reports),
        mismatches: reports.iter().map(Report::total).sum(),
        explore_secs,
        detect_secs,
        startup_secs: 0.0,
        metrics_clvm_secs: 0.0,
        metrics_explore_secs: 0.0,
        metrics_detect_secs: 0.0,
        metrics_scan_secs: 0.0,
        metrics_scan_spans: 0,
        class_hit_rate: 0.0,
        artifact_hit_rate: 0.0,
        scan_hit_rate: 0.0,
    }
}

/// Best-of count for the service regime's measured passes, frozen-
/// regime style; `SAINT_SERVICE_REPS` overrides the default 10.
fn service_reps() -> usize {
    std::env::var("SAINT_SERVICE_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
        .max(1)
}

/// One `service-clients` child: boot a warm daemon (startup outside
/// every timed region), then drive `SAINT_BENCH_CLIENTS` concurrent
/// pipelined connections through it for [`service_reps`] measured
/// passes, keeping the best. With more clients than packages the
/// corpus cycles so every client scans at least once — the first full
/// corpus cycle (global indices `0..apps`, which round-robin
/// assignment keeps in corpus order) is fingerprinted for the parity
/// check, and every repeat is asserted byte-identical to its first
/// incarnation in-process.
fn run_service_clients(scale: Scale, out_path: &str) {
    let clients: usize = std::env::var(CLIENTS_ENV)
        .expect("service child needs a client count")
        .parse()
        .expect("client count parses");
    let pkg_dir = std::env::var(PKG_DIR_ENV).expect("service child needs the package directory");
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(&pkg_dir)
        .expect("read package dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    files.sort();
    let sapks: Vec<Vec<u8>> = files
        .iter()
        .map(|p| std::fs::read(p).expect("read sapk"))
        .collect();

    let startup = Instant::now();
    let engine = ScanEngine::new(framework_at(scale));
    engine.prewarm();
    let cfg = saint_service::ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        jobs: default_jobs(),
        queue_depth: SERVICE_QUEUE_DEPTH,
        ..Default::default()
    };
    let handle = saint_service::start(engine, &cfg).expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    let startup_secs = startup.elapsed().as_secs_f64();

    let mut best: Option<ClientsRun> = None;
    for _ in 0..service_reps() {
        let run = one_pipelined_pass(&addr, &sapks, clients, startup_secs);
        best = Some(match best {
            None => run,
            Some(b) => {
                if run.wall_secs < b.wall_secs {
                    run
                } else {
                    b
                }
            }
        });
    }
    let best = best.expect("at least one pass");

    let mut admin = saint_service::Client::connect(&addr).expect("connect admin");
    admin.shutdown().expect("shutdown ack");
    handle.wait();

    let json = serde_json::to_string(&best).expect("clients run serializes");
    std::fs::write(out_path, json).expect("write clients run");
}

/// One measured pass of the concurrent-clients regime: every client
/// owns the global scan indices congruent to its number, pipelines
/// them on one connection ([`SERVICE_WINDOW`] deep, clamped to its
/// share), and records each request's wire latency.
fn one_pipelined_pass(
    addr: &str,
    sapks: &[Vec<u8>],
    clients: usize,
    startup_secs: f64,
) -> ClientsRun {
    let apps = sapks.len();
    let total = apps.max(clients);
    let slots: Vec<std::sync::Mutex<Option<(String, usize)>>> =
        (0..total).map(|_| std::sync::Mutex::new(None)).collect();
    let latencies_ms = std::sync::Mutex::new(Vec::with_capacity(total));

    let start = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let slots = &slots;
            let latencies_ms = &latencies_ms;
            s.spawn(move || {
                let mine: Vec<usize> = (c..total).step_by(clients).collect();
                let window = SERVICE_WINDOW.min(mine.len());
                let payloads: Vec<&[u8]> =
                    mine.iter().map(|&i| sapks[i % apps].as_slice()).collect();
                let mut client = saint_service::PipelinedClient::connect(addr, window)
                    .expect("connect pipelined client");
                let (responses, latencies) = client
                    .scan_all_timed(&payloads, None)
                    .expect("warm daemon serves every submission");
                let mut ms = Vec::with_capacity(mine.len());
                for (k, &i) in mine.iter().enumerate() {
                    let report = &responses[k].report;
                    *slots[i].lock().expect("slot lock") = Some((digest(report), report.total()));
                    ms.push(latencies[k].as_secs_f64() * 1000.0);
                }
                latencies_ms.lock().expect("latency lock").extend(ms);
            });
        }
    });
    let wall_secs = start.elapsed().as_secs_f64();

    let digests: Vec<(String, usize)> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every slot filled")
        })
        .collect();
    // Repeats beyond the first corpus cycle must be byte-identical to
    // their first incarnation — the warm daemon serves the same report
    // no matter how often a package comes around.
    for i in apps..total {
        assert_eq!(
            digests[i].0,
            digests[i % apps].0,
            "repeat scan of package {} diverged",
            i % apps
        );
    }
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    let mut mismatches = 0usize;
    for (d, m) in &digests[..apps] {
        hash = fnv1a(d.as_bytes(), hash);
        hash = fnv1a(b"\n", hash);
        mismatches += m;
    }

    let mut ms = latencies_ms.into_inner().expect("latency lock");
    ms.sort_by(f64::total_cmp);
    let percentile = |p: f64| ms[((ms.len() - 1) as f64 * p).round() as usize];
    ClientsRun {
        clients,
        scans: total,
        startup_secs,
        wall_secs,
        p50_ms: percentile(0.50),
        p99_ms: percentile(0.99),
        corpus_fingerprint: format!("{hash:016x}"),
        mismatches,
    }
}

/// Spawns this binary in child mode and reads its result.
fn spawn_side(side: &str, out_path: &str) -> SideRun {
    spawn_side_with(side, out_path, &[])
}

/// Like [`spawn_side`], with extra environment for the child (package
/// directory, input path).
fn spawn_side_with(side: &str, out_path: &str, extra_env: &[(&str, &str)]) -> SideRun {
    let exe = std::env::current_exe().expect("own path");
    let mut cmd = std::process::Command::new(exe);
    cmd.env(SIDE_ENV, side).env(OUT_ENV, out_path);
    for (key, value) in extra_env {
        cmd.env(key, value);
    }
    let status = cmd.status().expect("spawn side child");
    assert!(status.success(), "{side} child failed");
    let text = std::fs::read_to_string(out_path).expect("read side run");
    serde_json::from_str(&text).expect("side run parses")
}

/// Runs the service regime: the concurrent-clients ladder
/// ([`SERVICE_CLIENT_COUNTS`]) of pipelined connections against a warm
/// event-loop daemon, each rung a fresh child process keeping the best
/// of [`service_reps`] passes, with every rung's reports fingerprint-
/// checked against the in-process batch engine's (`bat`).
fn run_service_regime(scale: Scale, out_dir: &std::path::Path, bat: &SideRun) -> ServiceSummary {
    let apks = corpus_apks(scale);
    let pkg_dir = out_dir.join(format!("saint_bench_pkgs_{}", std::process::id()));
    std::fs::create_dir_all(&pkg_dir).expect("create package dir");
    for (i, apk) in apks.iter().enumerate() {
        let path = pkg_dir.join(format!("pkg_{i:05}.sapk"));
        std::fs::write(&path, saint_ir::codec::encode_apk(apk)).expect("write sapk");
    }
    let apps = apks.len();
    let reps = service_reps();
    let batch_apps_per_sec = apps as f64 / bat.wall_secs.max(f64::EPSILON);
    eprintln!(
        "bench_summary: service regime — {apps} apps, pipelined clients x{SERVICE_CLIENT_COUNTS:?}, best of {reps} passes"
    );

    let mut regimes = Vec::new();
    for clients in SERVICE_CLIENT_COUNTS {
        let path = out_dir.join(format!("saint_bench_service_{clients}.json"));
        let run: ClientsRun = {
            let exe = std::env::current_exe().expect("own path");
            let status = std::process::Command::new(exe)
                .env(SIDE_ENV, "service-clients")
                .env(OUT_ENV, &path)
                .env(PKG_DIR_ENV, &pkg_dir)
                .env(CLIENTS_ENV, clients.to_string())
                .status()
                .expect("spawn service child");
            assert!(status.success(), "service child ({clients} clients) failed");
            let text = std::fs::read_to_string(&path).expect("read clients run");
            serde_json::from_str(&text).expect("clients run parses")
        };
        let _ = std::fs::remove_file(&path);

        assert_eq!(
            run.corpus_fingerprint, bat.reports_fingerprint,
            "pipelined reports at {clients} clients diverged from the batch engine — protocol parity is broken"
        );
        assert_eq!(run.mismatches, bat.mismatches);
        let apps_per_sec = run.scans as f64 / run.wall_secs.max(f64::EPSILON);
        eprintln!(
            "  {clients} clients: {} scans in {:.2}s — {:.1} apps/s ({:.0}% of batch), p50 {:.1}ms / p99 {:.1}ms",
            run.scans,
            run.wall_secs,
            apps_per_sec,
            apps_per_sec / batch_apps_per_sec * 100.0,
            run.p50_ms,
            run.p99_ms
        );
        regimes.push(ClientsRegime {
            clients,
            scans: run.scans,
            warm_startup_secs: run.startup_secs,
            secs: run.wall_secs,
            apps_per_sec,
            pct_of_batch: apps_per_sec / batch_apps_per_sec * 100.0,
            p50_ms: run.p50_ms,
            p99_ms: run.p99_ms,
            mismatches: run.mismatches,
            reports_identical: true,
        });
    }
    let _ = std::fs::remove_dir_all(&pkg_dir);

    ServiceSummary {
        apps,
        jobs: default_jobs(),
        window: SERVICE_WINDOW,
        queue_depth: SERVICE_QUEUE_DEPTH,
        reps,
        batch_apps_per_sec,
        regimes,
    }
}

/// Runs the frozen-artifact regime: compiles the framework and corpus
/// images once (outside every timed region), then times the frozen
/// warm batch against the parsed metrics-on batch (`met`) and the
/// parsed-vs-frozen time-to-first-scan pair, best of `reps` fresh
/// children per side with the same report-parity gate as the other
/// regimes — the image path must change *nothing* about the reports.
fn run_frozen_regime(
    scale: Scale,
    reps: usize,
    out_dir: &std::path::Path,
    met: &SideRun,
) -> FrozenSummary {
    let fw = framework_at(scale);
    let fw_bytes = saint_frozen::freeze_framework(&fw);
    let apks = corpus_apks(scale);
    let corpus_bytes = saint_frozen::freeze_apks(&apks);
    let pid = std::process::id();
    let fw_img = out_dir.join(format!("saint_bench_fw_{pid}.sfrz"));
    let corpus_img = out_dir.join(format!("saint_bench_corpus_{pid}.sfrz"));
    std::fs::write(&fw_img, &fw_bytes).expect("write framework image");
    std::fs::write(&corpus_img, &corpus_bytes).expect("write corpus image");
    eprintln!(
        "bench_summary: frozen regime — framework image {} bytes, corpus image {} bytes",
        fw_bytes.len(),
        corpus_bytes.len()
    );
    let env: Vec<(&str, &str)> = vec![
        (FROZEN_FW_ENV, fw_img.to_str().expect("utf-8 path")),
        (FROZEN_CORPUS_ENV, corpus_img.to_str().expect("utf-8 path")),
    ];

    let mut frozen_best: Option<SideRun> = None;
    for rep in 0..reps {
        let path = out_dir.join(format!("saint_bench_frozen_{rep}.json"));
        let run = spawn_side_with("frozen-batch", path.to_str().expect("utf-8 path"), &env);
        let _ = std::fs::remove_file(&path);
        eprintln!(
            "  rep {rep}: frozen batch {:.2}s (clvm {:.3}s of {:.2}s scan time)",
            run.wall_secs, run.metrics_clvm_secs, run.metrics_scan_secs
        );
        assert_eq!(
            run.reports_fingerprint, met.reports_fingerprint,
            "frozen-image reports diverged from parsed — the image is not a faithful artifact"
        );
        assert_eq!(run.mismatches, met.mismatches);
        frozen_best = Some(match frozen_best {
            None => run,
            Some(best) => {
                if run.wall_secs < best.wall_secs {
                    run
                } else {
                    best
                }
            }
        });
    }
    let frozen = frozen_best.expect("at least one rep");

    let mut ttfs_best: Option<(SideRun, SideRun)> = None;
    for rep in 0..reps {
        let par_path = out_dir.join(format!("saint_bench_ttfsp_{rep}.json"));
        let fro_path = out_dir.join(format!("saint_bench_ttfsf_{rep}.json"));
        // Alternate the order for the same page-cache fairness reason
        // as batch/batch-metrics.
        let (tp, tf) = if rep % 2 == 0 {
            let tp = spawn_side_with("ttfs-parsed", par_path.to_str().expect("utf-8 path"), &env);
            let tf = spawn_side_with("ttfs-frozen", fro_path.to_str().expect("utf-8 path"), &env);
            (tp, tf)
        } else {
            let tf = spawn_side_with("ttfs-frozen", fro_path.to_str().expect("utf-8 path"), &env);
            let tp = spawn_side_with("ttfs-parsed", par_path.to_str().expect("utf-8 path"), &env);
            (tp, tf)
        };
        let _ = std::fs::remove_file(&par_path);
        let _ = std::fs::remove_file(&fro_path);
        eprintln!(
            "  rep {rep}: time to first scan — parsed {:.3}s (artifacts {:.3}s) | frozen {:.3}s (attach {:.3}s)",
            tp.wall_secs, tp.startup_secs, tf.wall_secs, tf.startup_secs
        );
        assert_eq!(
            tp.reports_fingerprint, tf.reports_fingerprint,
            "first-scan reports diverged between parsed and frozen startup"
        );
        ttfs_best = Some(match ttfs_best {
            None => (tp, tf),
            Some((bp, bf)) => (
                if tp.wall_secs < bp.wall_secs { tp } else { bp },
                if tf.wall_secs < bf.wall_secs { tf } else { bf },
            ),
        });
    }
    let (ttfs_parsed, ttfs_frozen) = ttfs_best.expect("at least one rep");
    let _ = std::fs::remove_file(&fw_img);
    let _ = std::fs::remove_file(&corpus_img);

    let share =
        |run: &SideRun| run.metrics_clvm_secs / run.metrics_scan_secs.max(f64::EPSILON) * 100.0;
    FrozenSummary {
        apps: apks.len(),
        jobs: 4,
        framework_image_bytes: fw_bytes.len() as u64,
        corpus_image_bytes: corpus_bytes.len() as u64,
        parsed_batch_secs: met.wall_secs,
        frozen_batch_secs: frozen.wall_secs,
        parsed_clvm_share_pct: share(met),
        frozen_clvm_share_pct: share(&frozen),
        ttfs_parsed_secs: ttfs_parsed.wall_secs,
        ttfs_parsed_startup_secs: ttfs_parsed.startup_secs,
        ttfs_frozen_secs: ttfs_frozen.wall_secs,
        ttfs_frozen_startup_secs: ttfs_frozen.startup_secs,
        ttfs_speedup: ttfs_parsed.wall_secs / ttfs_frozen.wall_secs.max(f64::EPSILON),
        mismatches: frozen.mismatches,
        reports_identical: true,
    }
}

/// Runs the campaign regime: the corpus encoded once as loose `.sapk`
/// files, registered into a [`saint_campaign::CorpusRegistry`], then
/// driven through local fleets of [`CAMPAIGN_FLEET_SIZES`] paced
/// daemons, best of [`service_reps`] runs per fleet size. Parity is
/// checked two ways: every journal record's per-app fingerprint
/// against the in-process batch engine's report for that package, and
/// the result-set fingerprint across fleet sizes (sharding must not
/// change the answer).
fn run_campaign_regime(scale: Scale, out_dir: &std::path::Path) -> CampaignSummary {
    use std::time::Duration;

    let reps = service_reps();
    let fw = framework_at(scale);
    let apks = corpus_apks(scale);

    // Ground truth: the in-process batch engine over the same corpus.
    let batch_reports = ScanEngine::new(Arc::clone(&fw)).jobs(4).scan_batch(&apks);
    let expected: std::collections::HashMap<&str, String> = batch_reports
        .iter()
        .map(|r| (r.package.as_str(), saint_campaign::report_fingerprint(r)))
        .collect();
    let expected_mismatches: usize = batch_reports.iter().map(Report::total).sum();

    let pid = std::process::id();
    let pkg_dir = out_dir.join(format!("saint_bench_campaign_pkgs_{pid}"));
    std::fs::create_dir_all(&pkg_dir).expect("create campaign package dir");
    for (i, apk) in apks.iter().enumerate() {
        let path = pkg_dir.join(format!("pkg_{i:05}.sapk"));
        std::fs::write(&path, saint_ir::codec::encode_apk(apk)).expect("write sapk");
    }
    let mut registry = saint_campaign::CorpusRegistry::new();
    registry
        .add_sapk_dir(&pkg_dir)
        .expect("register campaign corpus");
    assert_eq!(registry.len(), apks.len(), "corpus registered in full");

    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    eprintln!(
        "bench_summary: campaign regime — {} apps, fleet x{CAMPAIGN_FLEET_SIZES:?} paced daemons ({CAMPAIGN_PACE_MS}ms, jobs=1), best of {reps} runs",
        apks.len()
    );

    let cfg = saint_campaign::CampaignConfig::default();
    let mut fleets = Vec::new();
    let mut set_fingerprint: Option<String> = None;
    for count in CAMPAIGN_FLEET_SIZES {
        let fleet_cfg = saint_campaign::FleetConfig {
            jobs: 1,
            scan_pace: Some(Duration::from_millis(CAMPAIGN_PACE_MS)),
            ..saint_campaign::FleetConfig::default()
        };
        // Fleet startup (framework prewarm, binds) stays outside every
        // timed region, service-regime style.
        let mut fleet =
            saint_campaign::LocalFleet::start(&fw, count, &fleet_cfg).expect("start local fleet");
        let mut best: Option<saint_campaign::CampaignOutcome> = None;
        for rep in 0..reps {
            let journal = out_dir.join(format!("saint_bench_campaign_{pid}_{count}_{rep}.journal"));
            let outcome = saint_campaign::run_campaign(
                &registry,
                fleet.endpoints(),
                &journal,
                false,
                &cfg,
                None,
            )
            .expect("campaign completes against a healthy fleet");
            let _ = std::fs::remove_file(&journal);
            assert_eq!(outcome.completed, registry.len(), "every unit scanned");
            assert_eq!(
                outcome.runtime.daemon_failovers, 0,
                "healthy fleet lost a daemon"
            );
            for rec in outcome.store.records() {
                assert_eq!(
                    Some(&rec.fingerprint),
                    expected.get(rec.package.as_str()),
                    "campaign report for {} diverged from the batch engine",
                    rec.package
                );
            }
            match &set_fingerprint {
                None => set_fingerprint = Some(outcome.store.fingerprint()),
                Some(fp) => assert_eq!(
                    fp,
                    &outcome.store.fingerprint(),
                    "campaign result set diverged across fleet sizes"
                ),
            }
            best = Some(match best {
                Some(b) if b.runtime.wall_secs <= outcome.runtime.wall_secs => b,
                _ => outcome,
            });
        }
        fleet.shutdown();
        let outcome = best.expect("at least one run");
        assert_eq!(
            outcome.store.report(None).mismatches as usize,
            expected_mismatches,
            "campaign roll-up lost mismatches"
        );
        let per_daemon: Vec<String> = outcome
            .runtime
            .daemons
            .iter()
            .map(|d| format!("{:.1}", d.apps_per_sec))
            .collect();
        eprintln!(
            "  fleet {count}: {} apps in {:.2}s — {:.1} apps/s (per daemon: {})",
            outcome.completed,
            outcome.runtime.wall_secs,
            outcome.runtime.apps_per_sec,
            per_daemon.join(" + ")
        );
        fleets.push(CampaignFleetRegime {
            fleet: count,
            secs: outcome.runtime.wall_secs,
            apps_per_sec: outcome.runtime.apps_per_sec,
            resubmissions: outcome.runtime.resubmissions,
            daemon_failovers: outcome.runtime.daemon_failovers,
            checkpoint_flushes: outcome.runtime.checkpoint_flushes,
            report_fingerprint: outcome.store.fingerprint(),
            per_daemon: outcome.runtime.daemons,
        });
    }
    let _ = std::fs::remove_dir_all(&pkg_dir);

    CampaignSummary {
        apps: apks.len(),
        jobs_per_daemon: 1,
        window: cfg.window,
        chunk: cfg.chunk,
        pace_ms: CAMPAIGN_PACE_MS,
        host_cores,
        reps,
        mismatches: expected_mismatches,
        reports_identical: true,
        speedup_fleet2_over_fleet1: fleets[1].apps_per_sec
            / fleets[0].apps_per_sec.max(f64::EPSILON),
        fleets,
    }
}

/// Runs the incremental regime: populate the artifact store by
/// scanning the corpus once (untimed — the prior full scan every store
/// already paid for), apply the update wave, then time a plain full
/// rescan against the store-backed incremental rescan of the same
/// updated corpus. Both sides run the same warm tool one app at a time
/// (`app_jobs` 1), so the only variable is the store.
fn run_incremental_regime(scale: Scale, out_dir: &std::path::Path) -> IncrementalSummary {
    let fw = framework_at(scale);
    let mut apks = corpus_apks(scale);
    let apps = apks.len();
    let store_dir = out_dir.join(format!("saint_bench_delta_{}", std::process::id()));
    let scanner = saint_delta::DeltaScanner::new(&store_dir);
    let tool = SaintDroid::new(fw);

    // Store traffic arrives as encoded `.sapk` containers; encoding is
    // part of corpus preparation (the upload), not of either rescan, so
    // it stays untimed on both sides.
    eprintln!(
        "bench_summary: incremental regime — {apps} apps, populating the artifact store (untimed)"
    );
    let mut containers: Vec<Vec<u8>> = apks.iter().map(saint_ir::codec::encode_apk).collect();
    for (apk, sapk) in apks.iter().zip(&containers) {
        let _ = scanner.scan_encoded(&tool, sapk, apk, 1);
    }

    // The update wave: every 20th app ships a new version with 10% of
    // its classes mutated — deterministic, so the regime is repeatable.
    let stride = (1.0 / INCREMENTAL_WAVE_PCT).round() as usize;
    let mut updated_apps = 0usize;
    for (i, apk) in apks.iter_mut().enumerate() {
        if i % stride == 0 {
            saint_corpus::churn_wave(apk, INCREMENTAL_CHURN, 0x11EA6E ^ i as u64);
            containers[i] = saint_ir::codec::encode_apk(apk);
            updated_apps += 1;
        }
    }

    let start = Instant::now();
    let full_reports: Vec<Report> = apks.iter().map(|apk| tool.run(apk)).collect();
    let full_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut inc_reports = Vec::with_capacity(apps);
    let mut stats = saint_delta::DeltaStats::default();
    let mut classes_seen = 0u64;
    let mut app_fast_path = 0usize;
    for (apk, sapk) in apks.iter().zip(&containers) {
        let (report, s) = scanner.scan_encoded(&tool, sapk, apk, 1);
        stats.hits += s.hits;
        stats.misses += s.misses;
        stats.reanalyzed += s.reanalyzed;
        classes_seen += s.classes_seen;
        app_fast_path += usize::from(s.app_hit);
        inc_reports.push(report);
    }
    let inc_secs = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&store_dir);

    assert_eq!(
        fingerprint_reports(&full_reports),
        fingerprint_reports(&inc_reports),
        "incremental rescan diverged from the full rescan — splice correctness is broken"
    );
    let mismatches: usize = full_reports.iter().map(Report::total).sum();
    let speedup = full_secs / inc_secs.max(f64::EPSILON);
    eprintln!(
        "  full rescan {full_secs:.2}s | incremental {inc_secs:.2}s ({speedup:.1}x) — \
         {} hits / {} misses, {} reanalyzed, {app_fast_path}/{apps} app fast path",
        stats.hits, stats.misses, stats.reanalyzed
    );

    IncrementalSummary {
        apps,
        updated_apps,
        churn_pct: INCREMENTAL_CHURN * 100.0,
        full_rescan_secs: full_secs,
        incremental_rescan_secs: inc_secs,
        full_apps_per_sec: apps as f64 / full_secs.max(f64::EPSILON),
        incremental_apps_per_sec: apps as f64 / inc_secs.max(f64::EPSILON),
        speedup,
        delta_hits: stats.hits,
        delta_misses: stats.misses,
        classes_reanalyzed: stats.reanalyzed,
        hit_rate: stats.hits as f64 / (classes_seen as f64).max(1.0),
        app_fast_path,
        mismatches,
        reports_identical: true,
    }
}

fn main() {
    if let Ok(side) = std::env::var(SIDE_ENV) {
        let out = std::env::var(OUT_ENV).expect("child needs an output path");
        run_side(&side, &out);
        return;
    }

    // `SAINT_BENCH_REGIME=incremental` runs the incremental regime
    // alone (writing BENCH_incremental.json) — the store-update story
    // is self-contained, so iterating on it should not pay for the
    // batch/service/campaign ladders.
    if std::env::var("SAINT_BENCH_REGIME").as_deref() == Ok("incremental") {
        let incremental = run_incremental_regime(Scale::from_env(), &std::env::temp_dir());
        let json = serde_json::to_string_pretty(&incremental).expect("summary serializes");
        std::fs::write("BENCH_incremental.json", json).expect("write BENCH_incremental.json");
        eprintln!("json: BENCH_incremental.json");
        return;
    }

    let scale = Scale::from_env();
    let reps: usize = std::env::var("SAINT_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let apps = scale.realworld_config().apps;
    let jobs = 4;
    eprintln!(
        "bench_summary: scale={} apps={apps} — timing each side in {reps} fresh processes",
        scale.label()
    );

    let out_dir = std::env::temp_dir();
    let mut best: Option<(SideRun, SideRun, SideRun)> = None;
    for rep in 0..reps {
        let seq_path = out_dir.join(format!("saint_bench_seq_{rep}.json"));
        let bat_path = out_dir.join(format!("saint_bench_bat_{rep}.json"));
        let met_path = out_dir.join(format!("saint_bench_met_{rep}.json"));
        let seq = spawn_side("sequential", seq_path.to_str().expect("utf-8 path"));
        // Alternate the batch/batch-metrics order across reps: the
        // later child in a rep runs against a warmer machine (page
        // cache, frequency scaling), and a fixed order would bias the
        // best-of comparison the overhead number is built from.
        let (bat, met) = if rep % 2 == 0 {
            let bat = spawn_side("batch", bat_path.to_str().expect("utf-8 path"));
            let met = spawn_side("batch-metrics", met_path.to_str().expect("utf-8 path"));
            (bat, met)
        } else {
            let met = spawn_side("batch-metrics", met_path.to_str().expect("utf-8 path"));
            let bat = spawn_side("batch", bat_path.to_str().expect("utf-8 path"));
            (bat, met)
        };
        eprintln!(
            "  rep {rep}: sequential {:.2}s | batch {:.2}s | batch+metrics {:.2}s",
            seq.wall_secs, bat.wall_secs, met.wall_secs
        );
        assert_eq!(
            seq.reports_fingerprint, bat.reports_fingerprint,
            "batch reports diverged from sequential — engine parity is broken"
        );
        assert_eq!(
            bat.reports_fingerprint, met.reports_fingerprint,
            "metrics-on reports diverged from metrics-off — observation perturbed the analysis"
        );
        assert_eq!(seq.mismatches, bat.mismatches);
        assert_eq!(bat.mismatches, met.mismatches);
        let _ = std::fs::remove_file(seq_path);
        let _ = std::fs::remove_file(bat_path);
        let _ = std::fs::remove_file(met_path);
        best = Some(match best {
            None => (seq, bat, met),
            Some((bs, bb, bm)) => (
                if seq.wall_secs < bs.wall_secs {
                    seq
                } else {
                    bs
                },
                if bat.wall_secs < bb.wall_secs {
                    bat
                } else {
                    bb
                },
                if met.wall_secs < bm.wall_secs {
                    met
                } else {
                    bm
                },
            ),
        });
    }
    let (seq, bat, met) = best.expect("at least one rep");

    let large_apps = scale.large_app_config().apps;
    let large_app_jobs = large_app_jobs();
    eprintln!(
        "bench_summary: large-app regime — {large_apps} oversized apps, app_jobs={large_app_jobs}"
    );
    let mut large_best: Option<(SideRun, SideRun)> = None;
    for rep in 0..reps {
        let seq_path = out_dir.join(format!("saint_bench_lseq_{rep}.json"));
        let par_path = out_dir.join(format!("saint_bench_lpar_{rep}.json"));
        let lseq = spawn_side("large-seq", seq_path.to_str().expect("utf-8 path"));
        let lpar = spawn_side("large-par", par_path.to_str().expect("utf-8 path"));
        eprintln!(
            "  rep {rep}: large-seq {:.2}s (explore {:.2}s / detect {:.2}s) | large-par {:.2}s (explore {:.2}s / detect {:.2}s)",
            lseq.wall_secs, lseq.explore_secs, lseq.detect_secs,
            lpar.wall_secs, lpar.explore_secs, lpar.detect_secs
        );
        assert_eq!(
            lseq.reports_fingerprint, lpar.reports_fingerprint,
            "intra-app-parallel reports diverged from sequential — parity is broken"
        );
        assert_eq!(lseq.mismatches, lpar.mismatches);
        let _ = std::fs::remove_file(seq_path);
        let _ = std::fs::remove_file(par_path);
        large_best = Some(match large_best {
            None => (lseq, lpar),
            Some((bs, bp)) => (
                if lseq.wall_secs < bs.wall_secs {
                    lseq
                } else {
                    bs
                },
                if lpar.wall_secs < bp.wall_secs {
                    lpar
                } else {
                    bp
                },
            ),
        });
    }
    let (lseq, lpar) = large_best.expect("at least one rep");

    // The service regime keeps its own best-of (`service_reps`, frozen-
    // regime style): each rung of the client ladder runs its measured
    // passes against one warm daemon inside a single child process.
    let service = run_service_regime(scale, &out_dir, &bat);

    // The frozen regime reuses the metrics-on parsed batch (`met`) as
    // its baseline: same worker count, same registry, same corpus —
    // the only variable is where the artifacts come from.
    let frozen = run_frozen_regime(scale, reps, &out_dir, &met);

    // The campaign regime is fully in-process (paced daemons, so wall
    // time is capacity-bound, not allocator-bound — child isolation
    // would buy nothing).
    let campaign = run_campaign_regime(scale, &out_dir);

    // The incremental regime is in-process for the same reason: wall
    // time is store-reuse-bound, and both sides share one warm tool by
    // design.
    let incremental = run_incremental_regime(scale, &out_dir);

    let summary = Summary {
        scale: scale.label().to_string(),
        apps,
        jobs,
        reps,
        sequential_secs: seq.wall_secs,
        batch_secs: bat.wall_secs,
        sequential_apps_per_sec: apps as f64 / seq.wall_secs.max(f64::EPSILON),
        batch_apps_per_sec: apps as f64 / bat.wall_secs.max(f64::EPSILON),
        speedup: seq.wall_secs / bat.wall_secs.max(f64::EPSILON),
        peak_loaded_bytes: bat.peak_loaded_bytes,
        cache_hits: bat.cache_hits,
        cache_misses: bat.cache_misses,
        cache_entries: bat.cache_entries,
        artifact_cache_hits: bat.artifact_cache_hits,
        artifact_cache_misses: bat.artifact_cache_misses,
        scan_cache_hits: bat.scan_cache_hits,
        scan_cache_misses: bat.scan_cache_misses,
        mismatches: bat.mismatches,
        reports_identical: true,
        metrics: MetricsOverheadSummary {
            batch_secs: bat.wall_secs,
            batch_metrics_secs: met.wall_secs,
            overhead_pct: (met.wall_secs - bat.wall_secs) / bat.wall_secs.max(f64::EPSILON) * 100.0,
            scan_spans: met.metrics_scan_spans,
            clvm_load_secs: met.metrics_clvm_secs,
            explore_secs: met.metrics_explore_secs,
            detect_secs: met.metrics_detect_secs,
            scan_total_secs: met.metrics_scan_secs,
            class_cache_hit_rate: met.class_hit_rate,
            artifact_cache_hit_rate: met.artifact_hit_rate,
            scan_cache_hit_rate: met.scan_hit_rate,
            reports_identical: true,
        },
        large_app: LargeAppSummary {
            apps: large_apps,
            app_jobs: large_app_jobs,
            sequential_secs: lseq.wall_secs,
            parallel_secs: lpar.wall_secs,
            speedup: lseq.wall_secs / lpar.wall_secs.max(f64::EPSILON),
            sequential_explore_secs: lseq.explore_secs,
            sequential_detect_secs: lseq.detect_secs,
            parallel_explore_secs: lpar.explore_secs,
            parallel_detect_secs: lpar.detect_secs,
            mismatches: lpar.mismatches,
            reports_identical: true,
        },
        service,
        frozen,
        campaign,
        incremental,
    };

    println!(
        "\nBatch scan engine summary ({} apps, {} scale, best of {} cold runs/side)\n",
        summary.apps, summary.scale, summary.reps
    );
    println!(
        "sequential: {:>8.2}s  {:>8.1} apps/s",
        summary.sequential_secs, summary.sequential_apps_per_sec
    );
    println!(
        "jobs={}:     {:>8.2}s  {:>8.1} apps/s  ({:.2}x)",
        summary.jobs, summary.batch_secs, summary.batch_apps_per_sec, summary.speedup
    );
    println!(
        "peak per-app loaded bytes: {} | class cache: {} hits / {} misses ({} entries)",
        summary.peak_loaded_bytes, summary.cache_hits, summary.cache_misses, summary.cache_entries
    );
    println!(
        "artifact cache: {} hits / {} misses | subtree scan cache: {} hits / {} misses",
        summary.artifact_cache_hits,
        summary.artifact_cache_misses,
        summary.scan_cache_hits,
        summary.scan_cache_misses
    );
    println!(
        "{} mismatches; per-app reports identical to sequential: {}",
        summary.mismatches, summary.reports_identical
    );
    let mx = &summary.metrics;
    println!("\nObservability overhead ({} scan spans)\n", mx.scan_spans);
    println!(
        "batch (metrics off): {:>8.2}s | batch (metrics on): {:>8.2}s | overhead {:+.2}%",
        mx.batch_secs, mx.batch_metrics_secs, mx.overhead_pct
    );
    println!(
        "phase split: clvm_load {:.2}s | explore {:.2}s | detect {:.2}s | scan_total {:.2}s",
        mx.clvm_load_secs, mx.explore_secs, mx.detect_secs, mx.scan_total_secs
    );
    println!(
        "hit rates: class {:.1}% | artifact {:.1}% | subtree scan {:.1}%",
        mx.class_cache_hit_rate * 100.0,
        mx.artifact_cache_hit_rate * 100.0,
        mx.scan_cache_hit_rate * 100.0
    );
    let la = &summary.large_app;
    println!(
        "\nLarge-app regime ({} oversized apps, app_jobs={})\n",
        la.apps, la.app_jobs
    );
    println!(
        "sequential: {:>8.2}s  (explore {:.2}s / detect {:.2}s)",
        la.sequential_secs, la.sequential_explore_secs, la.sequential_detect_secs
    );
    println!(
        "intra-app:  {:>8.2}s  (explore {:.2}s / detect {:.2}s)  ({:.2}x)",
        la.parallel_secs, la.parallel_explore_secs, la.parallel_detect_secs, la.speedup
    );
    println!(
        "{} mismatches; reports identical to sequential: {}",
        la.mismatches, la.reports_identical
    );
    let sv = &summary.service;
    println!(
        "\nScan service regime ({} apps, jobs={}, window={}, best of {} passes; batch engine {:.1} apps/s)\n",
        sv.apps, sv.jobs, sv.window, sv.reps, sv.batch_apps_per_sec
    );
    for r in &sv.regimes {
        println!(
            "{:>5} clients: {:>5} scans  {:>7.2}s  {:>7.1} apps/s  ({:>5.1}% of batch)  p50 {:>7.1}ms  p99 {:>8.1}ms",
            r.clients, r.scans, r.secs, r.apps_per_sec, r.pct_of_batch, r.p50_ms, r.p99_ms
        );
    }
    if let Some(r) = sv.regimes.last() {
        println!(
            "{} mismatches; reports identical to batch engine at every client count: {}",
            r.mismatches, r.reports_identical
        );
    }
    let fz = &summary.frozen;
    println!(
        "\nFrozen-artifact regime ({} apps, jobs={})\n",
        fz.apps, fz.jobs
    );
    println!(
        "parsed batch (metrics on): {:>8.2}s | frozen batch: {:>8.2}s",
        fz.parsed_batch_secs, fz.frozen_batch_secs
    );
    println!(
        "warm-path clvm_load share: parsed {:.1}% -> frozen {:.2}%",
        fz.parsed_clvm_share_pct, fz.frozen_clvm_share_pct
    );
    println!(
        "time to first scan: parsed {:.3}s (artifacts {:.3}s) | frozen {:.3}s (attach {:.3}s)  ({:.1}x)",
        fz.ttfs_parsed_secs,
        fz.ttfs_parsed_startup_secs,
        fz.ttfs_frozen_secs,
        fz.ttfs_frozen_startup_secs,
        fz.ttfs_speedup
    );
    println!(
        "images: framework {} bytes, corpus {} bytes | {} mismatches; reports identical to parsed: {}",
        fz.framework_image_bytes, fz.corpus_image_bytes, fz.mismatches, fz.reports_identical
    );
    let cp = &summary.campaign;
    println!(
        "\nCampaign fleet regime ({} apps, jobs={}/daemon, {}ms pace, {} host core(s), best of {} runs)\n",
        cp.apps, cp.jobs_per_daemon, cp.pace_ms, cp.host_cores, cp.reps
    );
    for f in &cp.fleets {
        let per_daemon: Vec<String> = f
            .per_daemon
            .iter()
            .map(|d| format!("{:.1}", d.apps_per_sec))
            .collect();
        println!(
            "fleet {}: {:>7.2}s  {:>6.1} apps/s  (per daemon: {})",
            f.fleet,
            f.secs,
            f.apps_per_sec,
            per_daemon.join(" + ")
        );
    }
    println!(
        "fleet-2 over fleet-1: {:.2}x | {} mismatches; reports identical to batch engine at every fleet size: {}",
        cp.speedup_fleet2_over_fleet1, cp.mismatches, cp.reports_identical
    );
    let inc = &summary.incremental;
    println!(
        "\nIncremental rescan regime ({} apps, {} updated at {:.0}% class churn)\n",
        inc.apps, inc.updated_apps, inc.churn_pct
    );
    println!(
        "full rescan:        {:>8.2}s  {:>8.1} apps/s",
        inc.full_rescan_secs, inc.full_apps_per_sec
    );
    println!(
        "incremental rescan: {:>8.2}s  {:>8.1} apps/s  ({:.1}x)",
        inc.incremental_rescan_secs, inc.incremental_apps_per_sec, inc.speedup
    );
    println!(
        "delta: {} hits / {} misses ({:.1}% hit rate), {} classes reanalyzed, {}/{} apps on the whole-app fast path",
        inc.delta_hits,
        inc.delta_misses,
        inc.hit_rate * 100.0,
        inc.classes_reanalyzed,
        inc.app_fast_path,
        inc.apps
    );
    println!(
        "{} mismatches; incremental reports identical to full rescan: {}",
        inc.mismatches, inc.reports_identical
    );

    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    std::fs::write("BENCH_scan.json", json).expect("write BENCH_scan.json");
    eprintln!("json: BENCH_scan.json");
}
