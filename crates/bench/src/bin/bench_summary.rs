//! **bench_summary** — headline numbers for the batch scan engine:
//! sequential `SaintDroid::run` (one plain tool, one app at a time)
//! vs `ScanEngine::scan_batch` with 4 workers and the batch-wide
//! caches, over the real-world corpus; plus the **large-app** pair —
//! few apps, several times the KLOC — where the same plain sequential
//! shape is measured against the intra-app-parallel pipeline
//! (shared-CLVM exploration, concurrent detectors, parallel
//! framework-subtree scans, batch caches) with a per-phase breakdown
//! (explore vs detect), so single-app latency is visible separately
//! from batch throughput.
//!
//! Each side is timed in a **fresh child process** (best of
//! `SAINT_REPS`, default 3, alternating sides) so neither side inherits
//! the other's heap: measuring both in one process lets allocator state
//! and retained memory from whichever side ran first distort the
//! second, burying the real difference under noise. Children also emit
//! a fingerprint over every report; the parent verifies the two sides
//! produced identical per-app reports (mismatches *and* metered bytes)
//! before writing `BENCH_scan.json` to the working directory.
//!
//! ```text
//! cargo run --release -p saint-bench --bin bench_summary
//! SAINT_SCALE=small SAINT_REPS=5 cargo run --release -p saint-bench --bin bench_summary
//! ```

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use saint_analysis::{ArtifactCache, ShardedClassCache};
use saint_bench::{framework_at, Scale};
use saint_corpus::RealWorldCorpus;
use saint_ir::Apk;
use saintdroid::amd::invocation::DeepScanCache;
use saintdroid::engine::default_jobs;
use saintdroid::{Report, SaintDroid, ScanEngine};
use serde::Serialize;

const SIDE_ENV: &str = "SAINT_BENCH_SIDE";
const OUT_ENV: &str = "SAINT_BENCH_OUT";

#[derive(Serialize)]
struct Summary {
    scale: String,
    apps: usize,
    jobs: usize,
    reps: usize,
    sequential_secs: f64,
    batch_secs: f64,
    sequential_apps_per_sec: f64,
    batch_apps_per_sec: f64,
    speedup: f64,
    peak_loaded_bytes: usize,
    cache_hits: u64,
    cache_misses: u64,
    cache_entries: usize,
    artifact_cache_hits: u64,
    artifact_cache_misses: u64,
    scan_cache_hits: u64,
    scan_cache_misses: u64,
    mismatches: usize,
    reports_identical: bool,
    large_app: LargeAppSummary,
}

/// The large-app pair: few apps, several times the KLOC, so the run is
/// in the single-app-latency regime where batch-level app slots cannot
/// help and intra-app parallelism is the only lever. Per-phase seconds
/// separate Algorithm-1 exploration from AMD detection.
#[derive(Serialize)]
struct LargeAppSummary {
    apps: usize,
    app_jobs: usize,
    sequential_secs: f64,
    parallel_secs: f64,
    speedup: f64,
    sequential_explore_secs: f64,
    sequential_detect_secs: f64,
    parallel_explore_secs: f64,
    parallel_detect_secs: f64,
    mismatches: usize,
    reports_identical: bool,
}

/// What one timed child run reports back to the orchestrator.
#[derive(Serialize, serde::Deserialize)]
struct SideRun {
    wall_secs: f64,
    peak_loaded_bytes: usize,
    cache_hits: u64,
    cache_misses: u64,
    cache_entries: usize,
    artifact_cache_hits: u64,
    artifact_cache_misses: u64,
    scan_cache_hits: u64,
    scan_cache_misses: u64,
    /// FNV-1a fingerprint over one canonical JSON line per app (the
    /// mismatches plus the metered loading footprint). FNV is computed
    /// by hand because it is stable across processes, unlike the
    /// randomly-keyed std hasher; comparing the two sides' fingerprints
    /// is the report-parity check.
    reports_fingerprint: String,
    mismatches: usize,
    /// Seconds inside Algorithm-1 exploration (CLVM materialization
    /// included); only the large-app sides fill this in.
    explore_secs: f64,
    /// Seconds inside the three AMD detectors; large-app sides only.
    detect_secs: f64,
}

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn corpus_apks(scale: Scale) -> Vec<Apk> {
    let corpus = RealWorldCorpus::new(scale.realworld_config());
    (0..corpus.len()).map(|i| corpus.get(i).apk).collect()
}

fn digest(report: &Report) -> String {
    let mismatches = serde_json::to_string(&report.mismatches).expect("mismatches serialize");
    format!(
        "{}|{}|{}|{}",
        report.package,
        mismatches,
        report.meter.total_bytes(),
        report.meter.classes_loaded
    )
}

/// Intra-app workers for the `large-par` side: the whole hardware
/// budget, exactly what the two-level scheduler grants in the latency
/// regime (one oversized app at a time, so every core goes intra-app).
/// On a single-core host that is 1 — parallel exploration and detector
/// threads would only timeslice one CPU, so the pipeline degrades to
/// its sequential paths and the measured gain is the shared-cache work
/// reduction; report parity at higher counts is enforced by the
/// `intra_app_parity` suite. Overridable via `SAINT_LARGE_JOBS`.
fn large_app_jobs() -> usize {
    std::env::var("SAINT_LARGE_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(default_jobs)
}

fn fingerprint_reports(reports: &[Report]) -> String {
    let mut hash = 0xcbf2_9ce4_8422_2325;
    for report in reports {
        hash = fnv1a(digest(report).as_bytes(), hash);
        hash = fnv1a(b"\n", hash);
    }
    format!("{hash:016x}")
}

/// Child mode: run one side cold and write a [`SideRun`] JSON.
fn run_side(side: &str, out_path: &str) {
    let scale = Scale::from_env();
    let run = match side {
        "sequential" | "batch" => run_batch_side(side, scale),
        "large-seq" | "large-par" => run_large_side(side, scale),
        other => panic!("unknown side {other}"),
    };
    let json = serde_json::to_string(&run).expect("side run serializes");
    std::fs::File::create(out_path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write side run");
}

fn run_batch_side(side: &str, scale: Scale) -> SideRun {
    let fw = framework_at(scale);
    let apks = corpus_apks(scale);
    let engine = match side {
        // The pre-engine shape: one plain tool, one app at a time,
        // strictly per-app materialization and analysis.
        "sequential" => ScanEngine::from_tool(SaintDroid::new(fw)).jobs(1),
        // The batch engine: worker threads (clamped to the core count)
        // plus the three batch-wide caches.
        "batch" => ScanEngine::new(fw).jobs(4),
        other => panic!("unknown batch side {other}"),
    };
    let start = Instant::now();
    let reports = engine.scan_batch(&apks);
    let wall_secs = start.elapsed().as_secs_f64();

    let zero = saint_analysis::CacheStats {
        hits: 0,
        misses: 0,
        entries: 0,
    };
    let class = engine.cache_stats().unwrap_or(zero);
    let artifacts = engine.artifact_cache_stats().unwrap_or(zero);
    let scans = engine.scan_cache_stats().unwrap_or(zero);
    SideRun {
        wall_secs,
        peak_loaded_bytes: reports
            .iter()
            .map(|r| r.meter.total_bytes())
            .max()
            .unwrap_or(0),
        cache_hits: class.hits,
        cache_misses: class.misses,
        cache_entries: class.entries,
        artifact_cache_hits: artifacts.hits,
        artifact_cache_misses: artifacts.misses,
        scan_cache_hits: scans.hits,
        scan_cache_misses: scans.misses,
        reports_fingerprint: fingerprint_reports(&reports),
        mismatches: reports.iter().map(Report::total).sum(),
        explore_secs: 0.0,
        detect_secs: 0.0,
    }
}

/// The large-app sides analyze the few oversized apps one after the
/// other (there are not enough of them to fill app slots), so the two
/// shapes differ only in what happens *inside* one app: `large-seq`
/// is the plain single-threaded tool, `large-par` the intra-app
/// pipeline — shared-CLVM parallel exploration, concurrent detectors,
/// parallel framework-subtree scans — over the batch-wide caches.
fn run_large_side(side: &str, scale: Scale) -> SideRun {
    let cfg = scale.large_app_config();
    // The analyzed framework must match the corpus generator's synth
    // expansion (the large-app regime uses a tighter one — see
    // [`Scale::large_app_config`]); pre-mine it outside the timed
    // region like `framework_at` does.
    let fw = Arc::new(saint_adf::AndroidFramework::with_scale(&cfg.synth));
    let _ = fw.database();
    let _ = fw.permission_map();
    let corpus = RealWorldCorpus::new(cfg);
    let apks: Vec<Apk> = (0..corpus.len()).map(|i| corpus.get(i).apk).collect();
    let class_cache = Arc::new(ShardedClassCache::new());
    let artifact_cache = Arc::new(ArtifactCache::new());
    let scan_cache = Arc::new(DeepScanCache::new());
    let (tool, app_jobs) = match side {
        "large-seq" => (SaintDroid::new(fw), 1),
        "large-par" => (
            SaintDroid::new(fw)
                .with_shared_cache(Arc::clone(&class_cache))
                .with_shared_artifact_cache(Arc::clone(&artifact_cache))
                .with_shared_scan_cache(Arc::clone(&scan_cache)),
            large_app_jobs(),
        ),
        other => panic!("unknown large side {other}"),
    };

    let start = Instant::now();
    let mut explore_secs = 0.0;
    let mut detect_secs = 0.0;
    let reports: Vec<Report> = apks
        .iter()
        .map(|apk| {
            let (report, explore, detect) = tool.run_phased_with(apk, app_jobs);
            explore_secs += explore.as_secs_f64();
            detect_secs += detect.as_secs_f64();
            report
        })
        .collect();
    let wall_secs = start.elapsed().as_secs_f64();

    let class = class_cache.stats();
    let artifacts = artifact_cache.stats();
    let scans = scan_cache.stats();
    SideRun {
        wall_secs,
        peak_loaded_bytes: reports
            .iter()
            .map(|r| r.meter.total_bytes())
            .max()
            .unwrap_or(0),
        cache_hits: class.hits,
        cache_misses: class.misses,
        cache_entries: class.entries,
        artifact_cache_hits: artifacts.hits,
        artifact_cache_misses: artifacts.misses,
        scan_cache_hits: scans.hits,
        scan_cache_misses: scans.misses,
        reports_fingerprint: fingerprint_reports(&reports),
        mismatches: reports.iter().map(Report::total).sum(),
        explore_secs,
        detect_secs,
    }
}

/// Spawns this binary in child mode and reads its result.
fn spawn_side(side: &str, out_path: &str) -> SideRun {
    let exe = std::env::current_exe().expect("own path");
    let status = std::process::Command::new(exe)
        .env(SIDE_ENV, side)
        .env(OUT_ENV, out_path)
        .status()
        .expect("spawn side child");
    assert!(status.success(), "{side} child failed");
    let text = std::fs::read_to_string(out_path).expect("read side run");
    serde_json::from_str(&text).expect("side run parses")
}

fn main() {
    if let Ok(side) = std::env::var(SIDE_ENV) {
        let out = std::env::var(OUT_ENV).expect("child needs an output path");
        run_side(&side, &out);
        return;
    }

    let scale = Scale::from_env();
    let reps: usize = std::env::var("SAINT_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let apps = scale.realworld_config().apps;
    let jobs = 4;
    eprintln!(
        "bench_summary: scale={} apps={apps} — timing each side in {reps} fresh processes",
        scale.label()
    );

    let out_dir = std::env::temp_dir();
    let mut best: Option<(SideRun, SideRun)> = None;
    for rep in 0..reps {
        let seq_path = out_dir.join(format!("saint_bench_seq_{rep}.json"));
        let bat_path = out_dir.join(format!("saint_bench_bat_{rep}.json"));
        let seq = spawn_side("sequential", seq_path.to_str().expect("utf-8 path"));
        let bat = spawn_side("batch", bat_path.to_str().expect("utf-8 path"));
        eprintln!(
            "  rep {rep}: sequential {:.2}s | batch {:.2}s",
            seq.wall_secs, bat.wall_secs
        );
        assert_eq!(
            seq.reports_fingerprint, bat.reports_fingerprint,
            "batch reports diverged from sequential — engine parity is broken"
        );
        assert_eq!(seq.mismatches, bat.mismatches);
        let _ = std::fs::remove_file(seq_path);
        let _ = std::fs::remove_file(bat_path);
        best = Some(match best {
            None => (seq, bat),
            Some((bs, bb)) => (
                if seq.wall_secs < bs.wall_secs {
                    seq
                } else {
                    bs
                },
                if bat.wall_secs < bb.wall_secs {
                    bat
                } else {
                    bb
                },
            ),
        });
    }
    let (seq, bat) = best.expect("at least one rep");

    let large_apps = scale.large_app_config().apps;
    let large_app_jobs = large_app_jobs();
    eprintln!(
        "bench_summary: large-app regime — {large_apps} oversized apps, app_jobs={large_app_jobs}"
    );
    let mut large_best: Option<(SideRun, SideRun)> = None;
    for rep in 0..reps {
        let seq_path = out_dir.join(format!("saint_bench_lseq_{rep}.json"));
        let par_path = out_dir.join(format!("saint_bench_lpar_{rep}.json"));
        let lseq = spawn_side("large-seq", seq_path.to_str().expect("utf-8 path"));
        let lpar = spawn_side("large-par", par_path.to_str().expect("utf-8 path"));
        eprintln!(
            "  rep {rep}: large-seq {:.2}s (explore {:.2}s / detect {:.2}s) | large-par {:.2}s (explore {:.2}s / detect {:.2}s)",
            lseq.wall_secs, lseq.explore_secs, lseq.detect_secs,
            lpar.wall_secs, lpar.explore_secs, lpar.detect_secs
        );
        assert_eq!(
            lseq.reports_fingerprint, lpar.reports_fingerprint,
            "intra-app-parallel reports diverged from sequential — parity is broken"
        );
        assert_eq!(lseq.mismatches, lpar.mismatches);
        let _ = std::fs::remove_file(seq_path);
        let _ = std::fs::remove_file(par_path);
        large_best = Some(match large_best {
            None => (lseq, lpar),
            Some((bs, bp)) => (
                if lseq.wall_secs < bs.wall_secs {
                    lseq
                } else {
                    bs
                },
                if lpar.wall_secs < bp.wall_secs {
                    lpar
                } else {
                    bp
                },
            ),
        });
    }
    let (lseq, lpar) = large_best.expect("at least one rep");

    let summary = Summary {
        scale: scale.label().to_string(),
        apps,
        jobs,
        reps,
        sequential_secs: seq.wall_secs,
        batch_secs: bat.wall_secs,
        sequential_apps_per_sec: apps as f64 / seq.wall_secs.max(f64::EPSILON),
        batch_apps_per_sec: apps as f64 / bat.wall_secs.max(f64::EPSILON),
        speedup: seq.wall_secs / bat.wall_secs.max(f64::EPSILON),
        peak_loaded_bytes: bat.peak_loaded_bytes,
        cache_hits: bat.cache_hits,
        cache_misses: bat.cache_misses,
        cache_entries: bat.cache_entries,
        artifact_cache_hits: bat.artifact_cache_hits,
        artifact_cache_misses: bat.artifact_cache_misses,
        scan_cache_hits: bat.scan_cache_hits,
        scan_cache_misses: bat.scan_cache_misses,
        mismatches: bat.mismatches,
        reports_identical: true,
        large_app: LargeAppSummary {
            apps: large_apps,
            app_jobs: large_app_jobs,
            sequential_secs: lseq.wall_secs,
            parallel_secs: lpar.wall_secs,
            speedup: lseq.wall_secs / lpar.wall_secs.max(f64::EPSILON),
            sequential_explore_secs: lseq.explore_secs,
            sequential_detect_secs: lseq.detect_secs,
            parallel_explore_secs: lpar.explore_secs,
            parallel_detect_secs: lpar.detect_secs,
            mismatches: lpar.mismatches,
            reports_identical: true,
        },
    };

    println!(
        "\nBatch scan engine summary ({} apps, {} scale, best of {} cold runs/side)\n",
        summary.apps, summary.scale, summary.reps
    );
    println!(
        "sequential: {:>8.2}s  {:>8.1} apps/s",
        summary.sequential_secs, summary.sequential_apps_per_sec
    );
    println!(
        "jobs={}:     {:>8.2}s  {:>8.1} apps/s  ({:.2}x)",
        summary.jobs, summary.batch_secs, summary.batch_apps_per_sec, summary.speedup
    );
    println!(
        "peak per-app loaded bytes: {} | class cache: {} hits / {} misses ({} entries)",
        summary.peak_loaded_bytes, summary.cache_hits, summary.cache_misses, summary.cache_entries
    );
    println!(
        "artifact cache: {} hits / {} misses | subtree scan cache: {} hits / {} misses",
        summary.artifact_cache_hits,
        summary.artifact_cache_misses,
        summary.scan_cache_hits,
        summary.scan_cache_misses
    );
    println!(
        "{} mismatches; per-app reports identical to sequential: {}",
        summary.mismatches, summary.reports_identical
    );
    let la = &summary.large_app;
    println!(
        "\nLarge-app regime ({} oversized apps, app_jobs={})\n",
        la.apps, la.app_jobs
    );
    println!(
        "sequential: {:>8.2}s  (explore {:.2}s / detect {:.2}s)",
        la.sequential_secs, la.sequential_explore_secs, la.sequential_detect_secs
    );
    println!(
        "intra-app:  {:>8.2}s  (explore {:.2}s / detect {:.2}s)  ({:.2}x)",
        la.parallel_secs, la.parallel_explore_secs, la.parallel_detect_secs, la.speedup
    );
    println!(
        "{} mismatches; reports identical to sequential: {}",
        la.mismatches, la.reports_identical
    );

    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    std::fs::write("BENCH_scan.json", json).expect("write BENCH_scan.json");
    eprintln!("json: BENCH_scan.json");
}
