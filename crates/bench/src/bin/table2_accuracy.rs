//! **Table II** — accuracy of SAINTDroid, CID, CIDER and Lint on the
//! 19 benchmark apps (12 CIDER-Bench + 7 CID-Bench), scored against
//! each app's recorded ground truth. Per-app TP/FP/FN plus the summary
//! precision / recall / F-measure rows of the paper's table.
//!
//! ```text
//! cargo run --release -p saint-bench --bin table2_accuracy
//! ```

use std::sync::Arc;

use saint_baselines::{Cid, Cider, Lint};
use saint_bench::{framework_at, markdown_table, write_json, Scale};
use saint_corpus::{benchmark_suite, score, Accuracy};
use saintdroid::{CompatDetector, MismatchKind, SaintDroid};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    tp: usize,
    fp: usize,
    fn_: usize,
}

#[derive(Serialize)]
struct Row {
    app: String,
    suite: String,
    per_tool: Vec<(String, Option<Cell>)>,
}

#[derive(Serialize)]
struct Summary {
    tool: String,
    family: String,
    precision: f64,
    recall: f64,
    f_measure: f64,
}

fn family_kinds(family: &str) -> &'static [MismatchKind] {
    match family {
        "API" => &[MismatchKind::ApiInvocation],
        "APC" => &[MismatchKind::ApiCallback],
        "PRM" => &[
            MismatchKind::PermissionRequest,
            MismatchKind::PermissionRevocation,
        ],
        _ => unreachable!(),
    }
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("table2_accuracy: scale={}", scale.label());
    let fw = framework_at(scale);
    let tools: Vec<Box<dyn CompatDetector>> = vec![
        Box::new(SaintDroid::new(Arc::clone(&fw))),
        Box::new(Cid::new(Arc::clone(&fw))),
        Box::new(Cider::new(Arc::clone(&fw))),
        Box::new(Lint::new(Arc::clone(&fw))),
    ];
    let apps = benchmark_suite();

    // Pre-compute reports once per (tool, app).
    let reports: Vec<Vec<Option<saintdroid::Report>>> = tools
        .iter()
        .map(|t| apps.iter().map(|a| t.analyze(&a.apk)).collect())
        .collect();

    let mut rows_md: Vec<Vec<String>> = Vec::new();
    let mut rows_json: Vec<Row> = Vec::new();
    for (ai, app) in apps.iter().enumerate() {
        let mut md = vec![app.name.to_string()];
        let mut per_tool = Vec::new();
        for (ti, tool) in tools.iter().enumerate() {
            match &reports[ti][ai] {
                Some(report) => {
                    let acc = score(report, &app.truth, None);
                    md.push(format!("{}/{}/{}", acc.tp, acc.fp, acc.fn_));
                    per_tool.push((
                        tool.name().to_string(),
                        Some(Cell {
                            tp: acc.tp,
                            fp: acc.fp,
                            fn_: acc.fn_,
                        }),
                    ));
                }
                None => {
                    md.push("–".to_string());
                    per_tool.push((tool.name().to_string(), None));
                }
            }
        }
        rows_md.push(md);
        rows_json.push(Row {
            app: app.name.to_string(),
            suite: app.suite.to_string(),
            per_tool,
        });
    }

    println!("\nTable II: per-app TP/FP/FN against ground truth (– = tool failed)\n");
    println!(
        "{}",
        markdown_table(&["App", "SAINTDroid", "CID", "CIDER", "Lint"], &rows_md)
    );

    // Summary block: per family and overall, like the paper's
    // precision/recall/F rows.
    let mut summaries = Vec::new();
    for family in ["API", "APC", "PRM", "ALL"] {
        let kinds = (family != "ALL").then(|| family_kinds(family));
        println!("-- {family} --");
        for (ti, tool) in tools.iter().enumerate() {
            let mut acc = Accuracy::default();
            for (ai, app) in apps.iter().enumerate() {
                match &reports[ti][ai] {
                    Some(report) => acc.absorb(score(report, &app.truth, kinds)),
                    None => {
                        let missed = app
                            .truth
                            .iter()
                            .filter(|t| kinds.is_none_or(|ks| ks.contains(&t.kind)))
                            .count();
                        acc.absorb(Accuracy {
                            tp: 0,
                            fp: 0,
                            fn_: missed,
                        });
                    }
                }
            }
            println!("  {:<11} {}", tool.name(), acc);
            summaries.push(Summary {
                tool: tool.name().to_string(),
                family: family.to_string(),
                precision: acc.precision(),
                recall: acc.recall(),
                f_measure: acc.f_measure(),
            });
        }
    }

    let path = write_json("table2_accuracy", &(rows_json, summaries));
    eprintln!("json: {}", path.display());
}
