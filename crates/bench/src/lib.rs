//! # saint-bench — experiment harnesses
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus the
//! shared plumbing here: framework construction at a chosen scale,
//! repeated timing (the paper averages three runs), markdown table
//! rendering, and JSON result dumps under `target/experiments/`.
//!
//! Scale control: every harness reads `SAINT_SCALE`
//! (`small` | `medium` | `paper`, default `medium`) and, for
//! corpus-wide harnesses, `SAINT_APPS` (number of real-world apps,
//! default scale-dependent). `paper` reproduces the published setup —
//! a ~4,000-class framework and 3,571 apps — and takes correspondingly
//! longer.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use saint_adf::{AndroidFramework, SynthConfig};
use saint_corpus::RealWorldConfig;
use saintdroid::{CompatDetector, Report};
use serde::Serialize;

/// Experiment scale, selected by the `SAINT_SCALE` environment
/// variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny: CI-friendly smoke runs.
    Small,
    /// Medium: minutes-scale local runs (default).
    Medium,
    /// Paper: the published setup (~4,000 framework classes, 3,571
    /// apps).
    Paper,
}

impl Scale {
    /// Reads `SAINT_SCALE` (default `medium`).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("SAINT_SCALE").as_deref() {
            Ok("small") => Scale::Small,
            Ok("paper") | Ok("full") => Scale::Paper,
            _ => Scale::Medium,
        }
    }

    /// The framework expansion for this scale.
    #[must_use]
    pub fn synth_config(self) -> SynthConfig {
        match self {
            Scale::Small => SynthConfig::small(),
            Scale::Medium => SynthConfig::medium(),
            Scale::Paper => SynthConfig::paper(),
        }
    }

    /// The real-world corpus for this scale, honoring `SAINT_APPS`.
    #[must_use]
    pub fn realworld_config(self) -> RealWorldConfig {
        let mut cfg = match self {
            Scale::Small => RealWorldConfig::small(),
            Scale::Medium => RealWorldConfig::medium(),
            Scale::Paper => RealWorldConfig::paper(),
        };
        if let Ok(n) = std::env::var("SAINT_APPS") {
            if let Ok(n) = n.parse::<usize>() {
                cfg.apps = n;
            }
        }
        cfg
    }

    /// The large-app corpus for this scale: few apps, each several
    /// times the usual KLOC — the single-app-latency regime where
    /// intra-app parallelism (shared-CLVM exploration, concurrent
    /// detectors, parallel subtree scans) is the only lever, since app
    /// slots cannot saturate the machine. The synthetic framework is
    /// kept to a quarter of the scale's expansion: large real apps
    /// concentrate their calls on the framework core, so a tighter, hot
    /// surface reproduces the cross-app locality that makes the shared
    /// caches representative (uniform sampling over the full expansion
    /// would give a few oversized apps almost disjoint framework
    /// footprints, which no real corpus has). Honors `SAINT_LARGE_APPS`.
    #[must_use]
    pub fn large_app_config(self) -> RealWorldConfig {
        let mut cfg = match self {
            Scale::Small => RealWorldConfig::small(),
            Scale::Medium => RealWorldConfig::medium(),
            Scale::Paper => RealWorldConfig::paper(),
        };
        cfg.apps = match self {
            Scale::Small => 4,
            Scale::Medium => 8,
            Scale::Paper => 12,
        };
        cfg.size_scale *= 8.0;
        cfg.synth.classes = (cfg.synth.classes / 4).max(60);
        // Dense classes: the hot core carries most of the framework's
        // methods (the way `android.*` concentrates API surface), so
        // materializing and mining a class is substantial work.
        cfg.synth.methods_per_class = (
            cfg.synth.methods_per_class.0 * 4,
            cfg.synth.methods_per_class.1 * 4,
        );
        // Modern large apps share one recent target level (store
        // policy) and lean on the same hot platform core; both are what
        // make the level-keyed analysis caches shareable across apps.
        cfg.force_target = Some(28);
        cfg.api_skew = 3.0;
        if let Ok(n) = std::env::var("SAINT_LARGE_APPS") {
            if let Ok(n) = n.parse::<usize>() {
                cfg.apps = n;
            }
        }
        cfg
    }

    /// Filler multiplier for the benchmark apps (the paper's apps span
    /// 10.4–294.4 KLOC; unit-size apps are only for tests).
    #[must_use]
    pub fn bench_app_factor(self) -> usize {
        match self {
            Scale::Small => 4,
            Scale::Medium => 40,
            Scale::Paper => 150,
        }
    }

    /// Human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        }
    }
}

/// Builds the framework at the chosen scale (curated surface plus
/// synthetic expansion) and pre-mines the ARM artifacts so their
/// one-time cost does not pollute per-app timings — the paper's
/// database is likewise "constructed once … as a reusable model".
#[must_use]
pub fn framework_at(scale: Scale) -> Arc<AndroidFramework> {
    let fw = Arc::new(AndroidFramework::with_scale(&scale.synth_config()));
    let _ = fw.database();
    let _ = fw.permission_map();
    fw
}

/// Runs `f` `runs` times and returns the mean duration alongside the
/// last result (the paper reports each timing "averaged over three
/// attempts").
pub fn timed_mean<T>(runs: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    assert!(runs > 0, "need at least one run");
    let mut total = Duration::ZERO;
    let mut last = None;
    for _ in 0..runs {
        let start = Instant::now();
        last = Some(f());
        total += start.elapsed();
    }
    (total / runs as u32, last.expect("runs > 0"))
}

/// Analyzes one APK with a detector, averaged over `runs` attempts;
/// `None` mirrors the paper's dashes (tool crash / cannot build).
#[must_use]
pub fn timed_analyze(
    tool: &dyn CompatDetector,
    apk: &saint_ir::Apk,
    runs: usize,
) -> Option<(Duration, Report)> {
    let (mean, last) = timed_mean(runs, || tool.analyze(apk));
    last.map(|report| (mean, report))
}

/// Renders a markdown table.
#[must_use]
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Where experiment outputs are written.
#[must_use]
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Writes a JSON experiment artifact and returns its path.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let path = experiments_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serializable experiment output");
    fs::write(&path, json).expect("write experiment output");
    path
}

/// Formats a duration in seconds with one decimal, `-` for `None`
/// (the paper's dash notation).
#[must_use]
pub fn fmt_secs(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:.2}", d.as_secs_f64()),
        None => "–".to_string(),
    }
}

/// Formats bytes as mebibytes with one decimal.
#[must_use]
pub fn fmt_mib(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
        assert!(t.contains("|---|---|"));
    }

    #[test]
    fn timed_mean_counts_runs() {
        let mut n = 0;
        let (_, last) = timed_mean(3, || {
            n += 1;
            n
        });
        assert_eq!(last, 3);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(None), "–");
        assert_eq!(fmt_secs(Some(Duration::from_millis(1500))), "1.50");
        assert_eq!(fmt_mib(1024 * 1024), "1.0");
    }

    #[test]
    fn scale_from_env_default_is_medium() {
        // (Does not set the variable: environment-dependent tests are
        // flaky; just exercise the default path.)
        if std::env::var("SAINT_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Medium);
        }
    }
}
