//! End-to-end fleet campaign tests: convergence of the aggregated
//! report across fleet sizes, daemon loss mid-campaign, and
//! crash/resume via injected driver faults.
//!
//! The convergence contract under test: however a campaign gets to
//! completion — one daemon or many, uninterrupted or resumed after a
//! crash, with or without failover — the stable report and campaign
//! fingerprint are identical, because scans are deterministic, units
//! are content-addressed, and the store deduplicates by id.
//!
//! `saint-faults` state is process-global, so every test serializes on
//! one lock (the same idiom as the engine's fault-isolation tests).

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use saint_adf::AndroidFramework;
use saint_campaign::{
    run_campaign, CampaignConfig, CampaignOutcome, CorpusRegistry, FleetConfig, LocalFleet,
};
use saint_faults::FaultPoint;
use saint_ir::codec;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One curated framework for every daemon in the file (the model is
/// immutable and reference-counted).
fn framework() -> Arc<AndroidFramework> {
    static FW: OnceLock<Arc<AndroidFramework>> = OnceLock::new();
    Arc::clone(FW.get_or_init(|| Arc::new(AndroidFramework::curated())))
}

const APPS: usize = 10;

/// Writes the shared 10-app corpus as loose `.sapk` files, once.
fn corpus_dir() -> &'static Path {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("saint-campaign-e2e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir corpus");
        let mut cfg = saint_corpus::RealWorldConfig::small();
        cfg.apps = APPS;
        let corpus = saint_corpus::RealWorldCorpus::new(cfg);
        for i in 0..APPS {
            let bytes = codec::encode_apk(&corpus.get(i).apk);
            std::fs::write(dir.join(format!("app{i:02}.sapk")), bytes).expect("write sapk");
        }
        dir
    })
}

fn registry() -> CorpusRegistry {
    let mut reg = CorpusRegistry::new();
    reg.add_sapk_dir(corpus_dir()).expect("register corpus");
    assert_eq!(reg.len(), APPS);
    reg
}

fn fleet(count: usize, pace_ms: u64) -> LocalFleet {
    let cfg = FleetConfig {
        jobs: 1,
        queue_depth: 64,
        scan_pace: (pace_ms > 0).then(|| Duration::from_millis(pace_ms)),
        prewarm: false,
    };
    LocalFleet::start(&framework(), count, &cfg).expect("fleet starts")
}

fn journal_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "saint-campaign-e2e-{tag}-{}.journal",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    path
}

fn campaign_cfg() -> CampaignConfig {
    CampaignConfig {
        checkpoint_every: 1, // Every completion is durable — crash tests salvage everything.
        chunk: 2,
        ..CampaignConfig::default()
    }
}

/// The uninterrupted single-daemon answer every other execution shape
/// must reproduce: (stable report JSON, campaign fingerprint).
fn baseline() -> &'static (String, String) {
    static BASELINE: OnceLock<(String, String)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let reg = registry();
        let fleet = fleet(1, 0);
        let journal = journal_path("baseline");
        let outcome = run_campaign(
            &reg,
            fleet.endpoints(),
            &journal,
            false,
            &campaign_cfg(),
            None,
        )
        .expect("baseline campaign");
        assert_eq!(outcome.completed, APPS);
        std::fs::remove_file(&journal).ok();
        let fingerprint = outcome.store.fingerprint();
        (outcome.store.report(None).stable_json(), fingerprint)
    })
}

fn assert_converged(outcome: &CampaignOutcome) {
    let (stable, fingerprint) = baseline();
    assert_eq!(
        &outcome.store.fingerprint(),
        fingerprint,
        "campaign fingerprint diverged from the uninterrupted single-daemon run"
    );
    assert_eq!(
        &outcome.store.report(None).stable_json(),
        stable,
        "stable report diverged from the uninterrupted single-daemon run"
    );
}

#[test]
fn two_daemon_fleet_matches_single_daemon_report() {
    let _guard = serial();
    saint_faults::reset();
    let reg = registry();
    let fleet = fleet(2, 0);
    let journal = journal_path("fleet2");
    let outcome = run_campaign(
        &reg,
        fleet.endpoints(),
        &journal,
        false,
        &campaign_cfg(),
        None,
    )
    .expect("fleet-2 campaign");
    assert_eq!(outcome.completed, APPS);
    assert_eq!(outcome.runtime.daemon_failovers, 0);
    // Both daemons actually served their shard.
    let served: Vec<u64> = outcome.runtime.daemons.iter().map(|d| d.apps).collect();
    assert!(
        served.iter().all(|&n| n > 0),
        "a daemon sat idle: {served:?}"
    );
    assert_converged(&outcome);
    std::fs::remove_file(&journal).ok();
}

#[test]
fn daemon_loss_mid_campaign_fails_over_and_converges() {
    let _guard = serial();
    saint_faults::reset();
    let reg = registry();
    // Paced daemons stretch the campaign so the kill lands mid-run.
    let mut fleet = fleet(2, 25);
    let endpoints = fleet.endpoints().to_vec();
    let journal = journal_path("loss");
    let outcome = std::thread::scope(|scope| {
        let campaign =
            scope.spawn(|| run_campaign(&reg, &endpoints, &journal, false, &campaign_cfg(), None));
        // Wait for the first checkpointed completion, then take one
        // daemon out from under the driver.
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "no completion checkpointed within 60s"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        fleet.kill(1);
        campaign.join().expect("campaign thread")
    })
    .expect("campaign survives daemon loss");
    assert_eq!(outcome.store.len(), APPS);
    // The dead daemon's shard moved to the survivor. (If daemon 1
    // finished its whole shard before the kill landed, the failover
    // count can legitimately be zero — but with 25ms pacing and the
    // kill after the *first* completion, it never is in practice.)
    assert!(
        outcome.runtime.daemon_failovers >= 1,
        "expected a failover, got {:?}",
        outcome.runtime
    );
    assert!(outcome.runtime.resubmissions >= 1);
    assert_converged(&outcome);
    std::fs::remove_file(&journal).ok();
}

#[test]
fn driver_crash_then_resume_is_fingerprint_identical() {
    let _guard = serial();
    saint_faults::reset();
    let reg = registry();
    let fleet = fleet(2, 25);
    let endpoints = fleet.endpoints().to_vec();
    let journal = journal_path("crash");

    // Phase 1: crash the driver mid-campaign via an injected fault in
    // the dispatch loop, after at least one completion is durable.
    let crashed = std::thread::scope(|scope| {
        let campaign = scope.spawn(|| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_campaign(&reg, &endpoints, &journal, false, &campaign_cfg(), None)
            }))
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "no completion checkpointed within 60s"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        saint_faults::arm(FaultPoint::CampaignDispatch, 1);
        campaign.join().expect("campaign thread")
    });
    let leftover = saint_faults::remaining(FaultPoint::CampaignDispatch);
    saint_faults::reset();
    let replayed = saint_campaign::replay(&journal).expect("journal readable after crash");
    let salvaged = replayed.records.len();
    match crashed {
        Err(_) => {
            // The injected `campaign_dispatch` panic propagated out of
            // the driver's thread scope (the scope re-wraps the
            // payload, so only the fact of the panic is asserted).
            assert!(salvaged < APPS, "crashed campaign cannot be complete");
            assert_eq!(leftover, 0, "the armed fault never fired");
        }
        // The fleet can outrun the arming on a fast machine; the
        // campaign then finished before the fault fired. Resume below
        // still must converge (as a no-op).
        Ok(result) => {
            result.expect("uninterrupted campaign");
        }
    }
    assert!(salvaged >= 1, "first checkpoint was polled before arming");

    // Phase 2: resume against the same fleet; only uncovered units are
    // re-scanned, and the result converges to the baseline.
    let outcome = run_campaign(&reg, &endpoints, &journal, true, &campaign_cfg(), None)
        .expect("resumed campaign");
    assert_eq!(outcome.resumed, salvaged);
    assert_eq!(outcome.completed, APPS - salvaged);
    assert_eq!(outcome.store.len(), APPS);
    assert_converged(&outcome);
    std::fs::remove_file(&journal).ok();
}

#[test]
fn resume_skips_journaled_units_deterministically() {
    let _guard = serial();
    saint_faults::reset();
    // Deterministic (timing-free) resume coverage: complete a campaign
    // over *half* the corpus, then resume over the full corpus with the
    // same journal. The resumed run must scan exactly the other half
    // and converge to the baseline.
    let full = registry();
    let half_dir =
        std::env::temp_dir().join(format!("saint-campaign-e2e-half-{}", std::process::id()));
    std::fs::create_dir_all(&half_dir).expect("mkdir half");
    let mut names: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("list corpus")
        .map(|e| e.expect("entry").path())
        .collect();
    names.sort();
    for path in names.iter().take(APPS / 2) {
        std::fs::copy(path, half_dir.join(path.file_name().expect("name"))).expect("copy");
    }
    let mut half = CorpusRegistry::new();
    half.add_sapk_dir(&half_dir).expect("register half");
    assert_eq!(half.len(), APPS / 2);

    let fleet = fleet(1, 0);
    let journal = journal_path("half");
    let first = run_campaign(
        &half,
        fleet.endpoints(),
        &journal,
        false,
        &campaign_cfg(),
        None,
    )
    .expect("half campaign");
    assert_eq!(first.completed, APPS / 2);

    let outcome = run_campaign(
        &full,
        fleet.endpoints(),
        &journal,
        true,
        &campaign_cfg(),
        None,
    )
    .expect("resumed full campaign");
    assert_eq!(outcome.resumed, APPS / 2);
    assert_eq!(outcome.completed, APPS - APPS / 2);
    assert_converged(&outcome);
    std::fs::remove_dir_all(&half_dir).ok();
    std::fs::remove_file(&journal).ok();
}

#[test]
fn empty_inputs_are_typed_errors() {
    let _guard = serial();
    saint_faults::reset();
    let reg = CorpusRegistry::new();
    let journal = journal_path("empty");
    let err = run_campaign(
        &reg,
        &["127.0.0.1:1".to_string()],
        &journal,
        false,
        &campaign_cfg(),
        None,
    )
    .expect_err("empty corpus");
    assert!(matches!(err, saint_campaign::CampaignError::EmptyCorpus));
    let reg = registry();
    let err =
        run_campaign(&reg, &[], &journal, false, &campaign_cfg(), None).expect_err("no daemons");
    assert!(matches!(err, saint_campaign::CampaignError::NoDaemons));
}

#[test]
fn unreachable_fleet_is_all_daemons_lost() {
    let _guard = serial();
    saint_faults::reset();
    let reg = registry();
    let journal = journal_path("unreachable");
    // Port 1 refuses connections: every daemon is lost before any unit
    // is scanned, and the typed error says so.
    let endpoints = vec!["127.0.0.1:1".to_string(), "127.0.0.1:1".to_string()];
    let err = run_campaign(&reg, &endpoints, &journal, false, &campaign_cfg(), None)
        .expect_err("unreachable fleet");
    match err {
        saint_campaign::CampaignError::AllDaemonsLost { completed, lost } => {
            assert_eq!(completed, 0);
            assert_eq!(lost, APPS);
        }
        other => panic!("expected AllDaemonsLost, got {other}"),
    }
    std::fs::remove_file(&journal).ok();
}
