//! Property tests for journal robustness: arbitrary truncation and
//! bit flips over a valid journal must never panic the reader, never
//! double-count a unit, and always yield either a typed error or a
//! clean salvageable prefix of the original records.

use std::path::PathBuf;

use proptest::collection::vec;
use proptest::prelude::*;

use saint_campaign::journal::{replay, JournalFinding, JournalRecord, JournalWriter};
use saint_campaign::CampaignError;
use saint_ir::ApiLevel;

fn record(id: u64) -> JournalRecord {
    JournalRecord {
        id,
        package: format!("com.app.{id}"),
        fingerprint: format!("{:016x}", id.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        daemon: "127.0.0.1:9000".to_string(),
        micros: 1000 + id,
        resubmits: (id % 3) as u32,
        findings: (0..(id % 4))
            .map(|k| JournalFinding {
                family: ["API", "APC", "PRM"][(k % 3) as usize].to_string(),
                api: format!("android.pkg.C{k}.m{k}()V"),
                levels: vec![ApiLevel::new(20 + k as u8)],
            })
            .collect(),
    }
}

/// Writes a fully-synced journal of `n` records and returns its bytes.
fn journal_bytes(n: u64, tag: &str) -> (PathBuf, Vec<u8>) {
    let path = std::env::temp_dir().join(format!(
        "saint-corrupt-journal-{tag}-{}-{:x}.journal",
        std::process::id(),
        n
    ));
    let mut writer = JournalWriter::create(&path, 4).expect("create journal");
    for id in 0..n {
        writer.append(&record(id)).expect("append");
    }
    writer.sync().expect("sync");
    let bytes = std::fs::read(&path).expect("read back");
    (path, bytes)
}

/// The invariants every damaged journal must satisfy: no panic (the
/// call returning at all), unique ids, and records forming a prefix of
/// (a subset of) the originals with identical content.
fn check_damaged(path: &PathBuf, damaged: &[u8], originals: u64) {
    std::fs::write(path, damaged).expect("write damaged");
    match replay(path) {
        Ok(replayed) => {
            let mut seen = std::collections::HashSet::new();
            for rec in &replayed.records {
                assert!(seen.insert(rec.id), "id {} double-counted", rec.id);
                assert!(rec.id < originals, "id {} was never written", rec.id);
                assert_eq!(
                    rec,
                    &record(rec.id),
                    "salvaged record {} does not match what was written",
                    rec.id
                );
            }
        }
        Err(CampaignError::JournalCorrupt { .. }) | Err(CampaignError::Io { .. }) => {
            // Typed rejection is the other legal outcome.
        }
        Err(other) => panic!("unexpected error class: {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncated_journal_never_panics_or_double_counts(
        n in 1u64..12,
        cut in 0usize..4096,
    ) {
        let (path, bytes) = journal_bytes(n, "trunc");
        let cut = cut.min(bytes.len());
        check_damaged(&path, &bytes[..cut], n);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flipped_journal_never_panics_or_double_counts(
        n in 1u64..12,
        flips in vec((0usize..4096, 0u8..8), 1..6),
    ) {
        let (path, mut bytes) = journal_bytes(n, "flip");
        for (at, bit) in flips {
            let len = bytes.len();
            bytes[at % len] ^= 1 << bit;
        }
        check_damaged(&path, &bytes, n);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flip_then_salvage_is_a_strict_prefix(
        n in 2u64..12,
        line in 1u64..11,
        offset in 0usize..64,
    ) {
        // Flip one byte inside a specific (valid) line: everything
        // before that line survives, nothing after it does — the
        // torn-tail contract, mid-file.
        let (path, mut bytes) = journal_bytes(n, "prefix");
        let line = line.min(n - 1) as usize;
        let starts: Vec<usize> = std::iter::once(0)
            .chain(
                bytes
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b == b'\n')
                    .map(|(i, _)| i + 1),
            )
            .collect();
        let line_start = starts[line];
        let line_len = starts[line + 1] - line_start - 1;
        bytes[line_start + offset % line_len] ^= 0x10;
        std::fs::write(&path, &bytes).expect("write damaged");
        match replay(&path) {
            Ok(replayed) => {
                // The flip may corrupt the line (truncating there) or
                // land on a byte whose flip keeps frame + crc parseable
                // only if it missed the payload — either way the result
                // is a prefix.
                prop_assert!(replayed.records.len() <= n as usize);
                for (i, rec) in replayed.records.iter().enumerate() {
                    prop_assert_eq!(rec.id, i as u64);
                }
                if replayed.truncated {
                    prop_assert!(replayed.records.len() <= line);
                }
            }
            Err(CampaignError::JournalCorrupt { .. }) => {
                prop_assert_eq!(line, 0);
            }
            Err(other) => prop_assert!(false, "unexpected error: {}", other),
        }
        std::fs::remove_file(&path).ok();
    }
}
