//! The aggregated result store: deduplicated per-app results and the
//! campaign report rolled up from them.
//!
//! The store is fed from two places — live scan completions during a
//! run and journal replay during a resume — and treats both
//! identically: a [`JournalRecord`] keyed by campaign id. Because
//! scans are deterministic and ids are content-addressed, inserting
//! the same unit twice is a no-op, which is the property that makes
//! "resume converges to the same report" provable rather than hoped:
//! the final report is a pure function of the *set* of records, and
//! the set is the same whether the campaign ran once or was stitched
//! together from a salvaged journal prefix plus a re-scan of the rest.
//!
//! Everything in [`CampaignReport`] is deterministically ordered
//! (`BTreeMap` roll-ups, id-ordered per-app rows, count-then-name
//! ordered top APIs) so two converged runs render byte-identical
//! stable reports — the CI smoke job literally `diff`s them.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::journal::JournalRecord;
use crate::registry::fnv1a;

/// The per-report digest, matching the bench-suite convention: package,
/// serialized mismatches, and the load-meter quantities that the
/// paper's Figure-4 accounting cares about.
#[must_use]
pub fn report_digest(report: &saintdroid::Report) -> String {
    let mismatches =
        serde_json::to_string(&report.mismatches).unwrap_or_else(|_| "unserializable".to_string());
    format!(
        "{}|{}|{}|{}",
        report.package,
        mismatches,
        report.meter.total_bytes(),
        report.meter.classes_loaded
    )
}

/// FNV-1a fingerprint of one report, rendered as 16 hex digits — the
/// quantity journaled per unit and compared across runs.
#[must_use]
pub fn report_fingerprint(report: &saintdroid::Report) -> String {
    let mut hash = fnv1a(report_digest(report).as_bytes(), 0xcbf2_9ce4_8422_2325);
    hash = fnv1a(b"\n", hash);
    format!("{hash:016x}")
}

/// A framework API and how many mismatches hit it, campaign-wide.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApiCount {
    /// Rendered `MethodRef` of the API.
    pub api: String,
    /// Mismatches against it across all apps.
    pub count: u64,
}

/// One app's row in the campaign report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppSummary {
    /// Campaign id, 16 hex digits.
    pub id: String,
    /// Package name.
    pub package: String,
    /// Mismatch count.
    pub mismatches: u64,
    /// Per-report fingerprint.
    pub fingerprint: String,
}

/// Throughput attribution for one daemon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaemonStats {
    /// The daemon's endpoint (host:port).
    pub endpoint: String,
    /// Apps it completed.
    pub apps: u64,
    /// Its completion rate over the campaign wall clock.
    pub apps_per_sec: f64,
}

/// Wall-clock statistics for one campaign execution. Excluded from the
/// stable rendering: a resumed run legitimately differs here even
/// though its result set converges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeStats {
    /// Campaign wall-clock seconds (this execution only).
    pub wall_secs: f64,
    /// Apps completed per second across the fleet.
    pub apps_per_sec: f64,
    /// Per-daemon attribution.
    pub daemons: Vec<DaemonStats>,
    /// Units re-dispatched after transient failures or failovers.
    pub resubmissions: u64,
    /// Daemons lost and failed over mid-campaign.
    pub daemon_failovers: u64,
    /// Journal checkpoint batches fsync'd.
    pub checkpoint_flushes: u64,
}

/// The one-document campaign output: totals, roll-ups, per-app rows,
/// and (optionally) runtime statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Distinct apps scanned.
    pub apps: u64,
    /// Apps with zero mismatches.
    pub clean: u64,
    /// Total mismatches campaign-wide.
    pub mismatches: u64,
    /// Campaign fingerprint: FNV-1a over `id|fingerprint` lines in id
    /// order. Two runs that scanned the same corpus agree here.
    pub fingerprint: String,
    /// Mismatches per detector family (`API` / `APC` / `PRM`).
    pub by_family: BTreeMap<String, u64>,
    /// Mismatches per affected API level (zero-padded keys so JSON
    /// object order is numeric).
    pub by_level: BTreeMap<String, u64>,
    /// The ten most-hit framework APIs, count-descending then
    /// name-ascending.
    pub top_apis: Vec<ApiCount>,
    /// Every app, id-ordered.
    pub per_app: Vec<AppSummary>,
    /// Execution statistics; `None` (rendered `null`) in the stable
    /// rendering.
    pub runtime: Option<RuntimeStats>,
}

impl CampaignReport {
    /// Pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// The stable rendering: runtime statistics stripped, so converged
    /// runs — however they got there — compare byte-for-byte.
    #[must_use]
    pub fn stable_json(&self) -> String {
        let mut stable = self.clone();
        stable.runtime = None;
        stable.to_json()
    }
}

/// Deduplicated per-app results, keyed (and therefore ordered) by
/// campaign id.
#[derive(Debug, Default)]
pub struct ResultStore {
    records: BTreeMap<u64, JournalRecord>,
}

impl ResultStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts one completed unit. Returns `false` (and keeps the
    /// existing record) when the id is already present — the
    /// double-count guard for journal replays and resubmission races.
    pub fn insert(&mut self, record: JournalRecord) -> bool {
        match self.records.entry(record.id) {
            std::collections::btree_map::Entry::Occupied(_) => false,
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(record);
                true
            }
        }
    }

    /// Whether a unit is already recorded.
    #[must_use]
    pub fn contains(&self, id: u64) -> bool {
        self.records.contains_key(&id)
    }

    /// Number of recorded units.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records in id order.
    pub fn records(&self) -> impl Iterator<Item = &JournalRecord> {
        self.records.values()
    }

    /// The campaign fingerprint over everything recorded so far.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut hash = 0xcbf2_9ce4_8422_2325_u64;
        for record in self.records.values() {
            let line = format!("{:016x}|{}\n", record.id, record.fingerprint);
            hash = fnv1a(line.as_bytes(), hash);
        }
        format!("{hash:016x}")
    }

    /// Rolls the store up into the campaign report. Pass the execution's
    /// [`RuntimeStats`] for the operator rendering, or `None` for the
    /// stable one.
    #[must_use]
    pub fn report(&self, runtime: Option<RuntimeStats>) -> CampaignReport {
        let mut by_family: BTreeMap<String, u64> = BTreeMap::new();
        let mut by_level: BTreeMap<String, u64> = BTreeMap::new();
        let mut api_counts: BTreeMap<&str, u64> = BTreeMap::new();
        let mut per_app = Vec::with_capacity(self.records.len());
        let mut clean = 0_u64;
        let mut mismatches = 0_u64;
        for record in self.records.values() {
            if record.findings.is_empty() {
                clean += 1;
            }
            mismatches += record.findings.len() as u64;
            for finding in &record.findings {
                *by_family.entry(finding.family.clone()).or_insert(0) += 1;
                *api_counts.entry(finding.api.as_str()).or_insert(0) += 1;
                for level in &finding.levels {
                    *by_level.entry(format!("{:02}", level.get())).or_insert(0) += 1;
                }
            }
            per_app.push(AppSummary {
                id: format!("{:016x}", record.id),
                package: record.package.clone(),
                mismatches: record.findings.len() as u64,
                fingerprint: record.fingerprint.clone(),
            });
        }
        let mut top_apis: Vec<ApiCount> = api_counts
            .into_iter()
            .map(|(api, count)| ApiCount {
                api: api.to_string(),
                count,
            })
            .collect();
        // BTreeMap already gave name-ascending order; a stable sort on
        // descending count preserves it as the tiebreak.
        top_apis.sort_by_key(|a| std::cmp::Reverse(a.count));
        top_apis.truncate(10);
        CampaignReport {
            apps: self.records.len() as u64,
            clean,
            mismatches,
            fingerprint: self.fingerprint(),
            by_family,
            by_level,
            top_apis,
            per_app,
            runtime,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JournalFinding;
    use saint_ir::ApiLevel;

    fn record(id: u64, findings: Vec<JournalFinding>) -> JournalRecord {
        JournalRecord {
            id,
            package: format!("com.app.{id}"),
            fingerprint: format!("{:016x}", id.wrapping_mul(7)),
            daemon: "127.0.0.1:9000".to_string(),
            micros: 100,
            resubmits: 0,
            findings,
        }
    }

    fn finding(family: &str, api: &str, levels: &[u8]) -> JournalFinding {
        JournalFinding {
            family: family.to_string(),
            api: api.to_string(),
            levels: levels.iter().map(|&l| ApiLevel::new(l)).collect(),
        }
    }

    #[test]
    fn duplicate_inserts_never_double_count() {
        let mut store = ResultStore::new();
        assert!(store.insert(record(7, vec![finding("API", "a.B.m()V", &[21])])));
        assert!(!store.insert(record(7, vec![finding("API", "a.B.m()V", &[21])])));
        assert_eq!(store.len(), 1);
        let report = store.report(None);
        assert_eq!(report.apps, 1);
        assert_eq!(report.mismatches, 1);
    }

    #[test]
    fn report_is_order_independent() {
        let records = [
            record(3, vec![finding("API", "a.B.m()V", &[21, 23])]),
            record(1, Vec::new()),
            record(2, vec![finding("PRM", "a.C.p()V", &[23])]),
        ];
        let mut fwd = ResultStore::new();
        let mut rev = ResultStore::new();
        for r in &records {
            fwd.insert(r.clone());
        }
        for r in records.iter().rev() {
            rev.insert(r.clone());
        }
        assert_eq!(fwd.report(None), rev.report(None));
        assert_eq!(fwd.fingerprint(), rev.fingerprint());
        let stable = fwd.report(None).stable_json();
        assert_eq!(stable, rev.report(None).stable_json());
        assert!(stable.contains("\"runtime\": null"));
    }

    #[test]
    fn rollups_count_families_levels_and_apis() {
        let mut store = ResultStore::new();
        store.insert(record(
            1,
            vec![
                finding("API", "a.B.m()V", &[21, 22]),
                finding("APC", "a.B.cb()V", &[23]),
            ],
        ));
        store.insert(record(2, vec![finding("API", "a.B.m()V", &[9])]));
        store.insert(record(3, Vec::new()));
        let report = store.report(None);
        assert_eq!(report.apps, 3);
        assert_eq!(report.clean, 1);
        assert_eq!(report.mismatches, 3);
        assert_eq!(report.by_family.get("API"), Some(&2));
        assert_eq!(report.by_family.get("APC"), Some(&1));
        // Zero-padded keys keep JSON object order numeric.
        let levels: Vec<&str> = report.by_level.keys().map(String::as_str).collect();
        assert_eq!(levels, ["09", "21", "22", "23"]);
        assert_eq!(report.top_apis[0].api, "a.B.m()V");
        assert_eq!(report.top_apis[0].count, 2);
    }

    #[test]
    fn stable_json_strips_runtime_but_keeps_fingerprint() {
        let mut store = ResultStore::new();
        store.insert(record(1, Vec::new()));
        let runtime = RuntimeStats {
            wall_secs: 1.5,
            apps_per_sec: 0.66,
            daemons: Vec::new(),
            resubmissions: 0,
            daemon_failovers: 0,
            checkpoint_flushes: 1,
        };
        let with = store.report(Some(runtime));
        assert!(with.to_json().contains("wall_secs"));
        assert_eq!(with.stable_json(), store.report(None).to_json());
        assert!(with.stable_json().contains(&store.fingerprint()));
    }
}
