//! The shard planner: consistent hashing of campaign ids onto daemon
//! endpoints.
//!
//! Each endpoint contributes [`VNODES`] points to a hash ring (the
//! classic virtual-node construction); a unit goes to the endpoint
//! owning the first ring point at or after the hash of its campaign
//! id. Two properties make this the right planner for a fleet:
//!
//! 1. **Determinism** — the assignment is a pure function of the
//!    endpoint set and the id. Run the same campaign against the same
//!    fleet twice and every unit lands on the same daemon, which keeps
//!    per-daemon behaviour reproducible and makes the fleet e2e's
//!    baseline comparison meaningful.
//! 2. **Minimal disruption** — when a daemon dies, *only* its ring
//!    points disappear. Every unit that was assigned to a survivor
//!    stays exactly where it was; the dead daemon's residual shard is
//!    redistributed across the survivors. The driver leans on this for
//!    failover: no completed or in-flight work on healthy daemons is
//!    ever reshuffled.

use crate::registry::fnv1a;

/// The splitmix64 finalizer. FNV-1a avalanches poorly in the high
/// bits for near-identical inputs (endpoint strings differing in one
/// digit, sequential vnode counters), which visibly skews the ring;
/// one mixing round restores uniformity while staying a pure,
/// dependency-free function.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Virtual nodes per endpoint. 64 points per daemon keeps the ring
/// balanced within a few percent for small fleets without making ring
/// rebuilds measurable.
pub const VNODES: usize = 64;

/// Consistent-hash assignment of campaign ids to a (mutable) set of
/// daemon endpoints. Endpoint *indices* are stable for the planner's
/// lifetime — removal marks an endpoint dead and drops its ring
/// points, it never renumbers the others.
#[derive(Debug, Clone)]
pub struct ShardPlanner {
    endpoints: Vec<String>,
    alive: Vec<bool>,
    /// `(point, endpoint index)`, sorted by point. Rebuilt on removal.
    ring: Vec<(u64, usize)>,
}

impl ShardPlanner {
    /// Builds the ring over `endpoints`. Order does not influence the
    /// assignment (points are keyed on the endpoint string), only the
    /// indices handed back by [`assign`](Self::assign).
    #[must_use]
    pub fn new(endpoints: &[String]) -> Self {
        let mut planner = ShardPlanner {
            endpoints: endpoints.to_vec(),
            alive: vec![true; endpoints.len()],
            ring: Vec::new(),
        };
        planner.rebuild();
        planner
    }

    fn rebuild(&mut self) {
        self.ring.clear();
        for (idx, endpoint) in self.endpoints.iter().enumerate() {
            if !self.alive[idx] {
                continue;
            }
            for v in 0..VNODES {
                let mut h = fnv1a(endpoint.as_bytes(), 0xcbf2_9ce4_8422_2325);
                h = fnv1a(b"#", h);
                h = fnv1a(&(v as u64).to_le_bytes(), h);
                self.ring.push((mix(h), idx));
            }
        }
        // Ties (astronomically unlikely) break on index so the ring
        // stays a deterministic function of the endpoint set.
        self.ring.sort_unstable();
    }

    /// The endpoint list as given at construction (dead ones included —
    /// indices returned by [`assign`](Self::assign) point in here).
    #[must_use]
    pub fn endpoints(&self) -> &[String] {
        &self.endpoints
    }

    /// Whether an endpoint is still in the ring.
    #[must_use]
    pub fn is_alive(&self, idx: usize) -> bool {
        self.alive.get(idx).copied().unwrap_or(false)
    }

    /// Number of endpoints still in the ring.
    #[must_use]
    pub fn alive(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Drops an endpoint's ring points (its shard redistributes to the
    /// survivors; nobody else's assignment moves). Idempotent.
    pub fn remove(&mut self, idx: usize) {
        if idx < self.alive.len() && self.alive[idx] {
            self.alive[idx] = false;
            self.rebuild();
        }
    }

    /// The endpoint index owning a campaign id, or `None` when every
    /// endpoint has been removed.
    #[must_use]
    pub fn assign(&self, id: u64) -> Option<usize> {
        if self.ring.is_empty() {
            return None;
        }
        let h = mix(fnv1a(&id.to_le_bytes(), 0xcbf2_9ce4_8422_2325));
        let at = self.ring.partition_point(|&(point, _)| point < h);
        let (_, idx) = self.ring[at % self.ring.len()];
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn endpoints(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn assignment_is_deterministic_and_order_independent() {
        let fwd = ShardPlanner::new(&endpoints(4));
        let mut rev_list = endpoints(4);
        rev_list.reverse();
        let rev = ShardPlanner::new(&rev_list);
        for id in 0..10_000_u64 {
            let a = fwd.assign(id).expect("assigned");
            let b = rev.assign(id).expect("assigned");
            // Same endpoint *string*, independent of construction order.
            assert_eq!(fwd.endpoints()[a], rev.endpoints()[b]);
        }
    }

    #[test]
    fn ring_is_reasonably_balanced() {
        let planner = ShardPlanner::new(&endpoints(4));
        let mut counts = [0_usize; 4];
        for id in 0..40_000_u64 {
            counts[planner.assign(id).expect("assigned")] += 1;
        }
        for &c in &counts {
            // Perfect balance is 10_000; virtual nodes keep every shard
            // within a loose 2x band (the driver's pipelining absorbs
            // the rest).
            assert!((5_000..=20_000).contains(&c), "skewed shard: {counts:?}");
        }
    }

    #[test]
    fn removal_moves_only_the_dead_shard() {
        let mut planner = ShardPlanner::new(&endpoints(4));
        let before: Vec<usize> = (0..10_000_u64)
            .map(|id| planner.assign(id).expect("assigned"))
            .collect();
        planner.remove(2);
        assert_eq!(planner.alive(), 3);
        for (id, &owner_before) in before.iter().enumerate() {
            let owner_after = planner.assign(id as u64).expect("assigned");
            if owner_before != 2 {
                assert_eq!(
                    owner_after, owner_before,
                    "survivor shard moved for id {id}"
                );
            } else {
                assert_ne!(owner_after, 2, "dead endpoint still assigned id {id}");
            }
        }
        // Idempotent.
        planner.remove(2);
        assert_eq!(planner.alive(), 3);
    }

    #[test]
    fn empty_ring_assigns_nothing() {
        let mut planner = ShardPlanner::new(&endpoints(2));
        planner.remove(0);
        planner.remove(1);
        assert_eq!(planner.alive(), 0);
        assert_eq!(planner.assign(42), None);
    }
}
