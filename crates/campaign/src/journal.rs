//! The campaign journal: an append-only, checksummed NDJSON record of
//! completed work units, fsync'd in batches.
//!
//! Every line has a fixed frame —
//!
//! ```text
//! {"crc":"<16 hex>","rec":{...the JournalRecord...}}
//! ```
//!
//! — where the crc is FNV-1a over the *exact* serialized record bytes
//! between `"rec":` and the closing brace. The fixed-width prefix means
//! the reader recovers the protected byte range by slicing, not by a
//! re-serialization round-trip, so verification is byte-exact against
//! whatever the writer put on disk.
//!
//! Crash model: the writer buffers records and flushes + `fsync`s the
//! batch every `checkpoint_every` records (one
//! [`Counter::CheckpointFlushes`] per sync). A crash — driver panic,
//! SIGKILL, power loss — therefore costs at most the unsynced tail.
//! [`replay`] reads the longest valid prefix: the first damaged line
//! (torn tail, bit flip, truncation) ends the replay, later bytes are
//! ignored, and the units they would have covered are simply re-scanned
//! by `campaign resume`. Records are deduplicated by campaign id (first
//! occurrence wins), so a unit journaled twice — e.g. re-scanned after
//! a mid-file flip dropped its first record's successors — never counts
//! twice. Scans are deterministic, so a duplicate's fingerprint is
//! byte-identical and dropping it loses nothing.

use std::io::Write;
use std::path::Path;
use std::sync::Arc;

use saint_ir::ApiLevel;
use saint_obs::{Counter, MetricsRegistry};
use serde::{Deserialize, Serialize};

use crate::error::CampaignError;
use crate::registry::fnv1a;
use crate::store::report_fingerprint;

/// One mismatch, reduced to what the aggregate roll-ups need. The full
/// mismatch (site, context, call chain) stays in the daemons' reports;
/// the journal carries only the campaign-level statistics so resumed
/// runs can rebuild the aggregated report without re-scanning.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalFinding {
    /// Detector family abbreviation: `API`, `APC`, or `PRM`.
    pub family: String,
    /// The offending framework API (rendered `MethodRef`).
    pub api: String,
    /// Supported device levels at which the mismatch manifests.
    pub levels: Vec<ApiLevel>,
}

/// One completed work unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// The unit's campaign id (see `registry::unit_id`).
    pub id: u64,
    /// The package name, for the human-facing report.
    pub package: String,
    /// FNV-1a fingerprint of the scan report (mismatches + meter), the
    /// quantity the convergence proof compares across runs.
    pub fingerprint: String,
    /// Endpoint of the daemon that served the scan.
    pub daemon: String,
    /// Wire latency of the scan in microseconds.
    pub micros: u64,
    /// How many times this unit was re-dispatched before completing.
    pub resubmits: u32,
    /// The unit's mismatches, reduced for aggregation.
    pub findings: Vec<JournalFinding>,
}

impl JournalRecord {
    /// Builds the record for one completed scan.
    #[must_use]
    pub fn from_report(
        id: u64,
        report: &saintdroid::Report,
        daemon: &str,
        micros: u64,
        resubmits: u32,
    ) -> Self {
        JournalRecord {
            id,
            package: report.package.clone(),
            fingerprint: report_fingerprint(report),
            daemon: daemon.to_string(),
            micros,
            resubmits,
            findings: report
                .mismatches
                .iter()
                .map(|m| JournalFinding {
                    family: m.kind.abbreviation().to_string(),
                    api: m.api.to_string(),
                    levels: m.missing_levels.clone(),
                })
                .collect(),
        }
    }
}

/// Byte offsets of the fixed line frame: `{"crc":"` + 16 hex +
/// `","rec":` + payload + `}`.
const CRC_PREFIX: &str = "{\"crc\":\"";
const REC_PREFIX: &str = "\",\"rec\":";
const PAYLOAD_AT: usize = 8 + 16 + 8;

/// Appends checksummed records, fsync'ing every `checkpoint_every`
/// records. Call [`sync`](Self::sync) before declaring a campaign
/// finished; dropping the writer flushes best-effort.
pub struct JournalWriter {
    file: std::fs::File,
    buf: Vec<u8>,
    pending: usize,
    checkpoint_every: usize,
    flushes: u64,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl JournalWriter {
    /// Creates (or truncates) the journal at `path` — the `campaign
    /// run` entry point.
    ///
    /// # Errors
    /// File creation failures.
    pub fn create(path: &Path, checkpoint_every: usize) -> Result<Self, CampaignError> {
        let file = std::fs::File::create(path).map_err(|e| {
            CampaignError::io(format!("cannot create journal {}", path.display()), e)
        })?;
        Ok(Self::over(file, checkpoint_every))
    }

    /// Opens an existing journal for appending — the `campaign resume`
    /// entry point ([`replay`] it first).
    ///
    /// # Errors
    /// [`CampaignError::JournalMissing`] when there is nothing to
    /// resume, open failures otherwise.
    pub fn append_to(path: &Path, checkpoint_every: usize) -> Result<Self, CampaignError> {
        if !path.exists() {
            return Err(CampaignError::JournalMissing {
                path: path.to_path_buf(),
            });
        }
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| CampaignError::io(format!("cannot open journal {}", path.display()), e))?;
        Ok(Self::over(file, checkpoint_every))
    }

    fn over(file: std::fs::File, checkpoint_every: usize) -> Self {
        JournalWriter {
            file,
            buf: Vec::new(),
            pending: 0,
            checkpoint_every: checkpoint_every.max(1),
            flushes: 0,
            metrics: None,
        }
    }

    /// Attaches a registry; every batch fsync bumps
    /// [`Counter::CheckpointFlushes`].
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Appends one record; flushes + fsyncs when the batch is full.
    ///
    /// # Errors
    /// Serialization or write failures.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), CampaignError> {
        let payload = serde_json::to_string(record).map_err(|e| {
            CampaignError::io("journal record serialization", std::io::Error::other(e))
        })?;
        let crc = fnv1a(payload.as_bytes(), 0xcbf2_9ce4_8422_2325);
        self.buf.extend_from_slice(CRC_PREFIX.as_bytes());
        self.buf.extend_from_slice(format!("{crc:016x}").as_bytes());
        self.buf.extend_from_slice(REC_PREFIX.as_bytes());
        self.buf.extend_from_slice(payload.as_bytes());
        self.buf.extend_from_slice(b"}\n");
        self.pending += 1;
        if self.pending >= self.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Writes the buffered batch and fsyncs it to disk.
    fn checkpoint(&mut self) -> Result<(), CampaignError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.file
            .write_all(&self.buf)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| CampaignError::io("journal checkpoint write", e))?;
        self.buf.clear();
        self.pending = 0;
        self.flushes += 1;
        if let Some(metrics) = &self.metrics {
            metrics.add(Counter::CheckpointFlushes, 1);
        }
        Ok(())
    }

    /// Checkpoint batches fsync'd by this writer so far.
    #[must_use]
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Forces the final checkpoint — call once the campaign is done.
    ///
    /// # Errors
    /// Write or fsync failures.
    pub fn sync(&mut self) -> Result<(), CampaignError> {
        self.checkpoint()
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        // Best-effort: a panicking driver still lands whatever the OS
        // will take; the real durability contract is the batched fsync.
        if !self.buf.is_empty() {
            let _ = self.file.write_all(&self.buf);
            let _ = self.file.sync_data();
        }
    }
}

/// What [`replay`] salvaged.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// The valid-prefix records, deduplicated by id (first wins), in
    /// file order.
    pub records: Vec<JournalRecord>,
    /// Valid lines consumed (duplicates included).
    pub lines: usize,
    /// Duplicate-id records dropped.
    pub duplicates: usize,
    /// Whether the file ended in a damaged line/tail that was ignored.
    pub truncated: bool,
}

/// Reads the longest valid prefix of a journal. Never panics on any
/// byte sequence: damage at line `k > 0` truncates the replay there
/// (the lost units get re-scanned); a journal whose *first* line is
/// already unreadable is rejected with a typed error, because "resume"
/// would silently be a restart.
///
/// # Errors
/// [`CampaignError::JournalMissing`] / [`CampaignError::JournalCorrupt`]
/// and I/O failures.
pub fn replay(path: &Path) -> Result<JournalReplay, CampaignError> {
    if !path.exists() {
        return Err(CampaignError::JournalMissing {
            path: path.to_path_buf(),
        });
    }
    let bytes = std::fs::read(path)
        .map_err(|e| CampaignError::io(format!("cannot read journal {}", path.display()), e))?;
    let mut out = JournalReplay::default();
    let mut seen = std::collections::HashSet::new();
    for (lineno, line) in bytes.split(|&b| b == b'\n').enumerate() {
        if line.is_empty() {
            continue; // Final newline (or a crash before any bytes).
        }
        let record = match parse_line(line) {
            Ok(record) => record,
            Err(reason) => {
                if lineno == 0 {
                    return Err(CampaignError::JournalCorrupt {
                        path: path.to_path_buf(),
                        reason,
                    });
                }
                out.truncated = true;
                break;
            }
        };
        out.lines += 1;
        if seen.insert(record.id) {
            out.records.push(record);
        } else {
            out.duplicates += 1;
        }
    }
    Ok(out)
}

/// Verifies one framed line and parses its record.
fn parse_line(line: &[u8]) -> Result<JournalRecord, String> {
    let text = std::str::from_utf8(line).map_err(|_| "not utf-8".to_string())?;
    if !text.starts_with(CRC_PREFIX) || text.len() < PAYLOAD_AT + 1 {
        return Err("missing crc frame".to_string());
    }
    let crc_hex = &text[CRC_PREFIX.len()..CRC_PREFIX.len() + 16];
    let crc = u64::from_str_radix(crc_hex, 16).map_err(|_| "crc is not hex".to_string())?;
    if &text[CRC_PREFIX.len() + 16..PAYLOAD_AT] != REC_PREFIX {
        return Err("missing rec frame".to_string());
    }
    if !text.ends_with('}') {
        return Err("torn line".to_string());
    }
    let payload = &text[PAYLOAD_AT..text.len() - 1];
    let actual = fnv1a(payload.as_bytes(), 0xcbf2_9ce4_8422_2325);
    if actual != crc {
        return Err(format!("crc mismatch ({actual:016x} != {crc_hex})"));
    }
    serde_json::from_str::<JournalRecord>(payload).map_err(|e| format!("unparseable record: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64) -> JournalRecord {
        JournalRecord {
            id,
            package: format!("com.app.{id}"),
            fingerprint: format!("{id:016x}"),
            daemon: "127.0.0.1:9000".to_string(),
            micros: 1234,
            resubmits: 0,
            findings: vec![JournalFinding {
                family: "API".to_string(),
                api: "android.x.Y.api()V".to_string(),
                levels: vec![ApiLevel::new(21), ApiLevel::new(22)],
            }],
        }
    }

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("saint-journal-{name}-{}", std::process::id()))
    }

    #[test]
    fn roundtrips_and_dedups_by_id() {
        let path = temp("roundtrip");
        let mut w = JournalWriter::create(&path, 2).expect("create");
        for id in [1, 2, 3, 2] {
            w.append(&record(id)).expect("append");
        }
        w.sync().expect("sync");
        drop(w);
        let replay = replay(&path).expect("replay");
        assert_eq!(replay.lines, 4);
        assert_eq!(replay.duplicates, 1);
        assert!(!replay.truncated);
        let ids: Vec<u64> = replay.records.iter().map(|r| r.id).collect();
        assert_eq!(ids, [1, 2, 3]);
        assert_eq!(replay.records[0], record(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_batching_counts_flushes() {
        let path = temp("flushes");
        let metrics = Arc::new(MetricsRegistry::new());
        let mut w = JournalWriter::create(&path, 3)
            .expect("create")
            .with_metrics(Arc::clone(&metrics));
        for id in 0..7 {
            w.append(&record(id)).expect("append");
        }
        // 7 records at a batch of 3: two full batches checkpointed, one
        // record still buffered.
        assert_eq!(metrics.counter(Counter::CheckpointFlushes), 2);
        w.sync().expect("sync");
        assert_eq!(metrics.counter(Counter::CheckpointFlushes), 3);
        w.sync().expect("idempotent sync");
        assert_eq!(metrics.counter(Counter::CheckpointFlushes), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_clean_truncation() {
        let path = temp("torn");
        let mut w = JournalWriter::create(&path, 1).expect("create");
        for id in 0..3 {
            w.append(&record(id)).expect("append");
        }
        w.sync().expect("sync");
        drop(w);
        // Chop the file mid-way through the last line.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 10]).expect("truncate");
        let replay = replay(&path).expect("salvage");
        assert!(replay.truncated);
        assert_eq!(replay.records.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn first_line_damage_is_a_typed_error() {
        let path = temp("first");
        std::fs::write(&path, b"not a journal at all\n").expect("write");
        let err = replay(&path).expect_err("corrupt");
        assert!(matches!(err, CampaignError::JournalCorrupt { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_journal_is_a_typed_error() {
        let err = replay(Path::new("/nonexistent/campaign.journal")).expect_err("missing");
        assert!(matches!(err, CampaignError::JournalMissing { .. }), "{err}");
    }

    #[test]
    fn bit_flip_in_payload_is_caught_by_crc() {
        let path = temp("flip");
        let mut w = JournalWriter::create(&path, 1).expect("create");
        for id in 0..3 {
            w.append(&record(id)).expect("append");
        }
        w.sync().expect("sync");
        drop(w);
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip a byte inside the second line's payload.
        let second_line_at = bytes
            .iter()
            .position(|&b| b == b'\n')
            .expect("first newline")
            + 1;
        bytes[second_line_at + PAYLOAD_AT + 4] ^= 0x01;
        std::fs::write(&path, &bytes).expect("rewrite");
        let replay = replay(&path).expect("salvage");
        assert!(replay.truncated);
        assert_eq!(replay.records.len(), 1, "prefix before the flip only");
        std::fs::remove_file(&path).ok();
    }
}
