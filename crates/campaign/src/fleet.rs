//! A supervised local fleet: N in-process scan daemons on ephemeral
//! ports, for `campaign run --fleet N`, the fleet e2e tests, and the
//! campaign bench regime.
//!
//! Each daemon is a full [`saint_service`] event-loop server with its
//! own warm [`ScanEngine`] over one *shared* framework model (the
//! frozen/curated artifacts are reference-counted, not copied). The
//! fleet names daemons `campaign-0..N-1` so `status`/`metrics`
//! provenance and the campaign report's per-daemon attribution line
//! up.
//!
//! [`kill`](LocalFleet::kill) exists for the failover tests: it begins
//! a graceful drain on one daemon, which makes that daemon answer
//! `draining` and then drop connections — exactly the signal sequence
//! the campaign driver must classify as daemon loss, not as a bad
//! package. (Process-level SIGKILL coverage lives in the CI smoke job,
//! which runs real `saintdroid serve` children.)

use std::sync::Arc;
use std::time::Duration;

use saint_adf::AndroidFramework;
use saint_service::{ServerConfig, ServerHandle};
use saintdroid::ScanEngine;

use crate::error::CampaignError;

/// Per-daemon knobs for a local fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Scan workers per daemon.
    pub jobs: usize,
    /// Queue slots beyond the workers, per daemon.
    pub queue_depth: usize,
    /// Artificial per-scan service time (capacity emulation on hosts
    /// with fewer cores than daemons); `None` runs at native speed.
    pub scan_pace: Option<Duration>,
    /// Whether to prewarm each engine before serving (pays the
    /// one-time framework cost up front; recommended outside tests
    /// that only care about wiring).
    pub prewarm: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            jobs: saintdroid::engine::default_jobs(),
            queue_depth: 64,
            scan_pace: None,
            prewarm: true,
        }
    }
}

/// N supervised in-process daemons. Dropping the fleet drains them.
pub struct LocalFleet {
    daemons: Vec<Option<ServerHandle>>,
    endpoints: Vec<String>,
}

impl LocalFleet {
    /// Starts `count` daemons over a shared framework model.
    ///
    /// # Errors
    /// Socket errors from daemon startup.
    pub fn start(
        framework: &Arc<AndroidFramework>,
        count: usize,
        cfg: &FleetConfig,
    ) -> Result<Self, CampaignError> {
        let mut daemons = Vec::with_capacity(count);
        let mut endpoints = Vec::with_capacity(count);
        for i in 0..count {
            let engine = ScanEngine::new(Arc::clone(framework));
            if cfg.prewarm {
                engine.prewarm();
            }
            let server_cfg = ServerConfig {
                listen: "127.0.0.1:0".to_string(),
                jobs: cfg.jobs.max(1),
                queue_depth: cfg.queue_depth,
                name: Some(format!("campaign-{i}")),
                scan_pace: cfg.scan_pace,
                ..ServerConfig::default()
            };
            let handle = saint_service::start(engine, &server_cfg)
                .map_err(|e| CampaignError::io(format!("cannot start fleet daemon {i}"), e))?;
            endpoints.push(handle.addr().to_string());
            daemons.push(Some(handle));
        }
        Ok(LocalFleet { daemons, endpoints })
    }

    /// The daemons' endpoints, index-aligned with the fleet.
    #[must_use]
    pub fn endpoints(&self) -> &[String] {
        &self.endpoints
    }

    /// Number of daemons started (dead or alive).
    #[must_use]
    pub fn len(&self) -> usize {
        self.daemons.len()
    }

    /// Whether the fleet has no daemons.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.daemons.is_empty()
    }

    /// Takes daemon `idx` out of the fleet: it drains (answering
    /// `draining` to new work) and exits. Idempotent; out-of-range
    /// indices are ignored.
    pub fn kill(&mut self, idx: usize) {
        if let Some(slot) = self.daemons.get_mut(idx) {
            if let Some(handle) = slot.take() {
                handle.begin_shutdown();
                handle.wait();
            }
        }
    }

    /// Drains and joins every remaining daemon.
    pub fn shutdown(&mut self) {
        let handles: Vec<ServerHandle> = self.daemons.iter_mut().filter_map(Option::take).collect();
        for handle in &handles {
            handle.begin_shutdown();
        }
        for handle in handles {
            handle.wait();
        }
    }
}

impl Drop for LocalFleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}
