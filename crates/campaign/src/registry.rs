//! The corpus registry: every package a campaign will scan, from
//! every source, behind one stable id space.
//!
//! Sources are frozen `.sfrz` corpus images (attached zero-copy via
//! [`FrozenCorpus`], so a multi-GB image contributes mapped pages, not
//! heap) and loose `.sapk` files from directories. Each package gets a
//! **campaign id**: FNV-1a over its package name and its exact
//! container bytes. The id is therefore stable across runs, across
//! machines, and across *sources* — the same app frozen into an image
//! or lying in a directory hashes identically, which is what lets
//! `campaign resume` match journal entries to work units without
//! trusting enumeration order, and lets the registry deduplicate a
//! package that appears in two images.
//!
//! The unit list is sorted by id: campaign order is a property of the
//! corpus *content*, never of filesystem iteration order.

use std::path::{Path, PathBuf};

use saint_frozen::FrozenCorpus;
use saint_ir::codec;

use crate::error::CampaignError;

/// Where a work unit's container bytes live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    /// `images[image]`, package index `index` — read zero-copy.
    Frozen {
        /// Index into the registry's attached images.
        image: usize,
        /// Package index within that image.
        index: usize,
    },
    /// `loose[idx]` — bytes read from a `.sapk` file at registration.
    Loose {
        /// Index into the registry's loose-package table.
        idx: usize,
    },
}

/// One package a campaign will scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkUnit {
    /// Stable campaign id: FNV-1a over package name + container bytes.
    pub id: u64,
    /// The package id from the container's manifest.
    pub package: String,
    source: Source,
}

/// The campaign's complete work list. Build one with
/// [`add_image`](Self::add_image) / [`add_sapk_dir`](Self::add_sapk_dir),
/// then iterate [`units`](Self::units) (id-sorted, deduplicated) and
/// fetch container bytes per unit with [`bytes`](Self::bytes).
#[derive(Debug, Default)]
pub struct CorpusRegistry {
    images: Vec<(PathBuf, FrozenCorpus)>,
    loose: Vec<Vec<u8>>,
    units: Vec<WorkUnit>,
}

impl CorpusRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a frozen corpus image and registers every package in
    /// it. Returns how many units were added (excluding duplicates of
    /// already-registered content).
    ///
    /// # Errors
    /// Attach failures and any in-image read failure — the whole image
    /// is validated here so later [`bytes`](Self::bytes) calls on a
    /// registered unit cannot hit fresh corruption.
    pub fn add_image(&mut self, path: &Path) -> Result<usize, CampaignError> {
        let corpus = FrozenCorpus::open(path).map_err(|source| CampaignError::Frozen {
            image: path.to_path_buf(),
            source,
        })?;
        let image = self.images.len();
        let mut added = 0;
        for index in 0..corpus.len() {
            let (package, container) = read_entry(&corpus, path, index)?;
            let id = unit_id(&package, container);
            added += usize::from(self.register(WorkUnit {
                id,
                package,
                source: Source::Frozen { image, index },
            }));
        }
        self.images.push((path.to_path_buf(), corpus));
        Ok(added)
    }

    /// Registers every `*.sapk` file directly inside `dir` (file-name
    /// order — the order does not matter, ids do). Returns how many
    /// units were added.
    ///
    /// # Errors
    /// Directory read failures, unreadable files, and containers that
    /// do not decode.
    pub fn add_sapk_dir(&mut self, dir: &Path) -> Result<usize, CampaignError> {
        let entries = std::fs::read_dir(dir).map_err(|e| {
            CampaignError::io(format!("cannot read directory {}", dir.display()), e)
        })?;
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let entry = entry
                .map_err(|e| CampaignError::io(format!("cannot list {}", dir.display()), e))?;
            let path = entry.path();
            if path.extension().is_some_and(|ext| ext == "sapk") {
                paths.push(path);
            }
        }
        paths.sort();
        let mut added = 0;
        for path in paths {
            let bytes = std::fs::read(&path)
                .map_err(|e| CampaignError::io(format!("cannot read {}", path.display()), e))?;
            let apk = codec::decode_apk(&bytes).map_err(|source| CampaignError::BadSapk {
                path: path.clone(),
                source,
            })?;
            let id = unit_id(&apk.manifest.package, &bytes);
            let idx = self.loose.len();
            let registered = self.register(WorkUnit {
                id,
                package: apk.manifest.package.clone(),
                source: Source::Loose { idx },
            });
            if registered {
                self.loose.push(bytes);
                added += 1;
            }
        }
        Ok(added)
    }

    /// Inserts a unit at its id-sorted position; duplicates (identical
    /// package + content, wherever they came from) are dropped.
    fn register(&mut self, unit: WorkUnit) -> bool {
        match self.units.binary_search_by_key(&unit.id, |u| u.id) {
            Ok(_) => false,
            Err(at) => {
                self.units.insert(at, unit);
                true
            }
        }
    }

    /// Every work unit, sorted by campaign id.
    #[must_use]
    pub fn units(&self) -> &[WorkUnit] {
        &self.units
    }

    /// Number of distinct work units.
    #[must_use]
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether the registry holds no work.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The unit with a given campaign id, if registered.
    #[must_use]
    pub fn find(&self, id: u64) -> Option<&WorkUnit> {
        self.units
            .binary_search_by_key(&id, |u| u.id)
            .ok()
            .map(|i| &self.units[i])
    }

    /// A unit's exact container bytes — zero-copy out of the mapped
    /// image for frozen units, a slice of the registration-time read
    /// for loose ones.
    ///
    /// # Errors
    /// Only on frozen-image corruption appearing *after* registration
    /// validated the entry (e.g. the file changed underneath the map).
    pub fn bytes(&self, unit: &WorkUnit) -> Result<&[u8], CampaignError> {
        match unit.source {
            Source::Frozen { image, index } => {
                let (path, corpus) = &self.images[image];
                corpus
                    .container(index)
                    .map_err(|source| CampaignError::Frozen {
                        image: path.clone(),
                        source,
                    })
            }
            Source::Loose { idx } => Ok(&self.loose[idx]),
        }
    }
}

/// Reads one `(package, container)` entry, wrapping errors with the
/// image path.
fn read_entry<'c>(
    corpus: &'c FrozenCorpus,
    path: &Path,
    index: usize,
) -> Result<(String, &'c [u8]), CampaignError> {
    let wrap = |source| CampaignError::Frozen {
        image: path.to_path_buf(),
        source,
    };
    let package = corpus.package(index).map_err(wrap)?.to_string();
    let container = corpus.container(index).map_err(wrap)?;
    Ok((package, container))
}

/// The stable campaign id of a `(package, container-bytes)` pair:
/// FNV-1a over the name, a `0` separator (package names never contain
/// NUL), and the exact bytes.
#[must_use]
pub fn unit_id(package: &str, container: &[u8]) -> u64 {
    let mut hash = fnv1a(package.as_bytes(), 0xcbf2_9ce4_8422_2325);
    hash = fnv1a(&[0], hash);
    fnv1a(container, hash)
}

/// FNV-1a over `bytes`, continuing from `hash` — the same
/// deterministic digest primitive the bench and retry jitter use.
#[must_use]
pub(crate) fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_ids_are_stable_and_content_addressed() {
        let a = unit_id("com.app.one", b"bytes-one");
        assert_eq!(a, unit_id("com.app.one", b"bytes-one"));
        assert_ne!(a, unit_id("com.app.one", b"bytes-two"));
        assert_ne!(a, unit_id("com.app.two", b"bytes-one"));
        // The separator keeps (name, bytes) framing unambiguous.
        assert_ne!(unit_id("a", b"bc"), unit_id("ab", b"c"));
    }

    #[test]
    fn loose_dir_registration_dedups_and_sorts_by_id() {
        let dir = std::env::temp_dir().join(format!("saint-campaign-reg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut cfg = saint_corpus::RealWorldConfig::small();
        cfg.apps = 3;
        let corpus = saint_corpus::RealWorldCorpus::new(cfg);
        for i in 0..3 {
            let apk = corpus.get(i).apk;
            let bytes = codec::encode_apk(&apk);
            std::fs::write(dir.join(format!("app{i}.sapk")), &bytes).expect("write sapk");
        }
        // A byte-identical duplicate under another name must collapse.
        std::fs::copy(dir.join("app0.sapk"), dir.join("dup.sapk")).expect("copy");
        // A non-sapk file is ignored.
        std::fs::write(dir.join("README.txt"), b"not a package").expect("write txt");

        let mut reg = CorpusRegistry::new();
        let added = reg.add_sapk_dir(&dir).expect("register dir");
        assert_eq!(added, 3, "duplicate content registers once");
        assert_eq!(reg.len(), 3);
        let ids: Vec<u64> = reg.units().iter().map(|u| u.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "units are id-ordered");
        for unit in reg.units() {
            let bytes = reg.bytes(unit).expect("bytes");
            assert_eq!(unit.id, unit_id(&unit.package, bytes));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frozen_and_loose_sources_share_the_id_space() {
        let dir = std::env::temp_dir().join(format!("saint-campaign-mix-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut cfg = saint_corpus::RealWorldConfig::small();
        cfg.apps = 4;
        let corpus = saint_corpus::RealWorldCorpus::new(cfg);
        let apks: Vec<saint_ir::Apk> = (0..4).map(|i| corpus.get(i).apk).collect();
        // Apps 0..2 frozen into an image; apps 1..4 as loose files — the
        // overlap (1, 2) must register exactly once.
        let image_path = dir.join("part.sfrz");
        std::fs::write(&image_path, saint_frozen::freeze_apks(&apks[0..3])).expect("write image");
        for (i, apk) in apks.iter().enumerate().skip(1) {
            std::fs::write(dir.join(format!("loose{i}.sapk")), codec::encode_apk(apk))
                .expect("write sapk");
        }
        let mut reg = CorpusRegistry::new();
        reg.add_image(&image_path).expect("image registers");
        let added_loose = reg.add_sapk_dir(&dir).expect("dir registers");
        assert_eq!(reg.len(), 4, "union of both sources");
        assert_eq!(added_loose, 1, "only app 3 was new");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_image_is_a_typed_error() {
        let mut reg = CorpusRegistry::new();
        let err = reg
            .add_image(Path::new("/nonexistent/campaign.sfrz"))
            .expect_err("missing image");
        assert!(matches!(err, CampaignError::Frozen { .. }), "{err}");
    }
}
