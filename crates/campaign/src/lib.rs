//! # saint-campaign — ecosystem-scale fleet campaign runner
//!
//! The service layer (PR 5/7) made one daemon fast; this crate makes
//! *many* daemons useful. A **campaign** is one pass over a large
//! corpus — frozen `.sfrz` images and/or loose `.sapk` directories —
//! fanned out across a fleet of scan daemons, with the three
//! properties an ecosystem-scale run (the paper scans 28k apps)
//! actually needs:
//!
//! 1. **Sharding** ([`ShardPlanner`]) — consistent hashing of
//!    content-addressed campaign ids onto daemon endpoints, so the
//!    work split is deterministic and losing a daemon moves *only*
//!    its shard.
//! 2. **Checkpointed resume** ([`journal`]) — an append-only,
//!    CRC-framed NDJSON journal of completions, fsync'd in batches.
//!    Kill the driver (or the whole host) at any point; `campaign
//!    resume` replays the salvageable prefix and re-scans exactly the
//!    uncovered units. Because scans are deterministic and the store
//!    deduplicates by id, the resumed campaign **converges to the
//!    same report** as an uninterrupted one — fingerprint-identical,
//!    byte-identical in the stable rendering.
//! 3. **Aggregated results** ([`ResultStore`] / [`CampaignReport`]) —
//!    per-app rows plus campaign-wide roll-ups (mismatches per
//!    detector family, per API level, top offending APIs, per-daemon
//!    throughput) in one deterministic document.
//!
//! The [`driver`] runs one [`PipelinedClient`] per daemon and applies
//! the service retry taxonomy fleet-wide: transient errors were
//! already retried against the same daemon, so when they surface the
//! daemon is declared lost and its units fail over to survivors;
//! permanent per-package rejections are isolated to the one guilty
//! unit and stop the campaign with a typed error.
//!
//! `saintdroid campaign run|resume|report` and `--fleet N` (a
//! [`LocalFleet`] of in-process daemons) wrap all of this on the CLI.
//!
//! [`PipelinedClient`]: saint_service::PipelinedClient

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod error;
pub mod fleet;
pub mod journal;
pub mod registry;
pub mod shard;
pub mod store;

pub use driver::{run_campaign, CampaignConfig, CampaignOutcome};
pub use error::CampaignError;
pub use fleet::{FleetConfig, LocalFleet};
pub use journal::{replay, JournalFinding, JournalRecord, JournalReplay, JournalWriter};
pub use registry::{unit_id, CorpusRegistry, WorkUnit};
pub use shard::{ShardPlanner, VNODES};
pub use store::{
    report_digest, report_fingerprint, ApiCount, AppSummary, CampaignReport, DaemonStats,
    ResultStore, RuntimeStats,
};
