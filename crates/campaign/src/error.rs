//! Typed campaign failures.
//!
//! The campaign layer never panics on bad external state — a missing
//! journal, a corrupt corpus image, an unreadable `.sapk`, a fleet
//! with every daemon gone — all of it surfaces here, so `campaign
//! resume` can distinguish "nothing to resume" from "the journal is
//! damaged beyond its salvageable prefix".

use std::path::PathBuf;

/// Why a campaign operation failed.
#[derive(Debug)]
pub enum CampaignError {
    /// A filesystem operation failed; `context` names what was being
    /// done (e.g. the journal or corpus path involved).
    Io {
        /// What was being attempted.
        context: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A frozen corpus image failed to attach or read.
    Frozen {
        /// The image path.
        image: PathBuf,
        /// The underlying frozen-layer error.
        source: saint_frozen::FrozenError,
    },
    /// A loose `.sapk` file did not decode as a SAPK container.
    BadSapk {
        /// The offending file.
        path: PathBuf,
        /// The decoder's error.
        source: saint_ir::CodecError,
    },
    /// The registry holds no work units (no images, empty directory).
    EmptyCorpus,
    /// The campaign was started with no daemon endpoints.
    NoDaemons,
    /// Every daemon died or became unreachable; the journal holds every
    /// unit completed before the last daemon was lost, so `campaign
    /// resume` against a healthy fleet finishes the rest.
    AllDaemonsLost {
        /// Units completed (journaled) before the fleet was lost.
        completed: usize,
        /// Units that could not be dispatched anywhere.
        lost: usize,
    },
    /// A daemon answered one specific package with a permanent, typed
    /// rejection (`bad_package`, `too_large`, …) — resubmitting it
    /// anywhere would only repeat the answer, so the campaign stops
    /// and names the unit.
    UnitRejected {
        /// The rejected package id.
        package: String,
        /// The daemon's error code.
        code: String,
        /// The daemon's error message.
        message: String,
    },
    /// `campaign resume`/`report` was pointed at a journal that does
    /// not exist.
    JournalMissing {
        /// The missing path.
        path: PathBuf,
    },
    /// The journal's first line is already unreadable — there is no
    /// salvageable prefix, and resuming would silently restart the
    /// whole campaign. (Mid-file damage is handled by truncating to the
    /// valid prefix instead; see `journal::replay`.)
    JournalCorrupt {
        /// The journal path.
        path: PathBuf,
        /// What was wrong with the line.
        reason: String,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io { context, source } => write!(f, "{context}: {source}"),
            CampaignError::Frozen { image, source } => {
                write!(f, "corpus image {}: {source}", image.display())
            }
            CampaignError::BadSapk { path, source } => {
                write!(f, "not a SAPK container {}: {source}", path.display())
            }
            CampaignError::EmptyCorpus => write!(f, "campaign corpus holds no packages"),
            CampaignError::NoDaemons => write!(f, "campaign needs at least one daemon endpoint"),
            CampaignError::AllDaemonsLost { completed, lost } => write!(
                f,
                "every daemon was lost mid-campaign ({completed} units journaled, {lost} \
                 undispatchable); fix the fleet and `campaign resume`"
            ),
            CampaignError::UnitRejected {
                package,
                code,
                message,
            } => write!(
                f,
                "package {package} permanently rejected by the service: {code} ({message})"
            ),
            CampaignError::JournalMissing { path } => {
                write!(f, "journal {} does not exist", path.display())
            }
            CampaignError::JournalCorrupt { path, reason } => {
                write!(f, "journal {} is corrupt: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Io { source, .. } => Some(source),
            CampaignError::Frozen { source, .. } => Some(source),
            CampaignError::BadSapk { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl CampaignError {
    /// Convenience constructor for I/O failures with context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        CampaignError::Io {
            context: context.into(),
            source,
        }
    }
}
