//! The campaign driver: one pipelined connection per daemon, shard
//! queues fed by the consistent-hash planner, failover on daemon loss,
//! and journaled completion.
//!
//! Threading model: one worker thread per endpoint inside a
//! [`std::thread::scope`]. Each worker owns its
//! [`PipelinedClient`] and drains its own shard queue in chunks; the
//! shared state (queues, planner, journal + store sink, progress
//! counters) is behind short critical sections, so the scan RPCs —
//! where all the time goes — run lock-free and fully parallel across
//! daemons.
//!
//! Failure taxonomy (the PR-5/PR-7 retry classes, applied fleet-wide):
//!
//! - **Transient** (transport loss, `busy`, `internal`): the client
//!   already retried against the same daemon with backoff; if the
//!   error still surfaces, the daemon is presumed dead. The worker
//!   *fails over*: the dead daemon leaves the ring (survivor shards do
//!   not move — see [`ShardPlanner`]), and its unscanned units are
//!   re-queued onto survivors as resubmissions. `draining` lands here
//!   too: a daemon announcing shutdown is a daemon leaving the fleet.
//! - **Permanent** (`bad_package`, `too_large`, `timeout`, …): retrying
//!   elsewhere would repeat the answer. Because a pipelined chunk fails
//!   as a unit, the worker first isolates the offender by re-scanning
//!   the chunk one unit at a time, journaling the innocent ones, then
//!   stops the campaign with a typed [`CampaignError::UnitRejected`].
//!
//! Crash safety: any worker panic (including injected
//! [`FaultPoint::CampaignDispatch`] faults) flips a shared abort flag
//! on unwind so sibling workers stop dispatching, the journal's Drop
//! flushes what it can, and the panic propagates out of the scope. The
//! journal is the only state that matters: `campaign resume` replays
//! it and re-scans exactly the units it does not cover.

use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use saint_faults::FaultPoint;
use saint_obs::{Counter, MetricsRegistry};
use saint_service::{ClientError, PipelinedClient, RetryPolicy, DEFAULT_WINDOW};
use saint_sync::Mutex;

use crate::error::CampaignError;
use crate::journal::{replay, JournalRecord, JournalWriter};
use crate::registry::CorpusRegistry;
use crate::shard::ShardPlanner;
use crate::store::{DaemonStats, ResultStore, RuntimeStats};

/// Knobs for one campaign execution.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// In-flight scans per daemon connection (the pipelining window).
    pub window: usize,
    /// Same-daemon retries before a worker declares its daemon lost.
    pub retries: u32,
    /// Journal records per fsync batch.
    pub checkpoint_every: usize,
    /// Optional per-scan deadline forwarded to the daemons.
    pub deadline_ms: Option<u64>,
    /// Units a worker claims from its shard queue per dispatch — the
    /// journal/checkpoint granularity, distinct from `window` (the
    /// wire-level pipelining within one dispatch).
    pub chunk: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            window: DEFAULT_WINDOW,
            retries: 3,
            checkpoint_every: 32,
            deadline_ms: None,
            chunk: 8,
        }
    }
}

/// What a finished campaign execution hands back.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Every recorded unit — replayed and freshly scanned alike.
    pub store: ResultStore,
    /// Units scanned by *this* execution.
    pub completed: usize,
    /// Units skipped because the journal already covered them.
    pub resumed: usize,
    /// Journal records ignored because their ids are not in this
    /// corpus (a journal from a different campaign, or a shrunk one).
    pub foreign: usize,
    /// Whether the replayed journal ended in a damaged tail.
    pub journal_truncated: bool,
    /// Wall-clock and fleet statistics for this execution.
    pub runtime: RuntimeStats,
}

/// Journal writer and result store behind one lock: a record is
/// journaled in the same critical section that admits it to the store,
/// so the two can never disagree about what is complete.
struct Sink {
    journal: JournalWriter,
    store: ResultStore,
}

/// Everything the workers share.
struct FleetState<'a> {
    registry: &'a CorpusRegistry,
    /// Per-endpoint shard queues of unit indices.
    queues: Vec<Mutex<VecDeque<usize>>>,
    planner: Mutex<ShardPlanner>,
    sink: Mutex<Sink>,
    /// Units neither journaled nor declared lost yet. The workers'
    /// termination condition.
    outstanding: AtomicUsize,
    /// Units that could not be dispatched anywhere (fleet exhausted).
    lost: AtomicUsize,
    /// Per-unit resubmission counts (indexed like `registry.units()`).
    resubmits: Vec<AtomicU64>,
    /// Per-endpoint completion counts.
    per_daemon: Vec<AtomicU64>,
    resubmissions: AtomicU64,
    failovers: AtomicU64,
    /// Set on fatal errors and worker panics: stop dispatching.
    aborted: AtomicBool,
    fatal: Mutex<Option<CampaignError>>,
}

impl FleetState<'_> {
    fn bump(&self, metrics: Option<&Arc<MetricsRegistry>>, counter: Counter, n: u64) {
        if let Some(m) = metrics {
            m.add(counter, n);
        }
    }

    fn abort_with(&self, err: CampaignError) {
        let mut fatal = self.fatal.lock();
        if fatal.is_none() {
            *fatal = Some(err);
        }
        self.aborted.store(true, Ordering::SeqCst);
    }
}

/// Flips the fleet abort flag when a worker unwinds, so an injected
/// panic in one worker cannot leave the others polling forever.
struct AbortOnUnwind<'a>(&'a AtomicBool);

impl Drop for AbortOnUnwind<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::SeqCst);
        }
    }
}

/// Whether an error means "this daemon is gone" (fail over) rather
/// than "this package is bad" (isolate and stop).
fn is_daemon_loss(err: &ClientError) -> bool {
    if err.is_transient() {
        return true;
    }
    matches!(err, ClientError::Rejected(e) if e.code == saint_service::protocol::error_code::DRAINING)
}

/// Runs (or resumes) a campaign over `registry` against `endpoints`.
///
/// With `resume`, the journal at `journal_path` is replayed first and
/// only uncovered units are dispatched; the final report is provably
/// the converged one because the store deduplicates by content-derived
/// id. Without `resume`, the journal is created fresh (truncating any
/// previous one).
///
/// # Errors
/// [`CampaignError::EmptyCorpus`] / [`CampaignError::NoDaemons`] on
/// empty inputs, journal errors per [`replay`], and the driver-level
/// failures ([`CampaignError::AllDaemonsLost`],
/// [`CampaignError::UnitRejected`]).
///
/// # Panics
/// Propagates worker panics (in practice: injected
/// [`FaultPoint::CampaignDispatch`] faults) after aborting the fleet;
/// the journal keeps every checkpointed completion.
pub fn run_campaign(
    registry: &CorpusRegistry,
    endpoints: &[String],
    journal_path: &Path,
    resume: bool,
    cfg: &CampaignConfig,
    metrics: Option<&Arc<MetricsRegistry>>,
) -> Result<CampaignOutcome, CampaignError> {
    if registry.is_empty() {
        return Err(CampaignError::EmptyCorpus);
    }
    if endpoints.is_empty() {
        return Err(CampaignError::NoDaemons);
    }

    // Seed the store from the journal's salvageable prefix on resume.
    let mut store = ResultStore::new();
    let mut resumed = 0_usize;
    let mut foreign = 0_usize;
    let mut journal_truncated = false;
    if resume {
        let replayed = replay(journal_path)?;
        journal_truncated = replayed.truncated;
        for record in replayed.records {
            if registry.find(record.id).is_some() {
                if store.insert(record) {
                    resumed += 1;
                }
            } else {
                foreign += 1;
            }
        }
    }
    let mut journal = if resume {
        JournalWriter::append_to(journal_path, cfg.checkpoint_every)?
    } else {
        JournalWriter::create(journal_path, cfg.checkpoint_every)?
    };
    if let Some(m) = metrics {
        journal = journal.with_metrics(Arc::clone(m));
    }

    // Shard the uncovered units across the fleet.
    let planner = ShardPlanner::new(endpoints);
    let mut queues: Vec<VecDeque<usize>> = endpoints.iter().map(|_| VecDeque::new()).collect();
    let mut remaining = 0_usize;
    for (idx, unit) in registry.units().iter().enumerate() {
        if store.contains(unit.id) {
            continue;
        }
        // A fresh planner always has a non-empty ring here.
        if let Some(owner) = planner.assign(unit.id) {
            queues[owner].push_back(idx);
            remaining += 1;
        }
    }

    let started = Instant::now();
    let state = FleetState {
        registry,
        queues: queues.into_iter().map(Mutex::new).collect(),
        planner: Mutex::new(planner),
        sink: Mutex::new(Sink { journal, store }),
        outstanding: AtomicUsize::new(remaining),
        lost: AtomicUsize::new(0),
        resubmits: registry.units().iter().map(|_| AtomicU64::new(0)).collect(),
        per_daemon: endpoints.iter().map(|_| AtomicU64::new(0)).collect(),
        resubmissions: AtomicU64::new(0),
        failovers: AtomicU64::new(0),
        aborted: AtomicBool::new(false),
        fatal: Mutex::new(None),
    };

    std::thread::scope(|scope| {
        for (idx, endpoint) in endpoints.iter().enumerate() {
            let state = &state;
            scope.spawn(move || worker(state, idx, endpoint, cfg, metrics));
        }
    });

    if let Some(err) = state.fatal.lock().take() {
        return Err(err);
    }
    let FleetState {
        sink,
        outstanding: _,
        lost,
        per_daemon,
        resubmissions,
        failovers,
        ..
    } = state;
    let mut sink = sink.into_inner();
    sink.journal.sync()?;
    let lost = lost.load(Ordering::SeqCst);
    if lost > 0 {
        return Err(CampaignError::AllDaemonsLost {
            completed: sink.store.len(),
            lost,
        });
    }

    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    let completed = sink.store.len() - resumed;
    let runtime = RuntimeStats {
        wall_secs,
        apps_per_sec: completed as f64 / wall_secs,
        daemons: endpoints
            .iter()
            .enumerate()
            .map(|(i, endpoint)| {
                let apps = per_daemon[i].load(Ordering::SeqCst);
                DaemonStats {
                    endpoint: endpoint.clone(),
                    apps,
                    apps_per_sec: apps as f64 / wall_secs,
                }
            })
            .collect(),
        resubmissions: resubmissions.load(Ordering::SeqCst),
        daemon_failovers: failovers.load(Ordering::SeqCst),
        checkpoint_flushes: sink.journal.flushes(),
    };
    Ok(CampaignOutcome {
        store: sink.store,
        completed,
        resumed,
        foreign,
        journal_truncated,
        runtime,
    })
}

/// One endpoint's worker: drain the shard queue in chunks over a
/// pipelined connection, journal completions, fail over on loss.
fn worker(
    state: &FleetState<'_>,
    me: usize,
    endpoint: &str,
    cfg: &CampaignConfig,
    metrics: Option<&Arc<MetricsRegistry>>,
) {
    let _abort_guard = AbortOnUnwind(&state.aborted);
    let mut client = match PipelinedClient::connect(endpoint, cfg.window.max(1)) {
        Ok(client) => {
            let mut client = client.with_retry_policy(RetryPolicy::new(cfg.retries));
            if let Some(m) = metrics {
                client = client.with_metrics(Arc::clone(m));
            }
            client
        }
        Err(_) => {
            // Unreachable from the start — the daemon is already gone.
            fail_over(state, me, Vec::new(), metrics);
            return;
        }
    };

    loop {
        if state.aborted.load(Ordering::SeqCst) {
            return;
        }
        let batch: Vec<usize> = {
            let mut queue = state.queues[me].lock();
            let take = cfg.chunk.max(1).min(queue.len());
            queue.drain(..take).collect()
        };
        if batch.is_empty() {
            if state.outstanding.load(Ordering::SeqCst) == 0 || !state.planner.lock().is_alive(me) {
                return;
            }
            // Another daemon's shard may yet fail over to us.
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }

        saint_faults::trip(FaultPoint::CampaignDispatch);
        state.bump(metrics, Counter::AppsDispatched, batch.len() as u64);

        let mut payloads: Vec<&[u8]> = Vec::with_capacity(batch.len());
        for &unit_idx in &batch {
            match state.registry.bytes(&state.registry.units()[unit_idx]) {
                Ok(bytes) => payloads.push(bytes),
                Err(err) => {
                    // Local corpus corruption, not a fleet problem.
                    state.abort_with(err);
                    return;
                }
            }
        }

        match client.scan_all_timed(&payloads, cfg.deadline_ms) {
            Ok((responses, latencies)) => {
                if !complete_batch(state, me, endpoint, &batch, &responses, &latencies, metrics) {
                    return;
                }
            }
            Err(err) if is_daemon_loss(&err) => {
                fail_over(state, me, batch, metrics);
                return;
            }
            Err(err) => {
                // A permanent rejection hides somewhere in the chunk;
                // isolate it one unit at a time.
                if !isolate_rejection(state, me, endpoint, &mut client, batch, err, cfg, metrics) {
                    return;
                }
            }
        }
    }
}

/// Journals a completed batch. Returns `false` on a fatal journal
/// failure (the campaign aborts).
#[allow(clippy::too_many_arguments)]
fn complete_batch(
    state: &FleetState<'_>,
    me: usize,
    endpoint: &str,
    batch: &[usize],
    responses: &[saint_service::ScanResponse],
    latencies: &[Duration],
    metrics: Option<&Arc<MetricsRegistry>>,
) -> bool {
    let mut sink = state.sink.lock();
    for ((&unit_idx, response), latency) in batch.iter().zip(responses).zip(latencies) {
        let unit = &state.registry.units()[unit_idx];
        let record = JournalRecord::from_report(
            unit.id,
            &response.report,
            endpoint,
            u64::try_from(latency.as_micros()).unwrap_or(u64::MAX),
            u32::try_from(state.resubmits[unit_idx].load(Ordering::SeqCst)).unwrap_or(u32::MAX),
        );
        if sink.store.insert(record.clone()) {
            if let Err(err) = sink.journal.append(&record) {
                state.abort_with(err);
                return false;
            }
            state.bump(metrics, Counter::AppsCompleted, 1);
            state.per_daemon[me].fetch_add(1, Ordering::SeqCst);
        }
        state.outstanding.fetch_sub(1, Ordering::SeqCst);
    }
    true
}

/// Takes a lost daemon out of the ring and re-queues its orphaned
/// units onto the survivors (or declares them lost when there are
/// none).
fn fail_over(
    state: &FleetState<'_>,
    me: usize,
    mut orphans: Vec<usize>,
    metrics: Option<&Arc<MetricsRegistry>>,
) {
    let mut planner = state.planner.lock();
    if planner.is_alive(me) {
        planner.remove(me);
        state.failovers.fetch_add(1, Ordering::SeqCst);
        state.bump(metrics, Counter::DaemonFailovers, 1);
    }
    orphans.extend(state.queues[me].lock().drain(..));
    for unit_idx in orphans {
        let id = state.registry.units()[unit_idx].id;
        match planner.assign(id) {
            Some(target) => {
                state.queues[target].lock().push_back(unit_idx);
                state.resubmits[unit_idx].fetch_add(1, Ordering::SeqCst);
                state.resubmissions.fetch_add(1, Ordering::SeqCst);
                state.bump(metrics, Counter::Resubmissions, 1);
            }
            None => {
                // No survivors: account the unit as lost so the run
                // can terminate and report `AllDaemonsLost`.
                state.lost.fetch_add(1, Ordering::SeqCst);
                state.outstanding.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Re-scans a rejected chunk one unit at a time so exactly one unit
/// takes the blame. Returns `false` when the worker must stop (fatal
/// rejection recorded, or the daemon died mid-isolation).
#[allow(clippy::too_many_arguments)]
fn isolate_rejection(
    state: &FleetState<'_>,
    me: usize,
    endpoint: &str,
    client: &mut PipelinedClient,
    batch: Vec<usize>,
    chunk_error: ClientError,
    cfg: &CampaignConfig,
    metrics: Option<&Arc<MetricsRegistry>>,
) -> bool {
    for (at, &unit_idx) in batch.iter().enumerate() {
        let unit = &state.registry.units()[unit_idx];
        let bytes = match state.registry.bytes(unit) {
            Ok(bytes) => bytes,
            Err(err) => {
                state.abort_with(err);
                return false;
            }
        };
        match client.scan_all_timed(&[bytes], cfg.deadline_ms) {
            Ok((responses, latencies)) => {
                if !complete_batch(
                    state,
                    me,
                    endpoint,
                    &batch[at..=at],
                    &responses,
                    &latencies,
                    metrics,
                ) {
                    return false;
                }
            }
            Err(err) if is_daemon_loss(&err) => {
                fail_over(state, me, batch[at..].to_vec(), metrics);
                return false;
            }
            Err(err) => {
                let (code, message) = match &err {
                    ClientError::Rejected(e) => (e.code.clone(), e.message.clone()),
                    other => ("io".to_string(), other.to_string()),
                };
                state.abort_with(CampaignError::UnitRejected {
                    package: unit.package.clone(),
                    code,
                    message,
                });
                return false;
            }
        }
    }
    // Every unit passed individually — the chunk-level error was a
    // one-off (e.g. a transient the client classified permanent). Log
    // nothing, keep going; the taxonomy gets another chance next chunk.
    let _ = chunk_error;
    true
}
