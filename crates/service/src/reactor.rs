//! The event loop: one thread owning every client socket.
//!
//! ```text
//!                 ┌───────────────────────────────────────────┐
//!                 │            reactor (one thread)           │
//!   accept ──────▶│  poller: listener + wake pipe + N conns   │
//!   TCP clients ─▶│  per-conn: read_buf → lines → admit/park  │
//!                 │  write_q → writev (zero-copy frames)      │
//!                 └───────┬───────────────────────▲───────────┘
//!                  submit │                       │ completions
//!                 ┌───────▼───────┐      ┌────────┴──────────┐
//!                 │   JobQueue    │ next │  scan workers     │
//!                 │  (bounded)    ├─────▶│  (self-healing)   │──▶ wake pipe
//!                 └───────────────┘      └───────────────────┘
//! ```
//!
//! Per-connection state machine: **reading** (bounded line
//! accumulation) → **parsing** (fast-path scan extraction, value-tree
//! fallback) → **queued** (admitted to the [`JobQueue`], or *parked*
//! under backpressure) → **responding** (frames drained by `writev`).
//!
//! Backpressure replaces the old O(1) `busy` rejection: when a
//! connection's in-flight window fills, or the job queue is at
//! capacity, the overflowing request is *parked* (one per connection)
//! and the connection's reads are suspended — the client's own TCP
//! send buffer backs up, which is the flow control. Reads resume when
//! completions drain the queue. `busy` survives only for the
//! degenerate `queue_depth = 0` configuration, which tests use to
//! exercise the rejection path.
//!
//! Responses are serialized exactly once, worker-side, into the frame
//! the reactor writes from ([`Responder::send`]) — the zero-copy path:
//! no re-serialization, no intermediate copy, `writev` straight out of
//! the frame buffers.
//!
//! Request settlement is a single atomic: the worker's delivery, the
//! reactor's deadline expiry, and the crashed-worker drop guard all
//! race on [`Responder`]'s `settled` swap, and exactly one side wins —
//! so a request is answered exactly once, and late reports for
//! timed-out or disconnected requests are discarded, never misdelivered.

use std::collections::{BinaryHeap, VecDeque};
use std::io::{IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use saint_obs::Counter;
use saint_sync::Mutex;
use serde::Deserialize as _;

use crate::protocol::{self, error_code, Envelope, ErrorResponse, PROTOCOL_VERSION};
use crate::queue::{Admission, Job};
use crate::server::Shared;

/// Bytes appended to a connection's read buffer per `read` call.
const READ_CHUNK: usize = 128 * 1024;

/// Reads per readiness event before yielding back to the poller, so
/// one firehose connection cannot starve its peers.
const READS_PER_EVENT: usize = 4;

/// Frames handed to one `writev` call (IOV_MAX is far higher
/// everywhere; this bounds stack usage).
const FRAMES_PER_WRITEV: usize = 32;

/// Idle safety tick: the loop wakes at least this often even with no
/// events, deadlines, or completions pending.
const IDLE_TICK: Duration = Duration::from_millis(250);

/// How long a draining daemon waits for stalled clients to accept
/// their last frames before force-closing them.
const DRAIN_GRACE: Duration = Duration::from_secs(10);

/// Poller token of the TCP listener.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Poller token of the wake-pipe read end.
const TOKEN_WAKE: u64 = u64::MAX - 1;

// ---------------------------------------------------------------------
// Worker → reactor hand-off
// ---------------------------------------------------------------------

/// A finished response frame addressed to one connection generation.
pub(crate) struct Completion {
    slot: usize,
    gen: u64,
    frame: Vec<u8>,
}

/// The mailbox scan workers drop finished frames into, plus the wake
/// pipe that gets the reactor's attention. Shared by every worker and
/// the drop guards of in-queue jobs.
pub(crate) struct CompletionSink {
    completions: Mutex<Vec<Completion>>,
    wake_tx: UnixStream,
}

impl CompletionSink {
    pub(crate) fn new(wake_tx: UnixStream) -> Self {
        CompletionSink {
            completions: Mutex::new(Vec::new()),
            wake_tx,
        }
    }

    fn push(&self, completion: Completion) {
        self.completions.lock().push(completion);
        self.wake();
    }

    /// Pokes the reactor. A full pipe means a wake is already pending,
    /// so `WouldBlock` (and any other failure — the reactor polls on a
    /// safety tick regardless) is ignorable.
    pub(crate) fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1]);
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock())
    }
}

/// The response end of one admitted scan: whoever wins the `settled`
/// swap — worker delivery, reactor deadline, or this guard's drop —
/// answers the request, exactly once.
pub(crate) struct Responder {
    sink: Arc<CompletionSink>,
    slot: usize,
    gen: u64,
    id: Option<u64>,
    settled: Arc<AtomicBool>,
    state: ResponderState,
}

enum ResponderState {
    Fresh,
    Won,
    Done,
}

impl Responder {
    pub(crate) fn new(
        sink: Arc<CompletionSink>,
        slot: usize,
        gen: u64,
        id: Option<u64>,
        settled: Arc<AtomicBool>,
    ) -> Self {
        Responder {
            sink,
            slot,
            gen,
            id,
            settled,
            state: ResponderState::Fresh,
        }
    }

    /// The request id to echo on the response frame.
    pub(crate) fn id(&self) -> Option<u64> {
        self.id
    }

    /// Whether the request was already answered (deadline expiry);
    /// workers use this to skip stale queue entries without scanning.
    pub(crate) fn is_settled(&self) -> bool {
        self.settled.load(Ordering::Acquire)
    }

    /// Claims the right to answer. `true` at most once per request
    /// across all racing parties; after `true`, [`send`](Self::send)
    /// must follow (the drop guard covers the panic window between).
    pub(crate) fn begin(&mut self) -> bool {
        if self.settled.swap(true, Ordering::AcqRel) {
            self.state = ResponderState::Done;
            false
        } else {
            self.state = ResponderState::Won;
            true
        }
    }

    /// Defuses the drop guard: the request is being re-parked (queue
    /// rejection) and a fresh responder will be minted on readmission.
    pub(crate) fn disarm(mut self) {
        self.state = ResponderState::Done;
    }

    /// Ships the serialized response frame to the reactor.
    pub(crate) fn send(mut self, frame: Vec<u8>) {
        self.state = ResponderState::Done;
        self.sink.push(Completion {
            slot: self.slot,
            gen: self.gen,
            frame,
        });
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        let won = match self.state {
            ResponderState::Done => return,
            ResponderState::Won => true,
            ResponderState::Fresh => !self.settled.swap(true, Ordering::AcqRel),
        };
        if !won {
            return;
        }
        // The worker unwound between dequeue and delivery (injected
        // `queue_handoff` fault, or a real bug): the client gets the
        // same typed answer the thread-per-connection daemon gave.
        let err = ErrorResponse::new(
            error_code::INTERNAL,
            "scan worker crashed before completing the job; resubmit",
        )
        .with_phase("queue_handoff")
        .with_id(self.id);
        self.sink.push(Completion {
            slot: self.slot,
            gen: self.gen,
            frame: protocol::to_line(&err).into_bytes(),
        });
    }
}

/// Live reactor gauges read by `status`/`metrics` (counters live in
/// the [`MetricsRegistry`](saint_obs::MetricsRegistry)).
#[derive(Default)]
pub(crate) struct ReactorGauges {
    /// Connections currently owned by the reactor.
    pub(crate) open_conns: AtomicUsize,
    /// Scans received and not yet answered, across all connections.
    pub(crate) inflight: AtomicUsize,
    /// Connections whose reads are suspended for backpressure.
    pub(crate) suspended: AtomicUsize,
}

// ---------------------------------------------------------------------
// Reactor internals
// ---------------------------------------------------------------------

/// A scan request that exists but is not yet admitted to the queue —
/// the "parked" slot of the backpressure protocol.
struct PendingScan {
    package_b64: String,
    id: Option<u64>,
    settled: Arc<AtomicBool>,
    /// Routes the job through the incremental artifact store
    /// (`delta` verb) instead of a plain scan.
    delta: bool,
}

/// One deadline-armed request, ordered soonest-first in the heap.
struct DeadlineEntry {
    at: Instant,
    seq: u64,
    slot: usize,
    gen: u64,
    id: Option<u64>,
    settled: Arc<AtomicBool>,
}

impl PartialEq for DeadlineEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for DeadlineEntry {}
impl PartialOrd for DeadlineEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DeadlineEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the soonest
        // deadline on top.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

struct Conn {
    stream: TcpStream,
    gen: u64,
    /// Unframed bytes; complete lines are consumed left to right and
    /// the partial tail is compacted to the front.
    read_buf: Vec<u8>,
    /// Response frames awaiting the socket, first frame partially
    /// written up to `write_off`.
    write_q: VecDeque<Vec<u8>>,
    write_off: usize,
    /// Scans received and unanswered (admitted + parked).
    inflight: usize,
    /// At most one request waiting for queue space or window room.
    parked: Option<PendingScan>,
    /// Reads suspended (backpressure); mirrored in the gauges.
    suspended: bool,
    /// Peer closed its write half; serve what's in flight, then close.
    read_closed: bool,
    /// Flush the write queue, then close (lost framing or drain).
    closing: bool,
    /// Interest set currently registered with the poller.
    registered: crate::sys::Interest,
}

impl Conn {
    /// The interest set this connection's state wants.
    fn desired_interest(&self) -> crate::sys::Interest {
        crate::sys::Interest {
            read: !self.suspended && !self.read_closed && !self.closing,
            write: !self.write_q.is_empty(),
        }
    }
}

/// What handling one request line did to the connection's read flow.
enum LineFlow {
    /// Keep consuming buffered lines.
    Continue,
    /// The line parked a scan; stop reading until backpressure lifts.
    Parked,
    /// The connection is closing; stop consuming.
    Stop,
}

pub(crate) struct Reactor {
    shared: Arc<Shared>,
    poller: crate::sys::Poller,
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    conns: Vec<Option<Conn>>,
    /// Generation per slot, bumped on reuse so stale completions and
    /// deadline entries for a previous occupant are discarded.
    gens: Vec<u64>,
    free: Vec<usize>,
    deadlines: BinaryHeap<DeadlineEntry>,
    deadline_seq: u64,
    /// Set once the drain transition (close listener, quiesce conns)
    /// has run.
    draining: bool,
    drain_started: Option<Instant>,
}

impl Reactor {
    pub(crate) fn new(
        shared: Arc<Shared>,
        listener: TcpListener,
        wake_rx: UnixStream,
    ) -> std::io::Result<Self> {
        let mut poller = crate::sys::Poller::new()?;
        poller.register(
            listener.as_raw_fd(),
            TOKEN_LISTENER,
            crate::sys::Interest {
                read: true,
                write: false,
            },
        )?;
        poller.register(
            wake_rx.as_raw_fd(),
            TOKEN_WAKE,
            crate::sys::Interest {
                read: true,
                write: false,
            },
        )?;
        Ok(Reactor {
            shared,
            poller,
            listener: Some(listener),
            wake_rx,
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            deadlines: BinaryHeap::new(),
            deadline_seq: 0,
            draining: false,
            drain_started: None,
        })
    }

    /// The loop. Returns when the daemon has fully drained: listener
    /// closed, every connection flushed and gone.
    pub(crate) fn run(mut self) {
        let mut events: Vec<crate::sys::PollEvent> = Vec::new();
        loop {
            let timeout = self.next_timeout();
            if self.poller.wait(Some(timeout), &mut events).is_err() {
                // A failing poller is unrecoverable; drop everything so
                // clients see closed connections rather than silence.
                return;
            }
            let mut accept_ready = false;
            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => accept_ready = true,
                    TOKEN_WAKE => self.drain_wake_pipe(),
                    token => {
                        self.on_conn_event(token as usize, ev.readable, ev.writable, ev.hangup)
                    }
                }
            }
            // Completions can arrive between the wake byte and the
            // poll; draining unconditionally is one cheap lock.
            self.process_completions();
            self.fire_deadlines();
            self.pump_parked();
            if accept_ready {
                self.accept_ready();
            }
            if self.shared.shutting_down.load(Ordering::Acquire) {
                self.enter_drain();
                if self.drain_finished() {
                    return;
                }
            }
        }
    }

    /// Sleep budget: the soonest of the next request deadline, the
    /// drain force-close point, and the idle safety tick.
    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        let mut timeout = IDLE_TICK;
        if let Some(entry) = self.deadlines.peek() {
            timeout = timeout.min(entry.at.saturating_duration_since(now));
        }
        if let Some(started) = self.drain_started {
            let force_at = started + DRAIN_GRACE;
            timeout = timeout.min(force_at.saturating_duration_since(now));
        }
        timeout
    }

    fn drain_wake_pipe(&mut self) {
        let mut buf = [0_u8; 256];
        loop {
            match self.wake_rx.read(&mut buf) {
                Ok(0) => return, // all wake writers gone
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock or a real error: drained
            }
        }
    }

    // -- accept ------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock, or transient (EMFILE):
                                  // retry on the next readiness event
            };
            if self.shared.shutting_down.load(Ordering::Acquire) {
                drop(stream);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            // One-line responses must leave immediately, not sit in
            // Nagle's buffer waiting for the client's delayed ACK.
            let _ = stream.set_nodelay(true);
            let slot = match self.free.pop() {
                Some(slot) => slot,
                None => {
                    self.conns.push(None);
                    self.gens.push(0);
                    self.conns.len() - 1
                }
            };
            self.gens[slot] += 1;
            let gen = self.gens[slot];
            let interest = crate::sys::Interest {
                read: true,
                write: false,
            };
            if self
                .poller
                .register(stream.as_raw_fd(), slot as u64, interest)
                .is_err()
            {
                self.free.push(slot);
                continue;
            }
            self.conns[slot] = Some(Conn {
                stream,
                gen,
                read_buf: Vec::new(),
                write_q: VecDeque::new(),
                write_off: 0,
                inflight: 0,
                parked: None,
                suspended: false,
                read_closed: false,
                closing: false,
                registered: interest,
            });
            self.shared
                .gauges
                .open_conns
                .fetch_add(1, Ordering::Relaxed);
            self.shared.registry.add(Counter::ConnectionsAccepted, 1);
        }
    }

    // -- connection events -------------------------------------------

    fn on_conn_event(&mut self, slot: usize, readable: bool, writable: bool, hangup: bool) {
        if self.conns.get(slot).is_none_or(Option::is_none) {
            return; // closed earlier in this batch
        }
        if writable {
            self.flush(slot);
        }
        if readable {
            self.on_readable(slot);
        }
        if hangup {
            if let Some(conn) = self.conn(slot) {
                // EPOLLHUP/ERR without readable data left: the socket
                // is dead in both directions.
                if !readable || conn.read_closed {
                    self.close(slot);
                }
            }
        }
    }

    fn conn(&mut self, slot: usize) -> Option<&mut Conn> {
        self.conns.get_mut(slot).and_then(Option::as_mut)
    }

    fn on_readable(&mut self, slot: usize) {
        let max_line = self.shared.max_line_bytes;
        let mut saw_eof = false;
        {
            let Some(conn) = self.conn(slot) else { return };
            if conn.suspended || conn.read_closed || conn.closing {
                return; // stale level-triggered event
            }
            for _ in 0..READS_PER_EVENT {
                let len = conn.read_buf.len();
                conn.read_buf.resize(len + READ_CHUNK, 0);
                match conn.stream.read(&mut conn.read_buf[len..]) {
                    Ok(0) => {
                        conn.read_buf.truncate(len);
                        saw_eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.read_buf.truncate(len + n);
                        if n < READ_CHUNK {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                        conn.read_buf.truncate(len);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        conn.read_buf.truncate(len);
                        break;
                    }
                    Err(_) => {
                        conn.read_buf.truncate(len);
                        self.close(slot);
                        return;
                    }
                }
            }
        }
        self.process_lines(slot);
        if saw_eof {
            self.on_read_eof(slot);
            return;
        }
        // Oversized-line guard: after consuming complete lines, what
        // remains is one partial line from offset 0.
        let partial_over = self
            .conn(slot)
            .is_some_and(|conn| conn.read_buf.len() > max_line);
        if partial_over {
            self.answer_too_large(slot);
        }
    }

    /// Answers `too_large` and schedules a flush-then-close: an
    /// over-limit line costs the connection its framing, never the
    /// daemon.
    fn answer_too_large(&mut self, slot: usize) {
        let max_line = self.shared.max_line_bytes;
        let Some(conn) = self.conn(slot) else { return };
        conn.read_buf = Vec::new();
        conn.closing = true; // framing is lost — flush, then close
        let err = ErrorResponse::new(
            error_code::TOO_LARGE,
            format!("request line exceeds {max_line} bytes"),
        );
        self.push_frame(slot, protocol::to_line(&err).into_bytes());
    }

    /// Peer closed its write half: any unterminated tail still counts
    /// as a request (mirrors the bounded reader's EOF contract), then
    /// the connection closes once everything in flight is answered and
    /// flushed.
    fn on_read_eof(&mut self, slot: usize) {
        let tail = {
            let Some(conn) = self.conn(slot) else { return };
            conn.read_closed = true;
            std::mem::take(&mut conn.read_buf)
        };
        if !tail.is_empty() {
            let Some(conn) = self.conn(slot) else { return };
            if conn.parked.is_none() {
                let _ = self.handle_line(slot, &tail);
            }
            // A parked connection drops the tail: its reads were
            // already suspended, and the peer is gone anyway.
        }
        self.maybe_finish(slot);
    }

    /// Consumes complete lines from the read buffer until it runs dry,
    /// a request parks, or the connection closes.
    fn process_lines(&mut self, slot: usize) {
        let max_line = self.shared.max_line_bytes;
        loop {
            let line = {
                let Some(conn) = self.conn(slot) else { return };
                if conn.parked.is_some() || conn.closing {
                    return;
                }
                let Some(pos) = conn.read_buf.iter().position(|&b| b == b'\n') else {
                    return;
                };
                let mut line: Vec<u8> = conn.read_buf.drain(..=pos).collect();
                line.pop(); // the newline
                line
            };
            if line.len() > max_line {
                self.answer_too_large(slot);
                return;
            }
            if line.iter().all(|b| b.is_ascii_whitespace()) {
                continue;
            }
            match self.handle_line(slot, &line) {
                LineFlow::Continue => {}
                LineFlow::Parked | LineFlow::Stop => return,
            }
        }
    }

    /// Parses and services one request line.
    fn handle_line(&mut self, slot: usize, line: &[u8]) -> LineFlow {
        let Ok(text) = std::str::from_utf8(line) else {
            let err = ErrorResponse::new(
                error_code::MALFORMED,
                "not a protocol message: invalid UTF-8",
            );
            self.push_frame(slot, protocol::to_line(&err).into_bytes());
            return LineFlow::Continue;
        };
        // Hot path: a scan request recognized without a value tree.
        if let Some(fast) = protocol::parse_scan_fast(text) {
            if fast.v != u64::from(PROTOCOL_VERSION) {
                let err = ErrorResponse::new(
                    error_code::UNSUPPORTED_VERSION,
                    format!(
                        "protocol v{} requested, server speaks v{PROTOCOL_VERSION}",
                        fast.v
                    ),
                )
                .with_id(fast.id);
                self.push_frame(slot, protocol::to_line(&err).into_bytes());
                return LineFlow::Continue;
            }
            if let Some(spec) = fast.detectors {
                if let Some(msg) = self.shared.detector_mismatch(spec) {
                    let err =
                        ErrorResponse::new(error_code::DETECTOR_MISMATCH, msg).with_id(fast.id);
                    self.push_frame(slot, protocol::to_line(&err).into_bytes());
                    return LineFlow::Continue;
                }
            }
            return self.begin_scan(
                slot,
                fast.package_b64.to_owned(),
                fast.id,
                fast.deadline_ms,
                false,
            );
        }
        // Slow path: full value-tree dispatch (non-scan verbs, and any
        // scan shape the fast parser deferred on).
        let value = match serde_json::from_str_value(text) {
            Ok(value) => value,
            Err(e) => {
                let err = ErrorResponse::new(
                    error_code::MALFORMED,
                    format!("not a protocol message: {e}"),
                );
                self.push_frame(slot, protocol::to_line(&err).into_bytes());
                return LineFlow::Continue;
            }
        };
        // Attribute errors to the request id whenever one is readable,
        // so pipelined clients can match rejections to requests.
        let id = value.get("id").and_then(serde::Value::as_u64);
        let envelope = match Envelope::from_value(&value) {
            Ok(env) => env,
            Err(e) => {
                let err = ErrorResponse::new(
                    error_code::MALFORMED,
                    format!("not a protocol message: {e}"),
                )
                .with_id(id);
                self.push_frame(slot, protocol::to_line(&err).into_bytes());
                return LineFlow::Continue;
            }
        };
        if envelope.v != PROTOCOL_VERSION {
            let err = ErrorResponse::new(
                error_code::UNSUPPORTED_VERSION,
                format!(
                    "protocol v{} requested, server speaks v{PROTOCOL_VERSION}",
                    envelope.v
                ),
            )
            .with_id(id);
            self.push_frame(slot, protocol::to_line(&err).into_bytes());
            return LineFlow::Continue;
        }
        match envelope.kind.as_deref() {
            // `delta` shares the scan request shape end to end; the
            // flag only changes which worker path serves the job.
            Some(kind @ ("scan" | "delta")) => {
                use crate::protocol::ScanRequest;
                match ScanRequest::from_value(&value) {
                    Ok(req) => {
                        if let Some(spec) = req.detectors.as_deref() {
                            if let Some(msg) = self.shared.detector_mismatch(spec) {
                                let err = ErrorResponse::new(error_code::DETECTOR_MISMATCH, msg)
                                    .with_id(req.id);
                                self.push_frame(slot, protocol::to_line(&err).into_bytes());
                                return LineFlow::Continue;
                            }
                        }
                        self.begin_scan(
                            slot,
                            req.package_b64,
                            req.id,
                            req.deadline_ms,
                            kind == "delta",
                        )
                    }
                    Err(e) => {
                        let err = ErrorResponse::new(
                            error_code::MALFORMED,
                            format!("bad {kind} request: {e}"),
                        )
                        .with_id(id);
                        self.push_frame(slot, protocol::to_line(&err).into_bytes());
                        LineFlow::Continue
                    }
                }
            }
            Some("status") => {
                let frame = protocol::to_line(&self.shared.status()).into_bytes();
                self.push_frame(slot, frame);
                LineFlow::Continue
            }
            Some("metrics") => {
                let frame = protocol::to_line(&self.shared.metrics()).into_bytes();
                self.push_frame(slot, frame);
                LineFlow::Continue
            }
            Some("shutdown") => {
                // Acknowledge with the final counters, then drain.
                let frame = protocol::to_line(&self.shared.status()).into_bytes();
                self.push_frame(slot, frame);
                self.shared.begin_shutdown();
                LineFlow::Stop
            }
            other => {
                let err = ErrorResponse::new(
                    error_code::MALFORMED,
                    format!("unknown request kind {other:?}"),
                )
                .with_id(id);
                self.push_frame(slot, protocol::to_line(&err).into_bytes());
                LineFlow::Continue
            }
        }
    }

    // -- scan admission & backpressure -------------------------------

    /// Registers a freshly received scan (in-flight accounting + its
    /// deadline), then tries to admit it.
    fn begin_scan(
        &mut self,
        slot: usize,
        package_b64: String,
        id: Option<u64>,
        deadline_ms: Option<u64>,
        delta: bool,
    ) -> LineFlow {
        let settled = Arc::new(AtomicBool::new(false));
        let gen = match self.conn(slot) {
            Some(conn) => {
                conn.inflight += 1;
                conn.gen
            }
            None => return LineFlow::Stop,
        };
        self.shared.gauges.inflight.fetch_add(1, Ordering::Relaxed);
        if let Some(ms) = deadline_ms {
            self.deadline_seq += 1;
            self.deadlines.push(DeadlineEntry {
                at: Instant::now() + Duration::from_millis(ms),
                seq: self.deadline_seq,
                slot,
                gen,
                id,
                settled: Arc::clone(&settled),
            });
        }
        self.admit(
            slot,
            PendingScan {
                package_b64,
                id,
                settled,
                delta,
            },
        )
    }

    /// Admits a pending scan to the job queue, parks it under
    /// backpressure, or answers it with a terminal rejection.
    fn admit(&mut self, slot: usize, pending: PendingScan) -> LineFlow {
        // A deadline may have fired while the request was parked; it
        // was already answered and accounted then.
        if pending.settled.load(Ordering::Acquire) {
            return LineFlow::Continue;
        }
        if self.shared.queue.is_draining() {
            return self.reject(slot, &pending.settled, pending.id, error_code::DRAINING);
        }
        // The degenerate zero-capacity queue keeps the legacy O(1)
        // rejection: there is nothing to park toward.
        if self.shared.queue.capacity() == 0 {
            self.shared.queue.note_rejected_busy();
            return self.reject(slot, &pending.settled, pending.id, error_code::BUSY);
        }
        let window = self.shared.window;
        let window_full = self.conn(slot).is_some_and(|conn| conn.inflight > window);
        if window_full {
            return self.park(slot, pending);
        }
        let gen = match self.conn(slot) {
            Some(conn) => conn.gen,
            None => return LineFlow::Stop,
        };
        let PendingScan {
            package_b64,
            id,
            settled,
            delta,
        } = pending;
        let responder = Responder::new(
            Arc::clone(&self.shared.sink),
            slot,
            gen,
            id,
            Arc::clone(&settled),
        );
        let job = Job {
            package_b64,
            responder,
            enqueued_at: Instant::now(),
            delta,
        };
        match self.shared.queue.submit(job) {
            Ok(()) => LineFlow::Continue,
            Err((job, admission)) => {
                let Job {
                    package_b64,
                    responder,
                    ..
                } = job;
                responder.disarm();
                match admission {
                    Admission::Busy => self.park(
                        slot,
                        PendingScan {
                            package_b64,
                            id,
                            settled,
                            delta,
                        },
                    ),
                    Admission::Draining => self.reject(slot, &settled, id, error_code::DRAINING),
                }
            }
        }
    }

    /// Answers a pending scan with a typed rejection (if nothing beat
    /// us to it) and releases its in-flight accounting.
    fn reject(
        &mut self,
        slot: usize,
        settled: &AtomicBool,
        id: Option<u64>,
        code: &str,
    ) -> LineFlow {
        if settled.swap(true, Ordering::AcqRel) {
            return LineFlow::Continue; // deadline answered it first
        }
        self.dec_inflight(slot);
        let message = match code {
            error_code::BUSY => "queue at capacity (0); resubmit later",
            _ => "daemon is draining for shutdown",
        };
        let err = ErrorResponse::new(code, message).with_id(id);
        self.push_frame(slot, protocol::to_line(&err).into_bytes());
        LineFlow::Continue
    }

    /// Parks the scan and suspends the connection's reads — the
    /// explicit backpressure that replaced `busy` rejections.
    fn park(&mut self, slot: usize, pending: PendingScan) -> LineFlow {
        let Some(conn) = self.conn(slot) else {
            return LineFlow::Stop;
        };
        debug_assert!(conn.parked.is_none(), "one parked request per connection");
        conn.parked = Some(pending);
        if !conn.suspended {
            conn.suspended = true;
            self.shared.gauges.suspended.fetch_add(1, Ordering::Relaxed);
            self.shared.registry.add(Counter::BackpressureSuspends, 1);
        }
        self.update_interest(slot);
        LineFlow::Parked
    }

    /// Retries every parked request; connections whose park clears get
    /// their buffered lines processed and reads resumed.
    fn pump_parked(&mut self) {
        for slot in 0..self.conns.len() {
            let Some(pending) = self.conn(slot).and_then(|conn| conn.parked.take()) else {
                continue;
            };
            match self.admit(slot, pending) {
                LineFlow::Parked | LineFlow::Stop => continue,
                LineFlow::Continue => {}
            }
            // Unparked: lift the suspension, work through anything the
            // client pipelined behind the parked request, and resume
            // reading if no new park resulted.
            if let Some(conn) = self.conn(slot) {
                if conn.suspended {
                    conn.suspended = false;
                    self.shared.gauges.suspended.fetch_sub(1, Ordering::Relaxed);
                }
            }
            self.process_lines(slot);
            if self.conn(slot).is_some_and(|c| c.read_closed) {
                self.maybe_finish(slot);
            }
            self.update_interest(slot);
        }
    }

    // -- completions & deadlines -------------------------------------

    fn process_completions(&mut self) {
        let completions = self.shared.sink.drain();
        for completion in completions {
            let alive = self
                .conn(completion.slot)
                .is_some_and(|conn| conn.gen == completion.gen);
            if !alive {
                continue; // connection died mid-scan; drop the frame
            }
            self.dec_inflight(completion.slot);
            self.push_frame(completion.slot, completion.frame);
            if self.conn(completion.slot).is_some_and(|c| c.read_closed) {
                self.maybe_finish(completion.slot);
            }
        }
    }

    fn fire_deadlines(&mut self) {
        let now = Instant::now();
        while let Some(entry) = self.deadlines.peek() {
            if entry.at > now {
                break;
            }
            let Some(entry) = self.deadlines.pop() else {
                break;
            };
            if entry.settled.swap(true, Ordering::AcqRel) {
                continue; // already answered; nothing expired
            }
            // The scan is abandoned: a worker that dequeues it later
            // skips it, a worker mid-scan will lose the settle race.
            self.shared.queue.mark_timed_out();
            let alive = self
                .conn(entry.slot)
                .is_some_and(|conn| conn.gen == entry.gen);
            if !alive {
                continue;
            }
            self.dec_inflight(entry.slot);
            let err = ErrorResponse::new(
                error_code::TIMEOUT,
                "deadline expired before the scan finished",
            )
            .with_id(entry.id);
            self.push_frame(entry.slot, protocol::to_line(&err).into_bytes());
            if self.conn(entry.slot).is_some_and(|c| c.read_closed) {
                self.maybe_finish(entry.slot);
            }
        }
    }

    fn dec_inflight(&mut self, slot: usize) {
        if let Some(conn) = self.conn(slot) {
            conn.inflight = conn.inflight.saturating_sub(1);
        }
        self.shared.gauges.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    // -- writing ------------------------------------------------------

    fn push_frame(&mut self, slot: usize, frame: Vec<u8>) {
        let Some(conn) = self.conn(slot) else { return };
        conn.write_q.push_back(frame);
        self.flush(slot);
    }

    /// Writes as much of the queue as the socket accepts, vectored
    /// across frames — the frames workers serialized are the buffers
    /// handed to the kernel, nothing is re-copied.
    fn flush(&mut self, slot: usize) {
        let mut closed = false;
        {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            let mut stalled = false;
            while !conn.write_q.is_empty() {
                let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(FRAMES_PER_WRITEV);
                for (i, frame) in conn.write_q.iter().take(FRAMES_PER_WRITEV).enumerate() {
                    if i == 0 {
                        slices.push(IoSlice::new(&frame[conn.write_off..]));
                    } else {
                        slices.push(IoSlice::new(frame));
                    }
                }
                match conn.stream.write_vectored(&slices) {
                    Ok(0) => {
                        closed = true;
                        break;
                    }
                    Ok(mut n) => {
                        while n > 0 {
                            let first_left = conn.write_q[0].len() - conn.write_off;
                            if n >= first_left {
                                n -= first_left;
                                conn.write_q.pop_front();
                                conn.write_off = 0;
                            } else {
                                conn.write_off += n;
                                n = 0;
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        stalled = true;
                        break;
                    }
                    Err(_) => {
                        closed = true;
                        break;
                    }
                }
            }
            if stalled && !conn.registered.write {
                // Count stall *transitions*, not every short write.
                self.shared.registry.add(Counter::WriteStalls, 1);
            }
        }
        if closed {
            self.close(slot);
            return;
        }
        let done = self
            .conn(slot)
            .is_some_and(|conn| conn.write_q.is_empty() && conn.closing);
        if done {
            self.close(slot);
            return;
        }
        if self
            .conn(slot)
            .is_some_and(|conn| conn.write_q.is_empty() && conn.read_closed)
        {
            self.maybe_finish(slot);
            if self.conns.get(slot).is_none_or(Option::is_none) {
                return;
            }
        }
        self.update_interest(slot);
    }

    /// Closes a half-closed connection once nothing remains to answer
    /// or flush.
    fn maybe_finish(&mut self, slot: usize) {
        let finished = self.conn(slot).is_some_and(|conn| {
            conn.read_closed
                && conn.inflight == 0
                && conn.parked.is_none()
                && conn.write_q.is_empty()
        });
        if finished {
            self.close(slot);
        }
    }

    fn update_interest(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let desired = conn.desired_interest();
        if desired == conn.registered {
            return;
        }
        let fd = conn.stream.as_raw_fd();
        conn.registered = desired;
        if self.poller.reregister(fd, slot as u64, desired).is_err() {
            self.close(slot);
        }
    }

    fn close(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.shared
            .gauges
            .open_conns
            .fetch_sub(1, Ordering::Relaxed);
        if conn.suspended {
            self.shared.gauges.suspended.fetch_sub(1, Ordering::Relaxed);
        }
        // In-flight scans die with the connection: their completions
        // will be dropped on the generation check. The parked request
        // (never admitted) is simply forgotten.
        let abandoned = conn.inflight + usize::from(conn.parked.is_some());
        if abandoned > 0 {
            self.shared
                .gauges
                .inflight
                .fetch_sub(abandoned, Ordering::Relaxed);
        }
        self.free.push(slot);
    }

    // -- drain --------------------------------------------------------

    /// One-time transition into drain mode, then per-iteration
    /// housekeeping: quiesce reads, answer parked requests with
    /// `draining`, close whatever has quiesced, force-close stragglers
    /// after the grace period.
    fn enter_drain(&mut self) {
        if !self.draining {
            self.draining = true;
            self.drain_started = Some(Instant::now());
            if let Some(listener) = self.listener.take() {
                let _ = self.poller.deregister(listener.as_raw_fd());
            }
            for slot in 0..self.conns.len() {
                // Parked requests cannot be admitted anymore — the
                // queue is draining. Answer them now.
                if let Some(pending) = self.conn(slot).and_then(|c| c.parked.take()) {
                    if !pending.settled.swap(true, Ordering::AcqRel) {
                        self.dec_inflight(slot);
                        let err = ErrorResponse::new(
                            error_code::DRAINING,
                            "daemon is draining for shutdown",
                        )
                        .with_id(pending.id);
                        self.push_frame(slot, protocol::to_line(&err).into_bytes());
                    }
                }
                if let Some(conn) = self.conn(slot) {
                    conn.closing = conn.inflight == 0 && conn.write_q.is_empty();
                }
            }
        }
        let force = self
            .drain_started
            .is_some_and(|started| started.elapsed() >= DRAIN_GRACE);
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conn(slot) else {
                continue;
            };
            if force || (conn.inflight == 0 && conn.parked.is_none() && conn.write_q.is_empty()) {
                self.close(slot);
            } else {
                self.update_interest(slot);
            }
        }
    }

    fn drain_finished(&self) -> bool {
        self.draining && self.conns.iter().all(Option::is_none)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink() -> (Arc<CompletionSink>, UnixStream) {
        let (tx, rx) = UnixStream::pair().expect("socketpair");
        rx.set_nonblocking(true).expect("nonblocking");
        (Arc::new(CompletionSink::new(tx)), rx)
    }

    #[test]
    fn responder_settles_exactly_once() {
        let (sink, _rx) = sink();
        let settled = Arc::new(AtomicBool::new(false));
        let mut a = Responder::new(Arc::clone(&sink), 0, 1, Some(7), Arc::clone(&settled));
        let mut b = Responder::new(Arc::clone(&sink), 0, 1, Some(7), Arc::clone(&settled));
        assert!(a.begin(), "first claim wins");
        assert!(!b.begin(), "second claim loses");
        a.send(b"frame\n".to_vec());
        drop(b); // loser's drop must not synthesize an error frame
        let completions = sink.drain();
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].frame, b"frame\n");
    }

    #[test]
    fn dropped_responder_answers_queue_handoff() {
        let (sink, _rx) = sink();
        let settled = Arc::new(AtomicBool::new(false));
        let responder = Responder::new(Arc::clone(&sink), 3, 9, Some(42), settled);
        drop(responder); // simulates the worker unwinding mid-job
        let completions = sink.drain();
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].slot, 3);
        assert_eq!(completions[0].gen, 9);
        let line = String::from_utf8(completions[0].frame.clone()).expect("utf8");
        assert!(line.contains("queue_handoff"), "{line}");
        assert!(line.contains("\"id\":42"), "{line}");
    }

    #[test]
    fn settled_responder_drop_is_silent() {
        let (sink, _rx) = sink();
        let settled = Arc::new(AtomicBool::new(true)); // deadline won already
        let responder = Responder::new(Arc::clone(&sink), 0, 1, None, settled);
        drop(responder);
        assert!(sink.drain().is_empty(), "no frame for a settled request");
    }

    #[test]
    fn deadline_heap_orders_soonest_first() {
        let now = Instant::now();
        let mk = |offset_ms: u64, seq: u64| DeadlineEntry {
            at: now + Duration::from_millis(offset_ms),
            seq,
            slot: 0,
            gen: 0,
            id: None,
            settled: Arc::new(AtomicBool::new(false)),
        };
        let mut heap = BinaryHeap::new();
        heap.push(mk(300, 1));
        heap.push(mk(100, 2));
        heap.push(mk(200, 3));
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }
}
