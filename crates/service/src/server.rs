//! The daemon: a warm [`ScanEngine`] behind a nonblocking event loop.
//!
//! Thread model (std-only — no async runtime is vendored):
//!
//! ```text
//!            ┌────────────────────────────────────────────┐
//!            │   reactor (ONE thread, epoll event loop)   │
//!            │  listener + wake pipe + every client conn  │
//!            └──────┬──────────────────────────▲──────────┘
//!            submit │                          │ completions
//!            ┌──────▼─────────────────────┐    │ + wake byte
//!            │ JobQueue (bounded, typed   │    │
//!            │ admission, drain-to-empty) │    │
//!            └──────┬──────────────┬──────┘    │
//!              next │         next │           │
//!            ┌──────▼─────┐ ┌──────▼─────┐     │  `jobs` scan workers
//!            │  worker 0  │ │  worker …  ├─────┘  over ONE warm
//!            └────────────┘ └────────────┘        ScanEngine
//! ```
//!
//! The reactor (see [`crate::reactor`]) owns every socket: readiness-
//! driven reads, per-connection state machines, pipelined request ids,
//! backpressure by read suspension, and `writev` response flushing.
//! Workers own everything per-scan that is CPU: base64 decode, SAPK
//! decode (panic-isolated, preserving the `decode` fault point), and
//! the scan itself — so the event loop never blocks on payload work
//! and scales scan throughput with the worker pool, not with
//! connection count.
//!
//! The engine is built once, [prewarmed](ScanEngine::prewarm), and
//! reused for the process lifetime: the framework model, the
//! [`ShardedClassCache`], [`ArtifactCache`], and `DeepScanCache` all
//! survive across requests — the amortization the batch engine gets
//! within one process, extended to a stream of requests (the paper's
//! RQ3 scalability claim in its deployed shape).
//!
//! [`ShardedClassCache`]: saint_analysis::ShardedClassCache
//! [`ArtifactCache`]: saint_analysis::ArtifactCache

use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use saint_ir::codec;
use saint_obs::{Counter, MetricsRegistry};
use saint_sync::Mutex;
use saintdroid::{panic_message, Report, ScanEngine, ScanError};

use crate::protocol::{
    self, error_code, ErrorResponse, MetricsResponse, ReactorStatus, ScanResponse, StatusResponse,
    PROTOCOL_VERSION,
};
use crate::queue::JobQueue;
use crate::reactor::{CompletionSink, Reactor, ReactorGauges};

/// How the daemon is shaped; see the crate docs for the CLI mapping.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7744`; port `0` binds an
    /// ephemeral port (the bound address is reported by
    /// [`ServerHandle::addr`]).
    pub listen: String,
    /// Concurrent scan workers over the warm engine.
    pub jobs: usize,
    /// Admission bound: scans queued beyond the workers. `0` rejects
    /// whenever no queue slot is free — useful for tests.
    pub queue_depth: usize,
    /// Per-connection pipeline window: scans one connection may have
    /// unanswered before its reads are suspended (backpressure).
    pub window: usize,
    /// Per-line byte ceiling; longer requests get `too_large`.
    pub max_line_bytes: usize,
    /// Operator-assigned daemon name, echoed in `status`/`metrics`
    /// provenance so fleet tooling can attribute results per daemon.
    pub name: Option<String>,
    /// Artificial per-scan service time: each worker sleeps this long
    /// after every scan. `None` (the default) disables it. This exists
    /// for capacity emulation in benches and tests — on a host with
    /// fewer cores than daemons, CPU-bound scans cannot show fleet
    /// scaling, but paced daemons expose whether the campaign layer
    /// keeps N of them saturated.
    pub scan_pace: Option<Duration>,
    /// Root of the incremental artifact store served to `delta`
    /// requests (conventionally `.saint/delta`). `None` (the default)
    /// disables the verb: `delta` requests are answered with a plain
    /// full scan and no reuse accounting.
    pub delta_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:7744".to_string(),
            jobs: saintdroid::engine::default_jobs(),
            queue_depth: 64,
            window: DEFAULT_WINDOW,
            max_line_bytes: protocol::MAX_LINE_BYTES,
            name: None,
            scan_pace: None,
            delta_dir: None,
        }
    }
}

/// The default per-connection pipeline window, shared by the daemon
/// ([`ServerConfig::default`]) and the `submit --pipeline` client so
/// the two sides agree out of the box.
pub const DEFAULT_WINDOW: usize = 64;

/// How often the supervisor polls for dead scan workers.
const SUPERVISE_POLL: Duration = Duration::from_millis(25);

pub(crate) struct Shared {
    pub(crate) engine: ScanEngine,
    /// Operator-assigned daemon name (see [`ServerConfig::name`]).
    pub(crate) name: Option<String>,
    /// Post-scan worker sleep (see [`ServerConfig::scan_pace`]).
    pub(crate) scan_pace: Option<Duration>,
    /// Warm incremental scanner over the configured artifact store
    /// (see [`ServerConfig::delta_dir`]); `None` disables the verb.
    pub(crate) delta: Option<saint_delta::DeltaScanner>,
    pub(crate) queue: JobQueue,
    pub(crate) registry: Arc<MetricsRegistry>,
    pub(crate) started: Instant,
    pub(crate) shutting_down: AtomicBool,
    pub(crate) addr: SocketAddr,
    pub(crate) max_line_bytes: usize,
    /// Per-connection pipeline window (see [`ServerConfig::window`]).
    pub(crate) window: usize,
    /// Worker → reactor completion mailbox + wake pipe.
    pub(crate) sink: Arc<CompletionSink>,
    /// Live reactor state for `status`/`metrics`.
    pub(crate) gauges: ReactorGauges,
    /// Live scan-worker handles, owned by the supervisor (which reaps
    /// finished ones and respawns replacements) and read by `status`.
    pub(crate) scan_workers: Mutex<Vec<JoinHandle<()>>>,
    /// Monotone name counter so respawned workers get fresh names.
    next_worker_id: AtomicUsize,
}

impl Shared {
    fn reactor_status(&self) -> ReactorStatus {
        ReactorStatus {
            open_connections: self.gauges.open_conns.load(Ordering::Relaxed) as u64,
            inflight: self.gauges.inflight.load(Ordering::Relaxed) as u64,
            suspended_connections: self.gauges.suspended.load(Ordering::Relaxed) as u64,
            connections_accepted: self.registry.counter(Counter::ConnectionsAccepted),
            backpressure_suspends: self.registry.counter(Counter::BackpressureSuspends),
            write_stalls: self.registry.counter(Counter::WriteStalls),
        }
    }

    pub(crate) fn status(&self) -> StatusResponse {
        let q = self.queue.stats();
        StatusResponse {
            v: PROTOCOL_VERSION,
            kind: "status".to_string(),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            jobs_served: q.served,
            jobs_active: q.active,
            scan_workers: self
                .scan_workers
                .lock()
                .iter()
                .filter(|h| !h.is_finished())
                .count(),
            queue_depth: q.depth,
            queue_capacity: q.capacity,
            rejected_busy: q.rejected_busy,
            timed_out: q.timed_out,
            draining: q.draining,
            class_cache: self.engine.cache_stats().map(Into::into),
            artifact_cache: self.engine.artifact_cache_stats().map(Into::into),
            scan_cache: self.engine.scan_cache_stats().map(Into::into),
            frozen: self.engine.frozen_boot().map(Into::into),
            reactor: Some(self.reactor_status()),
            daemon: self.name.clone(),
            detectors: Some(self.engine.tool().detectors().to_string()),
        }
    }

    /// Checks a request's `detectors` assertion against the warm
    /// engine's enabled set. `None` means the assertion holds; `Some`
    /// carries the `detector_mismatch` message — a report computed by
    /// the wrong detector families must never be served silently.
    pub(crate) fn detector_mismatch(&self, requested: &str) -> Option<String> {
        let enabled = self.engine.tool().detectors();
        match saintdroid::DetectorSet::parse(requested) {
            Ok(set) if set == enabled => None,
            Ok(set) => Some(format!(
                "daemon runs detectors `{enabled}`, request asserts `{set}`"
            )),
            Err(e) => Some(format!("bad detectors spec `{requested}`: {e}")),
        }
    }

    /// The unified observability view: the engine's snapshot (phase
    /// spans, counters, caches, meter) extended with live queue and
    /// reactor state.
    pub(crate) fn metrics(&self) -> MetricsResponse {
        let mut snap = self.engine.metrics_snapshot();
        let q = self.queue.stats();
        snap.queue = Some(saint_obs::QueueSnapshot {
            depth: q.depth as u64,
            capacity: q.capacity as u64,
            active: q.active as u64,
            served: q.served,
            rejected_busy: q.rejected_busy,
            timed_out: q.timed_out,
        });
        MetricsResponse::new(snap)
            .with_frozen(self.engine.frozen_boot().map(Into::into))
            .with_reactor(Some(self.reactor_status()))
    }

    /// Flips the daemon into drain mode exactly once: admission closes,
    /// queued scans finish, and the reactor is woken so it closes the
    /// listener and quiesces connections.
    pub(crate) fn begin_shutdown(&self) {
        if self
            .shutting_down
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        self.queue.drain();
        self.sink.wake();
    }
}

/// A running daemon; dropped handles leave the threads running —
/// call [`wait`](Self::wait) to block until shutdown completes.
pub struct ServerHandle {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound listen address (resolves port `0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Triggers the same graceful drain a protocol `shutdown` request
    /// does (for embedders; remote clients use the protocol message).
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the reactor and every worker thread has exited —
    /// i.e. until a shutdown request arrived, the queue drained, and
    /// all connections flushed.
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Binds the listener, builds the reactor, spawns the worker pool, and
/// returns immediately. The engine should already be
/// [prewarmed](ScanEngine::prewarm) so the first request pays no
/// one-time framework cost.
///
/// # Errors
/// Propagates socket errors (bind/poller registration).
pub fn start(engine: ScanEngine, cfg: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.listen)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    // A daemon always carries a registry (engines built without one
    // get a fresh one here) so every `metrics` request has an answer
    // and queue waits are accounted from the first job.
    let engine = engine.ensure_metrics();
    let Some(registry) = engine.metrics().cloned() else {
        return Err(std::io::Error::other("engine lost its metrics registry"));
    };
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;
    let sink = Arc::new(CompletionSink::new(wake_tx));
    let shared = Arc::new(Shared {
        queue: JobQueue::new(cfg.queue_depth).with_metrics(Arc::clone(&registry)),
        engine,
        name: cfg.name.clone(),
        scan_pace: cfg.scan_pace,
        delta: cfg.delta_dir.as_ref().map(saint_delta::DeltaScanner::new),
        registry,
        started: Instant::now(),
        shutting_down: AtomicBool::new(false),
        addr,
        max_line_bytes: cfg.max_line_bytes,
        window: cfg.window.max(1),
        sink,
        gauges: ReactorGauges::default(),
        scan_workers: Mutex::new(Vec::new()),
        next_worker_id: AtomicUsize::new(0),
    });

    let jobs = cfg.jobs.max(1);
    {
        let mut workers = shared.scan_workers.lock();
        for _ in 0..jobs {
            workers.push(spawn_scan_worker(Arc::clone(&shared))?);
        }
    }
    // Built before spawning so registration failures surface here.
    let reactor = Reactor::new(Arc::clone(&shared), listener, wake_rx)?;
    let mut threads = Vec::new();
    threads.push(
        std::thread::Builder::new()
            .name("saint-reactor".to_string())
            .spawn(move || reactor.run())?,
    );
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("saint-supervisor".to_string())
                .spawn(move || supervise_workers(&shared, jobs))?,
        );
    }
    Ok(ServerHandle { shared, threads })
}

/// Spawns one scan worker with a process-unique thread name.
fn spawn_scan_worker(shared: Arc<Shared>) -> std::io::Result<JoinHandle<()>> {
    let id = shared.next_worker_id.fetch_add(1, Ordering::Relaxed);
    std::thread::Builder::new()
        .name(format!("saint-scan-{id}"))
        .spawn(move || scan_worker(&shared))
}

/// The self-healing loop: scan workers are designed never to die (the
/// engine catches scan panics, the worker isolates the decoder), but a
/// bug between dequeue and hand-off — or an injected `queue_handoff`
/// fault — still kills one. The supervisor reaps finished workers and
/// respawns replacements, so a crash costs one request, never a
/// permanent slice of scan capacity. During drain it switches to
/// joining the survivors and exits.
fn supervise_workers(shared: &Arc<Shared>, pool_size: usize) {
    loop {
        if shared.shutting_down.load(Ordering::Acquire) {
            // Drain mode: workers exit normally once the queue is dry;
            // take and join whatever is left, then exit.
            let workers = std::mem::take(&mut *shared.scan_workers.lock());
            for handle in workers {
                let _ = handle.join();
            }
            return;
        }
        let dead: Vec<JoinHandle<()>> = {
            let mut workers = shared.scan_workers.lock();
            let mut dead = Vec::new();
            let mut i = 0;
            while i < workers.len() {
                if workers[i].is_finished() {
                    dead.push(workers.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            dead
        };
        for handle in dead {
            // A panicked join hands back the payload; it was already
            // accounted (ScansPanicked) by the dying worker's guard.
            let _ = handle.join();
        }
        // Top up to the configured pool size (spawn failures leave the
        // pool short; the next poll retries).
        loop {
            let live = shared
                .scan_workers
                .lock()
                .iter()
                .filter(|h| !h.is_finished())
                .count();
            if live >= pool_size || shared.shutting_down.load(Ordering::Acquire) {
                break;
            }
            let Ok(handle) = spawn_scan_worker(Arc::clone(shared)) else {
                break;
            };
            shared.scan_workers.lock().push(handle);
            shared.registry.add(Counter::WorkersRespawned, 1);
        }
        std::thread::sleep(SUPERVISE_POLL);
    }
}

/// Keeps per-job queue accounting truthful even when the worker thread
/// unwinds between dequeue and hand-off: a dropped (not completed)
/// guard releases the job's `active` slot and books the panic, so a
/// dying worker never leaves a phantom active job behind. The job's
/// [`Responder`](crate::reactor::Responder) is dropped by the same
/// unwind and answers the client `internal`/`queue_handoff`.
struct JobGuard<'a> {
    shared: &'a Shared,
    completed: bool,
}

impl JobGuard<'_> {
    fn complete(mut self) {
        self.completed = true;
        // Bookkeeping before the hand-off, mirroring `mark_served`: a
        // client that reads its report and immediately asks for
        // `status`/`metrics` must never see its own finished job still
        // counted as active.
        self.shared.queue.finish();
    }
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.shared.queue.finish();
            self.shared.registry.add(Counter::ScansPanicked, 1);
        }
    }
}

/// Everything one scan can turn into, computed worker-side.
enum Outcome {
    Report(Box<Report>),
    Delta(Box<Report>, saint_delta::DeltaStats),
    BadBase64,
    BadPackage(saint_ir::CodecError),
    DecodePanic(String),
    ScanFailed(ScanError),
}

/// One scan worker: drain the queue over the warm engine until told to
/// exit. The whole payload path runs here — base64, SAPK decode
/// (panic-isolated, preserving the `decode` fault point), scan — so
/// the reactor thread never touches package bytes.
fn scan_worker(shared: &Shared) {
    while let Some(job) = shared.queue.next() {
        let guard = JobGuard {
            shared,
            completed: false,
        };
        saint_faults::trip(saint_faults::FaultPoint::QueueHandoff);
        let outcome = run_scan(shared, &job.package_b64, job.delta);
        // Capacity emulation: hold the worker for the configured
        // service time before answering (off by default).
        if let Some(pace) = shared.scan_pace {
            std::thread::sleep(pace);
        }
        guard.complete();
        let mut responder = job.responder;
        // Losing the settle race means the reactor already answered
        // `timeout`; the outcome is discarded, unserialized.
        if responder.begin() {
            let id = responder.id();
            let (frame, served) = render(outcome, id, shared);
            if served {
                shared.queue.mark_served();
            }
            responder.send(frame.into_bytes());
        }
    }
}

/// Decodes and scans one package on the worker thread. `delta`
/// requests route through the warm incremental scanner when the daemon
/// carries one ([`ServerConfig::delta_dir`]); without a store they
/// degrade to a plain full scan — same report, no reuse accounting.
fn run_scan(shared: &Shared, package_b64: &str, delta: bool) -> Outcome {
    let Some(sapk) = protocol::base64_decode(package_b64) else {
        return Outcome::BadBase64;
    };
    // Isolate the decoder the same way the engine isolates scans, so a
    // decoder panic (or an injected `decode` fault) costs this request
    // an `internal` answer instead of the worker thread.
    match catch_unwind(AssertUnwindSafe(|| codec::decode_apk(&sapk))) {
        Ok(Ok(apk)) => match (delta, &shared.delta) {
            (true, Some(scanner)) => {
                // The delta layer shares the engine's warm tool (frozen
                // framework, shared caches) and its panic isolation
                // mirrors the plain path: an unwind costs this request
                // an `internal` answer, never the worker. The wire
                // payload *is* the canonical container, so the
                // byte-keyed fast path applies: an unchanged app
                // resubmitted to the daemon replays without a single
                // structural hash.
                let app_jobs = shared.engine.app_job_count().unwrap_or(1);
                match catch_unwind(AssertUnwindSafe(|| {
                    scanner.scan_encoded(shared.engine.tool(), &sapk, &apk, app_jobs)
                })) {
                    Ok((report, stats)) => Outcome::Delta(Box::new(report), stats),
                    Err(payload) => Outcome::ScanFailed(ScanError::Internal {
                        phase: "delta_scan".to_string(),
                        payload: panic_message(&*payload),
                    }),
                }
            }
            _ => match shared.engine.try_scan_one(&apk) {
                Ok(report) => Outcome::Report(Box::new(report)),
                Err(e) => Outcome::ScanFailed(e),
            },
        },
        Ok(Err(e)) => Outcome::BadPackage(e),
        Err(payload) => Outcome::DecodePanic(panic_message(&*payload)),
    }
}

/// Serializes the outcome exactly once — the returned string *is* the
/// frame the reactor writes from. The flag says whether a report
/// reached the client (drives `mark_served`).
fn render(outcome: Outcome, id: Option<u64>, shared: &Shared) -> (String, bool) {
    match outcome {
        Outcome::Report(report) => (
            protocol::to_line(&ScanResponse::new(*report).with_id(id)),
            true,
        ),
        Outcome::Delta(report, stats) => (
            protocol::to_line(
                &ScanResponse::new(*report)
                    .with_delta(stats.into())
                    .with_id(id),
            ),
            true,
        ),
        Outcome::BadBase64 => (
            protocol::to_line(
                &ErrorResponse::new(error_code::BAD_PACKAGE, "package_b64 is not valid base64")
                    .with_id(id),
            ),
            false,
        ),
        Outcome::BadPackage(e) => {
            let mut err = ErrorResponse::new(
                error_code::BAD_PACKAGE,
                format!("not a SAPK container: {e}"),
            )
            .with_id(id);
            // Point the client at the offending byte when the decoder
            // can name one — triage without re-running the decode.
            if let Some(offset) = e.offset() {
                err = err.with_offset(offset as u64);
            }
            (protocol::to_line(&err), false)
        }
        Outcome::DecodePanic(msg) => {
            shared.registry.add(Counter::ScansPanicked, 1);
            (
                protocol::to_line(
                    &ErrorResponse::new(error_code::INTERNAL, format!("decode panicked: {msg}"))
                        .with_phase("decode")
                        .with_id(id),
                ),
                false,
            )
        }
        Outcome::ScanFailed(e) => (
            protocol::to_line(
                &ErrorResponse::new(error_code::INTERNAL, e.to_string())
                    .with_phase(e.phase())
                    .with_id(id),
            ),
            false,
        ),
    }
}
