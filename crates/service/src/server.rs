//! The daemon: a warm [`ScanEngine`] behind a TCP accept loop.
//!
//! Thread model (std-only — no async runtime is vendored):
//!
//! ```text
//!            ┌────────────────────────────────────────────┐
//!            │                listener (TCP)              │
//!            └──────┬──────────────┬──────────────┬───────┘
//!             accept│        accept│        accept│     bounded pool of
//!            ┌──────▼─────┐ ┌──────▼─────┐ ┌──────▼─────┐ `conn_threads`
//!            │ handler 0  │ │ handler 1  │ │ handler …  │ connection
//!            └──────┬─────┘ └──────┬─────┘ └──────┬─────┘ handlers
//!                   │ submit / recv│              │
//!            ┌──────▼──────────────▼──────────────▼───────┐
//!            │        JobQueue (bounded, admission)       │
//!            └──────┬──────────────┬──────────────┬───────┘
//!              next │         next │         next │   `jobs` scan
//!            ┌──────▼─────┐ ┌──────▼─────┐ ┌──────▼─────┐ workers over ONE
//!            │  worker 0  │ │  worker 1  │ │  worker …  │ warm ScanEngine
//!            └────────────┘ └────────────┘ └────────────┘ (shared caches)
//! ```
//!
//! Each handler owns one connection end-to-end (read a line, service
//! it, write a line); excess connections wait in the OS accept backlog
//! — the pool is the bound. Scan requests cross to the worker side
//! through the queue so that slow scans never occupy the accept path
//! and admission control fires before any analysis work is spent.
//!
//! The engine is built once, [prewarmed](ScanEngine::prewarm), and
//! reused for the process lifetime: the framework model, the
//! [`ShardedClassCache`], [`ArtifactCache`], and `DeepScanCache` all
//! survive across requests — the amortization the batch engine gets
//! within one process, extended to a stream of requests (the paper's
//! RQ3 scalability claim in its deployed shape).
//!
//! [`ShardedClassCache`]: saint_analysis::ShardedClassCache
//! [`ArtifactCache`]: saint_analysis::ArtifactCache

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use saint_ir::codec;
use saint_obs::{Counter, MetricsRegistry};
use saint_sync::Mutex;
use saintdroid::{panic_message, ScanEngine};
use serde::Deserialize as _;

use crate::protocol::{
    self, error_code, Envelope, ErrorResponse, LineRead, MetricsResponse, ScanRequest,
    ScanResponse, StatusResponse, PROTOCOL_VERSION,
};
use crate::queue::{Admission, Job, JobQueue};

/// How the daemon is shaped; see the crate docs for the CLI mapping.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7744`; port `0` binds an
    /// ephemeral port (the bound address is reported by
    /// [`ServerHandle::addr`]).
    pub listen: String,
    /// Concurrent scan workers over the warm engine.
    pub jobs: usize,
    /// Admission bound: scans queued beyond the workers. `0` rejects
    /// whenever no queue slot is free — useful for tests.
    pub queue_depth: usize,
    /// Bounded connection-handler pool (concurrent client
    /// connections; excess waits in the accept backlog).
    pub conn_threads: usize,
    /// Per-line byte ceiling; longer requests get `too_large`.
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:7744".to_string(),
            jobs: saintdroid::engine::default_jobs(),
            queue_depth: 64,
            conn_threads: 8,
            max_line_bytes: protocol::MAX_LINE_BYTES,
        }
    }
}

/// How often blocked reads wake to poll the drain flag.
const READ_POLL: Duration = Duration::from_millis(200);

/// How often the supervisor polls for dead scan workers.
const SUPERVISE_POLL: Duration = Duration::from_millis(25);

struct Shared {
    engine: ScanEngine,
    queue: JobQueue,
    registry: Arc<MetricsRegistry>,
    started: Instant,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    max_line_bytes: usize,
    conn_threads: usize,
    /// Live scan-worker handles, owned by the supervisor (which reaps
    /// finished ones and respawns replacements) and read by `status`.
    scan_workers: Mutex<Vec<JoinHandle<()>>>,
    /// Monotone name counter so respawned workers get fresh names.
    next_worker_id: AtomicUsize,
}

impl Shared {
    fn status(&self) -> StatusResponse {
        let q = self.queue.stats();
        StatusResponse {
            v: PROTOCOL_VERSION,
            kind: "status".to_string(),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            jobs_served: q.served,
            jobs_active: q.active,
            scan_workers: self
                .scan_workers
                .lock()
                .iter()
                .filter(|h| !h.is_finished())
                .count(),
            queue_depth: q.depth,
            queue_capacity: q.capacity,
            rejected_busy: q.rejected_busy,
            timed_out: q.timed_out,
            draining: q.draining,
            class_cache: self.engine.cache_stats().map(Into::into),
            artifact_cache: self.engine.artifact_cache_stats().map(Into::into),
            scan_cache: self.engine.scan_cache_stats().map(Into::into),
            frozen: self.engine.frozen_boot().map(Into::into),
        }
    }

    /// The unified observability view: the engine's snapshot (phase
    /// spans, counters, caches, meter) extended with live queue state.
    fn metrics(&self) -> MetricsResponse {
        let mut snap = self.engine.metrics_snapshot();
        let q = self.queue.stats();
        snap.queue = Some(saint_obs::QueueSnapshot {
            depth: q.depth as u64,
            capacity: q.capacity as u64,
            active: q.active as u64,
            served: q.served,
            rejected_busy: q.rejected_busy,
            timed_out: q.timed_out,
        });
        MetricsResponse::new(snap).with_frozen(self.engine.frozen_boot().map(Into::into))
    }

    /// Flips the daemon into drain mode exactly once: admission closes,
    /// queued scans finish, accept threads are woken with dummy
    /// connections so they observe the flag and exit.
    fn begin_shutdown(&self) {
        if self
            .shutting_down
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        self.queue.drain();
        for _ in 0..self.conn_threads {
            // Best-effort wake-ups; a failure means the acceptor is
            // already gone or will notice on its next accept error.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A running daemon; dropped handles leave the threads running —
/// call [`wait`](Self::wait) to block until shutdown completes.
pub struct ServerHandle {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound listen address (resolves port `0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Triggers the same graceful drain a protocol `shutdown` request
    /// does (for embedders; remote clients use the protocol message).
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until every acceptor and worker thread has exited —
    /// i.e. until a shutdown request arrived and the queue drained.
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Binds the listener, spawns the worker and handler pools, and
/// returns immediately. The engine should already be
/// [prewarmed](ScanEngine::prewarm) so the first request pays no
/// one-time framework cost.
///
/// # Errors
/// Propagates socket errors (bind/clone).
pub fn start(engine: ScanEngine, cfg: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.listen)?;
    let addr = listener.local_addr()?;
    // A daemon always carries a registry (engines built without one
    // get a fresh one here) so every `metrics` request has an answer
    // and queue waits are accounted from the first job.
    let engine = engine.ensure_metrics();
    let Some(registry) = engine.metrics().cloned() else {
        return Err(std::io::Error::other("engine lost its metrics registry"));
    };
    let shared = Arc::new(Shared {
        queue: JobQueue::new(cfg.queue_depth).with_metrics(Arc::clone(&registry)),
        engine,
        registry,
        started: Instant::now(),
        shutting_down: AtomicBool::new(false),
        addr,
        max_line_bytes: cfg.max_line_bytes,
        conn_threads: cfg.conn_threads.max(1),
        scan_workers: Mutex::new(Vec::new()),
        next_worker_id: AtomicUsize::new(0),
    });

    let jobs = cfg.jobs.max(1);
    {
        let mut workers = shared.scan_workers.lock();
        for _ in 0..jobs {
            workers.push(spawn_scan_worker(Arc::clone(&shared))?);
        }
    }
    let mut threads = Vec::new();
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("saint-supervisor".to_string())
                .spawn(move || supervise_workers(&shared, jobs))?,
        );
    }
    for i in 0..cfg.conn_threads.max(1) {
        let shared = Arc::clone(&shared);
        let listener = listener.try_clone()?;
        threads.push(
            std::thread::Builder::new()
                .name(format!("saint-conn-{i}"))
                .spawn(move || accept_loop(&listener, &shared))?,
        );
    }
    Ok(ServerHandle { shared, threads })
}

/// Spawns one scan worker with a process-unique thread name.
fn spawn_scan_worker(shared: Arc<Shared>) -> std::io::Result<JoinHandle<()>> {
    let id = shared.next_worker_id.fetch_add(1, Ordering::Relaxed);
    std::thread::Builder::new()
        .name(format!("saint-scan-{id}"))
        .spawn(move || scan_worker(&shared))
}

/// The self-healing loop: scan workers are designed never to die (the
/// engine catches scan panics), but a bug between dequeue and hand-off
/// — or an injected `queue_handoff` fault — still kills one. The
/// supervisor reaps finished workers and respawns replacements, so a
/// crash costs one request, never a permanent slice of scan capacity.
/// During drain it switches to joining the survivors and exits.
fn supervise_workers(shared: &Arc<Shared>, pool_size: usize) {
    loop {
        if shared.shutting_down.load(Ordering::Acquire) {
            // Drain mode: workers exit normally once the queue is dry;
            // take and join whatever is left, then exit.
            let workers = std::mem::take(&mut *shared.scan_workers.lock());
            for handle in workers {
                let _ = handle.join();
            }
            return;
        }
        let dead: Vec<JoinHandle<()>> = {
            let mut workers = shared.scan_workers.lock();
            let mut dead = Vec::new();
            let mut i = 0;
            while i < workers.len() {
                if workers[i].is_finished() {
                    dead.push(workers.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            dead
        };
        for handle in dead {
            // A panicked join hands back the payload; it was already
            // accounted (ScansPanicked) by the dying worker's guard.
            let _ = handle.join();
        }
        // Top up to the configured pool size (spawn failures leave the
        // pool short; the next poll retries).
        loop {
            let live = shared
                .scan_workers
                .lock()
                .iter()
                .filter(|h| !h.is_finished())
                .count();
            if live >= pool_size || shared.shutting_down.load(Ordering::Acquire) {
                break;
            }
            let Ok(handle) = spawn_scan_worker(Arc::clone(shared)) else {
                break;
            };
            shared.scan_workers.lock().push(handle);
            shared.registry.add(Counter::WorkersRespawned, 1);
        }
        std::thread::sleep(SUPERVISE_POLL);
    }
}

/// Keeps per-job queue accounting truthful even when the worker thread
/// unwinds between dequeue and hand-off: a dropped (not completed)
/// guard releases the job's `active` slot and books the panic, so a
/// dying worker never leaves a phantom active job behind. The waiting
/// handler sees its channel disconnect (the job, and with it the
/// sender, is dropped by the same unwind) and answers `internal`.
struct JobGuard<'a> {
    shared: &'a Shared,
    completed: bool,
}

impl JobGuard<'_> {
    fn complete(mut self) {
        self.completed = true;
        // Bookkeeping before the hand-off, mirroring `mark_served`: a
        // client that reads its report and immediately asks for
        // `status`/`metrics` must never see its own finished job still
        // counted as active.
        self.shared.queue.finish();
    }
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.shared.queue.finish();
            self.shared.registry.add(Counter::ScansPanicked, 1);
        }
    }
}

/// One scan worker: drain the queue over the warm engine until told to
/// exit. Scan panics never reach this frame — the engine demotes them
/// to typed errors — so the injection point between dequeue and scan
/// is what exercises the supervisor's respawn path.
fn scan_worker(shared: &Shared) {
    while let Some(job) = shared.queue.next() {
        let guard = JobGuard {
            shared,
            completed: false,
        };
        saint_faults::trip(saint_faults::FaultPoint::QueueHandoff);
        let outcome = shared.engine.try_scan_one(&job.apk);
        guard.complete();
        // A failed send means the handler gave up at its deadline and
        // dropped the receiver; the outcome is discarded. Either way
        // the outcome counters are the handler's job, not ours.
        if !job.cancelled.load(Ordering::Acquire) {
            let _ = job.respond.send(outcome);
        }
    }
}

/// One member of the bounded acceptor pool: serve whole connections,
/// one at a time, until shutdown.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutting_down.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::Acquire) {
            // Wake-up (or late) connection during drain: close it.
            drop(stream);
            return;
        }
        handle_connection(stream, shared);
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
    }
}

/// Serves one connection: a loop of request line → response line.
/// Protocol failures answer a typed error and (except for lost
/// framing) keep the connection alive; transport failures close it.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    // Short read timeouts double as the drain poll: a handler blocked
    // on an idle connection notices `shutting_down` within READ_POLL.
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    // One-line responses must leave immediately, not sit in Nagle's
    // buffer waiting for the client's delayed ACK.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;

    // Partial line carried across read-timeout polls: a slow client
    // whose request straddles a READ_POLL boundary must not have the
    // already-received half dropped.
    let mut pending = Vec::new();
    loop {
        let line = match protocol::read_line_bounded_into(
            &mut reader,
            shared.max_line_bytes,
            &mut pending,
        ) {
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::Eof) => return,
            Ok(LineRead::TooLong) => {
                let err = ErrorResponse::new(
                    error_code::TOO_LARGE,
                    format!("request line exceeds {} bytes", shared.max_line_bytes),
                );
                let _ = writer.write_all(protocol::to_line(&err).as_bytes());
                return; // framing is lost — close
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = dispatch(&line, shared);
        if writer.write_all(response.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
    }
}

/// Parses and services one request line, returning the response line.
/// The line is parsed to a value tree once; envelope dispatch and the
/// full request are two views of the same tree (scan requests carry
/// the whole package, so a second parse would double the largest cost
/// on the request path).
fn dispatch(line: &str, shared: &Shared) -> String {
    let value = match serde_json::from_str_value(line) {
        Ok(value) => value,
        Err(e) => {
            return protocol::to_line(&ErrorResponse::new(
                error_code::MALFORMED,
                format!("not a protocol message: {e}"),
            ))
        }
    };
    let envelope = match Envelope::from_value(&value) {
        Ok(env) => env,
        Err(e) => {
            return protocol::to_line(&ErrorResponse::new(
                error_code::MALFORMED,
                format!("not a protocol message: {e}"),
            ))
        }
    };
    if envelope.v != PROTOCOL_VERSION {
        return protocol::to_line(&ErrorResponse::new(
            error_code::UNSUPPORTED_VERSION,
            format!(
                "protocol v{} requested, server speaks v{PROTOCOL_VERSION}",
                envelope.v
            ),
        ));
    }
    match envelope.kind.as_deref() {
        Some("scan") => serve_scan(&value, shared),
        Some("status") => protocol::to_line(&shared.status()),
        Some("metrics") => protocol::to_line(&shared.metrics()),
        Some("shutdown") => {
            // Acknowledge with the final counters, then drain.
            let status = shared.status();
            shared.begin_shutdown();
            protocol::to_line(&status)
        }
        other => protocol::to_line(&ErrorResponse::new(
            error_code::MALFORMED,
            format!("unknown request kind {other:?}"),
        )),
    }
}

/// Decodes, admits, and awaits one scan request.
fn serve_scan(value: &serde::Value, shared: &Shared) -> String {
    let request: ScanRequest = match ScanRequest::from_value(value) {
        Ok(req) => req,
        Err(e) => {
            return protocol::to_line(&ErrorResponse::new(
                error_code::MALFORMED,
                format!("bad scan request: {e}"),
            ))
        }
    };
    let Some(sapk) = protocol::base64_decode(&request.package_b64) else {
        return protocol::to_line(&ErrorResponse::new(
            error_code::BAD_PACKAGE,
            "package_b64 is not valid base64",
        ));
    };
    // The decoder runs on the handler thread; isolate it the same way
    // the engine isolates scans, so a decoder panic (or an injected
    // `decode` fault) costs this request an `internal` answer instead
    // of the connection its handler serves.
    let apk = match catch_unwind(AssertUnwindSafe(|| codec::decode_apk(&sapk))) {
        Ok(Ok(apk)) => apk,
        Ok(Err(e)) => {
            let mut err = ErrorResponse::new(
                error_code::BAD_PACKAGE,
                format!("not a SAPK container: {e}"),
            );
            // Point the client at the offending byte when the decoder
            // can name one — triage without re-running the decode.
            if let Some(offset) = e.offset() {
                err = err.with_offset(offset as u64);
            }
            return protocol::to_line(&err);
        }
        Err(payload) => {
            shared.registry.add(Counter::ScansPanicked, 1);
            return protocol::to_line(
                &ErrorResponse::new(
                    error_code::INTERNAL,
                    format!("decode panicked: {}", panic_message(&*payload)),
                )
                .with_phase("decode"),
            );
        }
    };

    let (respond, report_rx) = sync_channel(1);
    let cancelled = Arc::new(AtomicBool::new(false));
    let admitted = shared.queue.submit(Job {
        apk,
        respond,
        cancelled: Arc::clone(&cancelled),
        enqueued_at: Instant::now(),
    });
    match admitted {
        Err(Admission::Busy) => {
            return protocol::to_line(&ErrorResponse::new(
                error_code::BUSY,
                format!(
                    "queue at capacity ({}); resubmit later",
                    shared.queue.stats().capacity
                ),
            ))
        }
        Err(Admission::Draining) => {
            return protocol::to_line(&ErrorResponse::new(
                error_code::DRAINING,
                "daemon is draining for shutdown",
            ))
        }
        Ok(()) => {}
    }

    let outcome = match request.deadline_ms {
        Some(ms) => report_rx.recv_timeout(Duration::from_millis(ms)),
        None => report_rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
    };
    match outcome {
        Ok(Ok(report)) => {
            // Counted before the response line leaves, so the client's
            // own follow-up `status` always includes this scan.
            shared.queue.mark_served();
            protocol::to_line(&ScanResponse::new(report))
        }
        Ok(Err(scan_err)) => {
            // The scan panicked; the engine demoted it to a typed
            // error and the worker survived. Not `mark_served` — no
            // report reached the client — and not a timeout either.
            protocol::to_line(
                &ErrorResponse::new(error_code::INTERNAL, scan_err.to_string())
                    .with_phase(scan_err.phase()),
            )
        }
        Err(RecvTimeoutError::Timeout) => {
            // Tell the worker (or the queue) to drop the job; the
            // receiver is dropped with this frame, so a report finished
            // in the race window is discarded by the failed send.
            cancelled.store(true, Ordering::Release);
            shared.queue.mark_timed_out();
            protocol::to_line(&ErrorResponse::new(
                error_code::TIMEOUT,
                format!(
                    "deadline of {} ms expired before the scan finished",
                    request.deadline_ms.unwrap_or(0)
                ),
            ))
        }
        Err(RecvTimeoutError::Disconnected) => {
            // The worker thread died between dequeue and hand-off (its
            // job — and with it our sender — was dropped by the
            // unwind). The supervisor is already respawning a
            // replacement; the client can resubmit immediately.
            protocol::to_line(
                &ErrorResponse::new(
                    error_code::INTERNAL,
                    "scan worker crashed before completing the job; resubmit",
                )
                .with_phase("queue_handoff"),
            )
        }
    }
}
