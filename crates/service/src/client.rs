//! Client side of the scan-service protocol: the lockstep [`Client`]
//! (one request in flight), the [`PipelinedClient`] (a window of
//! id-tagged scans in flight on one connection, responses accepted out
//! of order and reordered client-side), and a retry wrapper with
//! capped exponential backoff for the transient failure modes a
//! fault-tolerant daemon exposes (`busy`, `internal`, connection
//! resets during a worker respawn).
//!
//! Pipelined retry taxonomy: a transient rejection (`busy`/`internal`)
//! on one in-flight request resubmits *only that request* — the rest
//! of the window keeps flowing and nothing already answered is ever
//! replayed. Only a transport failure costs the connection, and the
//! reconnect resends only the still-unanswered requests.

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use saint_obs::{Counter, MetricsRegistry};
use serde::Deserialize as _;

use crate::protocol::{
    self, error_code, Envelope, ErrorResponse, LineRead, MetricsResponse, ScanRequest,
    ScanResponse, StatusResponse, PROTOCOL_VERSION,
};

/// Why a service call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or connection closed).
    Io(std::io::Error),
    /// The server answered, but with a typed rejection (`busy`,
    /// `timeout`, `bad_package`, …). Boxed so the error variant stays
    /// pointer-sized on every `Result` in the client API.
    Rejected(Box<ErrorResponse>),
    /// The server's bytes did not parse as a protocol message.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "service transport error: {e}"),
            ClientError::Rejected(e) => {
                write!(f, "service rejected request: {} ({})", e.code, e.message)
            }
            ClientError::Protocol(msg) => write!(f, "service protocol error: {msg}"),
        }
    }
}

impl ClientError {
    /// Whether a retry against the same daemon can plausibly succeed.
    ///
    /// Transient: transport failures (the daemon may be mid-respawn or
    /// the connection was reset), `busy` (the queue drains), and
    /// `internal` (the panic was isolated; a resubmission runs on a
    /// healthy worker). Everything else — `bad_package`, `malformed`,
    /// `too_large`, `unsupported_version`, `draining`, `timeout` — is
    /// deterministic or deliberate, and retrying only repeats it.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Rejected(e) => {
                e.code == error_code::BUSY || e.code == error_code::INTERNAL
            }
            ClientError::Protocol(_) => false,
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Capped exponential backoff with deterministic jitter.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` = single attempt).
    pub retries: u32,
    /// Delay before the first retry; doubles each attempt.
    pub base: Duration,
    /// Ceiling on any single delay.
    pub cap: Duration,
}

impl RetryPolicy {
    /// `retries` retries over the default 50 ms → 2 s backoff curve.
    #[must_use]
    pub fn new(retries: u32) -> Self {
        RetryPolicy {
            retries,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
        }
    }

    /// The delay before retry number `attempt` (1-based): exponential
    /// from `base`, capped, plus up to 25% deterministic jitter keyed
    /// on `(seed, attempt)` so a fleet of clients rejected by the same
    /// `busy` burst does not resubmit in lockstep.
    #[must_use]
    pub fn delay(&self, attempt: u32, seed: u64) -> Duration {
        let exp = self
            .base
            .saturating_mul(1_u32 << attempt.saturating_sub(1).min(16))
            .min(self.cap);
        let jitter_unit = fnv1a(seed ^ u64::from(attempt)) % 256;
        let jitter = exp.mul_f64(jitter_unit as f64 / 256.0 * 0.25);
        exp + jitter
    }
}

/// FNV-1a — the deterministic stand-in for an RNG (nothing here needs
/// unpredictability, only de-synchronization).
fn fnv1a(x: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in x.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Submits one SAPK scan with reconnect-and-retry on transient
/// failures, returning the response and how many retries it took.
/// Each attempt opens a fresh connection: after an `internal` error or
/// a reset, the old connection's handler state is not worth trusting.
/// Bumps [`Counter::ClientRetries`] once per retry when a registry is
/// attached.
///
/// # Errors
/// The last attempt's error when every attempt failed, or the first
/// permanent (non-transient) error immediately.
pub fn scan_with_retries(
    addr: &str,
    sapk_bytes: &[u8],
    deadline_ms: Option<u64>,
    policy: RetryPolicy,
    metrics: Option<&MetricsRegistry>,
) -> Result<(ScanResponse, u32), ClientError> {
    let seed = fnv1a(addr.bytes().map(u64::from).fold(0, |a, b| a << 1 | b));
    let mut attempt = 0_u32;
    loop {
        let outcome = Client::connect(addr).and_then(|mut c| c.scan_sapk(sapk_bytes, deadline_ms));
        match outcome {
            Ok(resp) => return Ok((resp, attempt)),
            Err(err) if attempt < policy.retries && err.is_transient() => {
                attempt += 1;
                if let Some(metrics) = metrics {
                    metrics.add(Counter::ClientRetries, 1);
                }
                std::thread::sleep(policy.delay(attempt, seed));
            }
            Err(err) => return Err(err),
        }
    }
}

/// A connected scan-service client. One request is in flight at a
/// time; open several clients for concurrent submission.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `127.0.0.1:7744`).
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // Request/response lockstep with small frames: Nagle plus
        // delayed ACK would add ~40ms to every roundtrip.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one line and reads one response line, parsed once to a
    /// value tree (scan responses carry a full report, so envelope
    /// dispatch and the typed response are two views of one parse).
    fn roundtrip(&mut self, line: &str) -> Result<(Envelope, serde::Value), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let raw = match protocol::read_line_bounded(&mut self.reader, protocol::MAX_LINE_BYTES)? {
            LineRead::Line(raw) => raw,
            LineRead::Eof => {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )))
            }
            LineRead::TooLong => {
                return Err(ClientError::Protocol("oversized response line".into()))
            }
        };
        let value = serde_json::from_str_value(&raw)
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
        let envelope = Envelope::from_value(&value)
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
        Ok((envelope, value))
    }

    /// Dispatches a parsed response into `T` or the typed error.
    fn expect<T: serde::Deserialize>(
        kind: &str,
        envelope: &Envelope,
        value: &serde::Value,
    ) -> Result<T, ClientError> {
        match envelope.kind.as_deref() {
            Some(k) if k == kind => T::from_value(value)
                .map_err(|e| ClientError::Protocol(format!("bad {kind} response: {e}"))),
            Some("error") => {
                let err = ErrorResponse::from_value(value)
                    .map_err(|e| ClientError::Protocol(format!("bad error response: {e}")))?;
                Err(ClientError::Rejected(Box::new(err)))
            }
            other => Err(ClientError::Protocol(format!(
                "expected {kind} response, got kind {other:?}"
            ))),
        }
    }

    /// Submits raw SAPK container bytes for scanning and awaits the
    /// report (or a typed rejection).
    ///
    /// # Errors
    /// [`ClientError::Rejected`] carries the server's typed error
    /// (`busy`, `timeout`, `bad_package`, `draining`, …).
    pub fn scan_sapk(
        &mut self,
        sapk_bytes: &[u8],
        deadline_ms: Option<u64>,
    ) -> Result<ScanResponse, ClientError> {
        let req = ScanRequest::new(sapk_bytes, deadline_ms);
        let (envelope, value) = self.roundtrip(&protocol::to_line(&req))?;
        Self::expect("scan", &envelope, &value)
    }

    /// Submits raw SAPK container bytes through the incremental
    /// (`delta`) verb. The report is byte-identical to
    /// [`scan_sapk`](Self::scan_sapk); when the daemon carries an
    /// artifact store the response additionally reports what was reused
    /// via [`ScanResponse::delta`]. A daemon without a store answers
    /// with a plain full scan (kind `scan`, no delta block) — the verb
    /// is an optimization, never a different answer, so both response
    /// kinds are accepted here.
    ///
    /// # Errors
    /// See [`scan_sapk`](Self::scan_sapk).
    pub fn delta_sapk(
        &mut self,
        sapk_bytes: &[u8],
        deadline_ms: Option<u64>,
    ) -> Result<ScanResponse, ClientError> {
        let req = ScanRequest::new(sapk_bytes, deadline_ms).into_delta();
        let (envelope, value) = self.roundtrip(&protocol::to_line(&req))?;
        match envelope.kind.as_deref() {
            Some("delta") | Some("scan") => ScanResponse::from_value(&value)
                .map_err(|e| ClientError::Protocol(format!("bad delta response: {e}"))),
            _ => Self::expect("delta", &envelope, &value),
        }
    }

    /// Fetches daemon health and accounting.
    ///
    /// # Errors
    /// See [`scan_sapk`](Self::scan_sapk).
    pub fn status(&mut self) -> Result<StatusResponse, ClientError> {
        let req = Envelope {
            v: PROTOCOL_VERSION,
            kind: Some("status".to_string()),
        };
        let (envelope, value) = self.roundtrip(&protocol::to_line(&req))?;
        Self::expect("status", &envelope, &value)
    }

    /// Fetches the daemon's full observability view: phase spans,
    /// monotone counters, cache surfaces, meter totals, queue state.
    ///
    /// # Errors
    /// See [`scan_sapk`](Self::scan_sapk).
    pub fn metrics(&mut self) -> Result<MetricsResponse, ClientError> {
        let req = Envelope {
            v: PROTOCOL_VERSION,
            kind: Some("metrics".to_string()),
        };
        let (envelope, value) = self.roundtrip(&protocol::to_line(&req))?;
        Self::expect("metrics", &envelope, &value)
    }

    /// Requests a graceful drain; the acknowledgement carries the final
    /// counters.
    ///
    /// # Errors
    /// See [`scan_sapk`](Self::scan_sapk).
    pub fn shutdown(&mut self) -> Result<StatusResponse, ClientError> {
        let req = Envelope {
            v: PROTOCOL_VERSION,
            kind: Some("shutdown".to_string()),
        };
        let (envelope, value) = self.roundtrip(&protocol::to_line(&req))?;
        Self::expect("status", &envelope, &value)
    }

    /// Sends a raw pre-framed line and returns the raw response line —
    /// the hook the robustness tests use to speak malformed dialects.
    ///
    /// # Errors
    /// Transport errors only; the response is returned unparsed.
    pub fn raw_roundtrip(&mut self, line: &str) -> Result<String, ClientError> {
        let mut framed = line.to_string();
        if !framed.ends_with('\n') {
            framed.push('\n');
        }
        self.writer.write_all(framed.as_bytes())?;
        self.writer.flush()?;
        match protocol::read_line_bounded(&mut self.reader, protocol::MAX_LINE_BYTES)? {
            LineRead::Line(raw) => Ok(raw),
            LineRead::Eof => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            LineRead::TooLong => Err(ClientError::Protocol("oversized response line".into())),
        }
    }
}

/// Opens one nodelay connection split into reader/writer halves.
fn open(addr: &str) -> Result<(BufReader<TcpStream>, TcpStream), ClientError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok((reader, stream))
}

/// A pipelined scan-service client: one connection, up to `window`
/// id-tagged scans in flight, responses accepted in whatever order the
/// daemon finishes them and reordered to submission order before
/// [`scan_all`](Self::scan_all) returns.
///
/// Retry semantics (the pipelined taxonomy):
///
/// - a transient typed rejection (`busy`, `internal`) resubmits only
///   the rejected request, under a fresh id, without disturbing the
///   rest of the window — and backs off only when that request was the
///   sole one in flight (otherwise the in-flight responses are the
///   useful work to wait on);
/// - a transport failure reconnects and resends only the requests not
///   yet answered — answered ones keep their results, nothing is
///   replayed;
/// - permanent rejections (`bad_package`, `timeout`, `draining`, …)
///   fail the batch immediately.
pub struct PipelinedClient {
    addr: String,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    window: usize,
    policy: RetryPolicy,
    next_id: u64,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl PipelinedClient {
    /// Connects to a daemon at `addr` with a `window`-deep pipeline
    /// (clamped to at least 1) and the default 3-retry policy.
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: &str, window: usize) -> Result<Self, ClientError> {
        let (reader, writer) = open(addr)?;
        Ok(PipelinedClient {
            addr: addr.to_string(),
            reader,
            writer,
            window: window.max(1),
            policy: RetryPolicy::new(3),
            next_id: 0,
            metrics: None,
        })
    }

    /// Replaces the per-request retry policy.
    #[must_use]
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches a registry; every per-request resubmission and every
    /// reconnect bumps [`Counter::ClientRetries`].
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The configured pipeline depth.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Scans every package, keeping up to `window` requests in flight,
    /// and returns the responses in submission order.
    ///
    /// # Errors
    /// The first permanent rejection or exhausted retry budget; partial
    /// results are discarded (the daemon side completed them, but the
    /// caller asked for all-or-nothing).
    pub fn scan_all<B: AsRef<[u8]>>(
        &mut self,
        sapks: &[B],
        deadline_ms: Option<u64>,
    ) -> Result<Vec<ScanResponse>, ClientError> {
        Ok(self.scan_all_timed(sapks, deadline_ms)?.0)
    }

    /// Like [`scan_all`](Self::scan_all), additionally reporting each
    /// request's wire latency: submission (the last write, if it was
    /// retried) to response arrival. This is what the benchmark's
    /// p50/p99 numbers are built from.
    ///
    /// # Errors
    /// Same contract as [`scan_all`](Self::scan_all).
    pub fn scan_all_timed<B: AsRef<[u8]>>(
        &mut self,
        sapks: &[B],
        deadline_ms: Option<u64>,
    ) -> Result<(Vec<ScanResponse>, Vec<Duration>), ClientError> {
        let seed = fnv1a(self.addr.bytes().map(u64::from).fold(0, |a, b| a << 1 | b));
        let mut sent_at: Vec<Instant> = vec![Instant::now(); sapks.len()];
        let mut latencies: Vec<Duration> = vec![Duration::ZERO; sapks.len()];
        let mut results: Vec<Option<ScanResponse>> = Vec::new();
        results.resize_with(sapks.len(), || None);
        let mut to_send: VecDeque<usize> = (0..sapks.len()).collect();
        let mut inflight: HashMap<u64, usize> = HashMap::new();
        let mut retries_used: Vec<u32> = vec![0; sapks.len()];
        let mut reconnects = 0_u32;
        let mut answered = 0_usize;
        while answered < sapks.len() {
            // Fill the window.
            while inflight.len() < self.window {
                let Some(idx) = to_send.pop_front() else {
                    break;
                };
                match self.send_scan(sapks[idx].as_ref(), deadline_ms) {
                    Ok(id) => {
                        sent_at[idx] = Instant::now();
                        inflight.insert(id, idx);
                    }
                    Err(e) => {
                        to_send.push_front(idx);
                        self.recover(e, &mut inflight, &mut to_send, &mut reconnects, seed)?;
                    }
                }
            }
            // Take the next response, whichever request it answers.
            let (envelope, value) = match self.read_response() {
                Ok(parsed) => parsed,
                Err(e @ ClientError::Io(_)) => {
                    self.recover(e, &mut inflight, &mut to_send, &mut reconnects, seed)?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            match envelope.kind.as_deref() {
                Some("scan") => {
                    let resp = ScanResponse::from_value(&value)
                        .map_err(|e| ClientError::Protocol(format!("bad scan response: {e}")))?;
                    let idx = resp.id.and_then(|id| inflight.remove(&id)).ok_or_else(|| {
                        ClientError::Protocol(format!(
                            "response id {:?} matches no in-flight request",
                            resp.id
                        ))
                    })?;
                    latencies[idx] = sent_at[idx].elapsed();
                    results[idx] = Some(resp);
                    answered += 1;
                }
                Some("error") => {
                    let err = ErrorResponse::from_value(&value)
                        .map_err(|e| ClientError::Protocol(format!("bad error response: {e}")))?;
                    let Some(idx) = err.id.and_then(|id| inflight.remove(&id)) else {
                        // Unattributable: the daemon could not tie the
                        // error to a request, so neither can we.
                        return Err(ClientError::Rejected(Box::new(err)));
                    };
                    let transient =
                        err.code == error_code::BUSY || err.code == error_code::INTERNAL;
                    if !transient || retries_used[idx] >= self.policy.retries {
                        return Err(ClientError::Rejected(Box::new(err)));
                    }
                    retries_used[idx] += 1;
                    if let Some(metrics) = &self.metrics {
                        metrics.add(Counter::ClientRetries, 1);
                    }
                    // Only this request retries; the window flows on.
                    // Back off only when it was the sole request in
                    // flight — otherwise the other in-flight responses
                    // are the wait.
                    if inflight.is_empty() {
                        std::thread::sleep(self.policy.delay(retries_used[idx], seed));
                    }
                    to_send.push_front(idx);
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected scan or error response, got kind {other:?}"
                    )))
                }
            }
        }
        let responses = results
            .into_iter()
            .map(|r| r.ok_or_else(|| ClientError::Protocol("response went missing".into())))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((responses, latencies))
    }

    /// Writes one id-tagged scan request; the id is process-unique so
    /// a retried request never collides with its earlier incarnation.
    fn send_scan(&mut self, sapk: &[u8], deadline_ms: Option<u64>) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = ScanRequest::new(sapk, deadline_ms).with_id(id);
        self.writer.write_all(protocol::to_line(&req).as_bytes())?;
        Ok(id)
    }

    /// Reads and parses one response line.
    fn read_response(&mut self) -> Result<(Envelope, serde::Value), ClientError> {
        let raw = match protocol::read_line_bounded(&mut self.reader, protocol::MAX_LINE_BYTES)? {
            LineRead::Line(raw) => raw,
            LineRead::Eof => {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )))
            }
            LineRead::TooLong => {
                return Err(ClientError::Protocol("oversized response line".into()))
            }
        };
        let value = serde_json::from_str_value(&raw)
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
        let envelope = Envelope::from_value(&value)
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
        Ok((envelope, value))
    }

    /// Transport-level recovery: reconnect and requeue every request
    /// not yet answered. Answered requests keep their results; nothing
    /// is replayed.
    fn recover(
        &mut self,
        err: ClientError,
        inflight: &mut HashMap<u64, usize>,
        to_send: &mut VecDeque<usize>,
        reconnects: &mut u32,
        seed: u64,
    ) -> Result<(), ClientError> {
        if !err.is_transient() || *reconnects >= self.policy.retries {
            return Err(err);
        }
        *reconnects += 1;
        if let Some(metrics) = &self.metrics {
            metrics.add(Counter::ClientRetries, 1);
        }
        std::thread::sleep(self.policy.delay(*reconnects, seed));
        let (reader, writer) = open(&self.addr)?;
        self.reader = reader;
        self.writer = writer;
        let mut unanswered: Vec<usize> = inflight.drain().map(|(_, idx)| idx).collect();
        unanswered.sort_unstable();
        for idx in unanswered.into_iter().rev() {
            to_send.push_front(idx);
        }
        Ok(())
    }
}
