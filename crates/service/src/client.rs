//! Client side of the scan-service protocol: one blocking connection,
//! request/response lines in lockstep — plus a retry wrapper with
//! capped exponential backoff for the transient failure modes a
//! fault-tolerant daemon exposes (`busy`, `internal`, connection
//! resets during a worker respawn).

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use saint_obs::{Counter, MetricsRegistry};
use serde::Deserialize as _;

use crate::protocol::{
    self, error_code, Envelope, ErrorResponse, LineRead, MetricsResponse, ScanRequest,
    ScanResponse, StatusResponse, PROTOCOL_VERSION,
};

/// Why a service call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or connection closed).
    Io(std::io::Error),
    /// The server answered, but with a typed rejection (`busy`,
    /// `timeout`, `bad_package`, …).
    Rejected(ErrorResponse),
    /// The server's bytes did not parse as a protocol message.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "service transport error: {e}"),
            ClientError::Rejected(e) => {
                write!(f, "service rejected request: {} ({})", e.code, e.message)
            }
            ClientError::Protocol(msg) => write!(f, "service protocol error: {msg}"),
        }
    }
}

impl ClientError {
    /// Whether a retry against the same daemon can plausibly succeed.
    ///
    /// Transient: transport failures (the daemon may be mid-respawn or
    /// the connection was reset), `busy` (the queue drains), and
    /// `internal` (the panic was isolated; a resubmission runs on a
    /// healthy worker). Everything else — `bad_package`, `malformed`,
    /// `too_large`, `unsupported_version`, `draining`, `timeout` — is
    /// deterministic or deliberate, and retrying only repeats it.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Rejected(e) => {
                e.code == error_code::BUSY || e.code == error_code::INTERNAL
            }
            ClientError::Protocol(_) => false,
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Capped exponential backoff with deterministic jitter.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` = single attempt).
    pub retries: u32,
    /// Delay before the first retry; doubles each attempt.
    pub base: Duration,
    /// Ceiling on any single delay.
    pub cap: Duration,
}

impl RetryPolicy {
    /// `retries` retries over the default 50 ms → 2 s backoff curve.
    #[must_use]
    pub fn new(retries: u32) -> Self {
        RetryPolicy {
            retries,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
        }
    }

    /// The delay before retry number `attempt` (1-based): exponential
    /// from `base`, capped, plus up to 25% deterministic jitter keyed
    /// on `(seed, attempt)` so a fleet of clients rejected by the same
    /// `busy` burst does not resubmit in lockstep.
    #[must_use]
    pub fn delay(&self, attempt: u32, seed: u64) -> Duration {
        let exp = self
            .base
            .saturating_mul(1_u32 << attempt.saturating_sub(1).min(16))
            .min(self.cap);
        let jitter_unit = fnv1a(seed ^ u64::from(attempt)) % 256;
        let jitter = exp.mul_f64(jitter_unit as f64 / 256.0 * 0.25);
        exp + jitter
    }
}

/// FNV-1a — the deterministic stand-in for an RNG (nothing here needs
/// unpredictability, only de-synchronization).
fn fnv1a(x: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in x.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Submits one SAPK scan with reconnect-and-retry on transient
/// failures, returning the response and how many retries it took.
/// Each attempt opens a fresh connection: after an `internal` error or
/// a reset, the old connection's handler state is not worth trusting.
/// Bumps [`Counter::ClientRetries`] once per retry when a registry is
/// attached.
///
/// # Errors
/// The last attempt's error when every attempt failed, or the first
/// permanent (non-transient) error immediately.
pub fn scan_with_retries(
    addr: &str,
    sapk_bytes: &[u8],
    deadline_ms: Option<u64>,
    policy: RetryPolicy,
    metrics: Option<&MetricsRegistry>,
) -> Result<(ScanResponse, u32), ClientError> {
    let seed = fnv1a(addr.bytes().map(u64::from).fold(0, |a, b| a << 1 | b));
    let mut attempt = 0_u32;
    loop {
        let outcome = Client::connect(addr).and_then(|mut c| c.scan_sapk(sapk_bytes, deadline_ms));
        match outcome {
            Ok(resp) => return Ok((resp, attempt)),
            Err(err) if attempt < policy.retries && err.is_transient() => {
                attempt += 1;
                if let Some(metrics) = metrics {
                    metrics.add(Counter::ClientRetries, 1);
                }
                std::thread::sleep(policy.delay(attempt, seed));
            }
            Err(err) => return Err(err),
        }
    }
}

/// A connected scan-service client. One request is in flight at a
/// time; open several clients for concurrent submission.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `127.0.0.1:7744`).
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // Request/response lockstep with small frames: Nagle plus
        // delayed ACK would add ~40ms to every roundtrip.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one line and reads one response line, parsed once to a
    /// value tree (scan responses carry a full report, so envelope
    /// dispatch and the typed response are two views of one parse).
    fn roundtrip(&mut self, line: &str) -> Result<(Envelope, serde::Value), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let raw = match protocol::read_line_bounded(&mut self.reader, protocol::MAX_LINE_BYTES)? {
            LineRead::Line(raw) => raw,
            LineRead::Eof => {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )))
            }
            LineRead::TooLong => {
                return Err(ClientError::Protocol("oversized response line".into()))
            }
        };
        let value = serde_json::from_str_value(&raw)
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
        let envelope = Envelope::from_value(&value)
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
        Ok((envelope, value))
    }

    /// Dispatches a parsed response into `T` or the typed error.
    fn expect<T: serde::Deserialize>(
        kind: &str,
        envelope: &Envelope,
        value: &serde::Value,
    ) -> Result<T, ClientError> {
        match envelope.kind.as_deref() {
            Some(k) if k == kind => T::from_value(value)
                .map_err(|e| ClientError::Protocol(format!("bad {kind} response: {e}"))),
            Some("error") => {
                let err = ErrorResponse::from_value(value)
                    .map_err(|e| ClientError::Protocol(format!("bad error response: {e}")))?;
                Err(ClientError::Rejected(err))
            }
            other => Err(ClientError::Protocol(format!(
                "expected {kind} response, got kind {other:?}"
            ))),
        }
    }

    /// Submits raw SAPK container bytes for scanning and awaits the
    /// report (or a typed rejection).
    ///
    /// # Errors
    /// [`ClientError::Rejected`] carries the server's typed error
    /// (`busy`, `timeout`, `bad_package`, `draining`, …).
    pub fn scan_sapk(
        &mut self,
        sapk_bytes: &[u8],
        deadline_ms: Option<u64>,
    ) -> Result<ScanResponse, ClientError> {
        let req = ScanRequest::new(sapk_bytes, deadline_ms);
        let (envelope, value) = self.roundtrip(&protocol::to_line(&req))?;
        Self::expect("scan", &envelope, &value)
    }

    /// Fetches daemon health and accounting.
    ///
    /// # Errors
    /// See [`scan_sapk`](Self::scan_sapk).
    pub fn status(&mut self) -> Result<StatusResponse, ClientError> {
        let req = Envelope {
            v: PROTOCOL_VERSION,
            kind: Some("status".to_string()),
        };
        let (envelope, value) = self.roundtrip(&protocol::to_line(&req))?;
        Self::expect("status", &envelope, &value)
    }

    /// Fetches the daemon's full observability view: phase spans,
    /// monotone counters, cache surfaces, meter totals, queue state.
    ///
    /// # Errors
    /// See [`scan_sapk`](Self::scan_sapk).
    pub fn metrics(&mut self) -> Result<MetricsResponse, ClientError> {
        let req = Envelope {
            v: PROTOCOL_VERSION,
            kind: Some("metrics".to_string()),
        };
        let (envelope, value) = self.roundtrip(&protocol::to_line(&req))?;
        Self::expect("metrics", &envelope, &value)
    }

    /// Requests a graceful drain; the acknowledgement carries the final
    /// counters.
    ///
    /// # Errors
    /// See [`scan_sapk`](Self::scan_sapk).
    pub fn shutdown(&mut self) -> Result<StatusResponse, ClientError> {
        let req = Envelope {
            v: PROTOCOL_VERSION,
            kind: Some("shutdown".to_string()),
        };
        let (envelope, value) = self.roundtrip(&protocol::to_line(&req))?;
        Self::expect("status", &envelope, &value)
    }

    /// Sends a raw pre-framed line and returns the raw response line —
    /// the hook the robustness tests use to speak malformed dialects.
    ///
    /// # Errors
    /// Transport errors only; the response is returned unparsed.
    pub fn raw_roundtrip(&mut self, line: &str) -> Result<String, ClientError> {
        let mut framed = line.to_string();
        if !framed.ends_with('\n') {
            framed.push('\n');
        }
        self.writer.write_all(framed.as_bytes())?;
        self.writer.flush()?;
        match protocol::read_line_bounded(&mut self.reader, protocol::MAX_LINE_BYTES)? {
            LineRead::Line(raw) => Ok(raw),
            LineRead::Eof => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            LineRead::TooLong => Err(ClientError::Protocol("oversized response line".into())),
        }
    }
}
