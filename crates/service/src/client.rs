//! Client side of the scan-service protocol: one blocking connection,
//! request/response lines in lockstep.

use std::io::{BufReader, Write};
use std::net::TcpStream;

use serde::Deserialize as _;

use crate::protocol::{
    self, Envelope, ErrorResponse, LineRead, MetricsResponse, ScanRequest, ScanResponse,
    StatusResponse, PROTOCOL_VERSION,
};

/// Why a service call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or connection closed).
    Io(std::io::Error),
    /// The server answered, but with a typed rejection (`busy`,
    /// `timeout`, `bad_package`, …).
    Rejected(ErrorResponse),
    /// The server's bytes did not parse as a protocol message.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "service transport error: {e}"),
            ClientError::Rejected(e) => {
                write!(f, "service rejected request: {} ({})", e.code, e.message)
            }
            ClientError::Protocol(msg) => write!(f, "service protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected scan-service client. One request is in flight at a
/// time; open several clients for concurrent submission.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `127.0.0.1:7744`).
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // Request/response lockstep with small frames: Nagle plus
        // delayed ACK would add ~40ms to every roundtrip.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one line and reads one response line, parsed once to a
    /// value tree (scan responses carry a full report, so envelope
    /// dispatch and the typed response are two views of one parse).
    fn roundtrip(&mut self, line: &str) -> Result<(Envelope, serde::Value), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let raw = match protocol::read_line_bounded(&mut self.reader, protocol::MAX_LINE_BYTES)? {
            LineRead::Line(raw) => raw,
            LineRead::Eof => {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )))
            }
            LineRead::TooLong => {
                return Err(ClientError::Protocol("oversized response line".into()))
            }
        };
        let value = serde_json::from_str_value(&raw)
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
        let envelope = Envelope::from_value(&value)
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
        Ok((envelope, value))
    }

    /// Dispatches a parsed response into `T` or the typed error.
    fn expect<T: serde::Deserialize>(
        kind: &str,
        envelope: &Envelope,
        value: &serde::Value,
    ) -> Result<T, ClientError> {
        match envelope.kind.as_deref() {
            Some(k) if k == kind => T::from_value(value)
                .map_err(|e| ClientError::Protocol(format!("bad {kind} response: {e}"))),
            Some("error") => {
                let err = ErrorResponse::from_value(value)
                    .map_err(|e| ClientError::Protocol(format!("bad error response: {e}")))?;
                Err(ClientError::Rejected(err))
            }
            other => Err(ClientError::Protocol(format!(
                "expected {kind} response, got kind {other:?}"
            ))),
        }
    }

    /// Submits raw SAPK container bytes for scanning and awaits the
    /// report (or a typed rejection).
    ///
    /// # Errors
    /// [`ClientError::Rejected`] carries the server's typed error
    /// (`busy`, `timeout`, `bad_package`, `draining`, …).
    pub fn scan_sapk(
        &mut self,
        sapk_bytes: &[u8],
        deadline_ms: Option<u64>,
    ) -> Result<ScanResponse, ClientError> {
        let req = ScanRequest::new(sapk_bytes, deadline_ms);
        let (envelope, value) = self.roundtrip(&protocol::to_line(&req))?;
        Self::expect("scan", &envelope, &value)
    }

    /// Fetches daemon health and accounting.
    ///
    /// # Errors
    /// See [`scan_sapk`](Self::scan_sapk).
    pub fn status(&mut self) -> Result<StatusResponse, ClientError> {
        let req = Envelope {
            v: PROTOCOL_VERSION,
            kind: Some("status".to_string()),
        };
        let (envelope, value) = self.roundtrip(&protocol::to_line(&req))?;
        Self::expect("status", &envelope, &value)
    }

    /// Fetches the daemon's full observability view: phase spans,
    /// monotone counters, cache surfaces, meter totals, queue state.
    ///
    /// # Errors
    /// See [`scan_sapk`](Self::scan_sapk).
    pub fn metrics(&mut self) -> Result<MetricsResponse, ClientError> {
        let req = Envelope {
            v: PROTOCOL_VERSION,
            kind: Some("metrics".to_string()),
        };
        let (envelope, value) = self.roundtrip(&protocol::to_line(&req))?;
        Self::expect("metrics", &envelope, &value)
    }

    /// Requests a graceful drain; the acknowledgement carries the final
    /// counters.
    ///
    /// # Errors
    /// See [`scan_sapk`](Self::scan_sapk).
    pub fn shutdown(&mut self) -> Result<StatusResponse, ClientError> {
        let req = Envelope {
            v: PROTOCOL_VERSION,
            kind: Some("shutdown".to_string()),
        };
        let (envelope, value) = self.roundtrip(&protocol::to_line(&req))?;
        Self::expect("status", &envelope, &value)
    }

    /// Sends a raw pre-framed line and returns the raw response line —
    /// the hook the robustness tests use to speak malformed dialects.
    ///
    /// # Errors
    /// Transport errors only; the response is returned unparsed.
    pub fn raw_roundtrip(&mut self, line: &str) -> Result<String, ClientError> {
        let mut framed = line.to_string();
        if !framed.ends_with('\n') {
            framed.push('\n');
        }
        self.writer.write_all(framed.as_bytes())?;
        self.writer.flush()?;
        match protocol::read_line_bounded(&mut self.reader, protocol::MAX_LINE_BYTES)? {
            LineRead::Line(raw) => Ok(raw),
            LineRead::Eof => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            LineRead::TooLong => Err(ClientError::Protocol("oversized response line".into())),
        }
    }
}
