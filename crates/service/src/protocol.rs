//! The wire protocol of the scan service: newline-delimited JSON over
//! TCP, one request per line, one response line per request, in order.
//!
//! Every message carries a `v` protocol-version field and a `kind`
//! discriminator; the server dispatches on a small [`Envelope`] first
//! (unknown fields are ignored by the value-model deserializer), then
//! parses the full typed message. Package bytes travel base64-encoded
//! inside the JSON line so the protocol stays printable and
//! line-framed.
//!
//! Robustness contract: no input — malformed JSON, an unknown `kind`,
//! a wrong version, an oversized line, undecodable base64, or a
//! corrupt SAPK container — may kill the daemon. Each failure maps to
//! a typed [`ErrorResponse`] (and, for oversized lines, a closed
//! connection, since the framing is lost).

use saintdroid::Report;
use serde::{Deserialize, Serialize};

/// Current protocol version; bumped on incompatible wire changes.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard ceiling on one request line (base64-encoded package included).
/// A line that exceeds it is answered with `too_large` and the
/// connection is closed — the remainder of the oversized line cannot
/// be re-framed.
pub const MAX_LINE_BYTES: usize = 64 * 1024 * 1024;

/// Machine-readable rejection codes (the `429`-style vocabulary of the
/// service). Stable strings, mirrored in DESIGN.md §4.3.
pub mod error_code {
    /// Queue at capacity — resubmit later.
    pub const BUSY: &str = "busy";
    /// The daemon is draining for shutdown; no new work admitted.
    pub const DRAINING: &str = "draining";
    /// Per-request deadline expired before the scan finished.
    pub const TIMEOUT: &str = "timeout";
    /// The line was not valid JSON or not a known request shape.
    pub const MALFORMED: &str = "malformed";
    /// The request line exceeded the server's line limit.
    pub const TOO_LARGE: &str = "too_large";
    /// The request's `v` does not match [`super::PROTOCOL_VERSION`].
    pub const UNSUPPORTED_VERSION: &str = "unsupported_version";
    /// The base64 payload did not decode to a valid SAPK container.
    pub const BAD_PACKAGE: &str = "bad_package";
    /// The scan (or the response path) panicked server-side; the panic
    /// was isolated and the daemon keeps serving. Transient from the
    /// client's perspective — a resubmission runs on a fresh worker.
    pub const INTERNAL: &str = "internal";
}

/// The `kind` discriminator + version, parsed before full dispatch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Envelope {
    /// Protocol version of the message.
    pub v: u32,
    /// Message kind: `scan`, `status`, `metrics`, or `shutdown`.
    pub kind: Option<String>,
}

/// Submit one SAPK package for analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScanRequest {
    /// Protocol version ([`PROTOCOL_VERSION`]).
    pub v: u32,
    /// Always `"scan"`.
    pub kind: String,
    /// The SAPK container bytes, base64-encoded (standard alphabet,
    /// padded).
    pub package_b64: String,
    /// Optional deadline in milliseconds: if the scan has not finished
    /// (queue wait included) within this budget, the server answers
    /// `timeout` instead of a report.
    pub deadline_ms: Option<u64>,
}

impl ScanRequest {
    /// Builds a request around raw SAPK bytes.
    #[must_use]
    pub fn new(sapk_bytes: &[u8], deadline_ms: Option<u64>) -> Self {
        ScanRequest {
            v: PROTOCOL_VERSION,
            kind: "scan".to_string(),
            package_b64: base64_encode(sapk_bytes),
            deadline_ms,
        }
    }
}

/// A successful scan: the report plus the exit code `saintdroid scan`
/// would have returned for this package (0 clean / 2 mismatches — the
/// CLI contract; protocol-level failures map to typed errors instead
/// of an exit code).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScanResponse {
    /// Protocol version.
    pub v: u32,
    /// Always `"scan"`.
    pub kind: String,
    /// Mirror of the CLI exit-code contract: 0 clean, 2 mismatches.
    pub exit_code: u8,
    /// The full report — byte-identical mismatches and meter to what a
    /// local `saintdroid scan` produces for the same package.
    pub report: Report,
}

impl ScanResponse {
    /// Wraps a finished report.
    #[must_use]
    pub fn new(report: Report) -> Self {
        let exit_code = if report.is_clean() { 0 } else { 2 };
        ScanResponse {
            v: PROTOCOL_VERSION,
            kind: "scan".to_string(),
            exit_code,
            report,
        }
    }
}

/// Activity counters of one shared cache, for [`StatusResponse`] and
/// [`MetricsResponse`]. Maintains `hits + misses == lookups`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheStatus {
    /// Total probes against the cache.
    pub lookups: u64,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that ran the materializer.
    pub misses: u64,
    /// Distinct keys held.
    pub entries: usize,
    /// Hit fraction in `[0, 1]` (zero before any lookup).
    pub hit_rate: f64,
}

impl From<saint_analysis::CacheStats> for CacheStatus {
    fn from(s: saint_analysis::CacheStats) -> Self {
        CacheStatus {
            lookups: s.lookups,
            hits: s.hits,
            misses: s.misses,
            entries: s.entries,
            hit_rate: s.hit_rate(),
        }
    }
}

impl From<saint_obs::CacheSnapshot> for CacheStatus {
    fn from(s: saint_obs::CacheSnapshot) -> Self {
        CacheStatus {
            lookups: s.lookups,
            hits: s.hits,
            misses: s.misses,
            entries: s.entries as usize,
            hit_rate: s.hit_rate(),
        }
    }
}

/// Startup provenance of the engine's framework model: whether the
/// daemon booted from a frozen (mmap'd) image, and what that cost —
/// reported by both the `status` and `metrics` verbs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrozenStatus {
    /// `true`: the framework model is served from a frozen image
    /// (API database, permission map, and class bodies all come out of
    /// the mapping — nothing was mined at startup, unless `cached` is
    /// `false` and this boot compiled the image first).
    pub frozen: bool,
    /// `true` when the image pre-existed and was attached directly;
    /// `false` when this boot had to parse-and-freeze it first.
    pub cached: bool,
    /// `true` when the boot attached on the trusted warm path: the
    /// full-image checksum and eager index validation were skipped
    /// because a prior boot already verified this image end to end.
    pub trusted: bool,
    /// Path of the image being served.
    pub image: String,
    /// Wall seconds the frozen attach took (map + verify + table
    /// decode; includes compile + write on a first run).
    pub startup_secs: f64,
    /// Image bytes made addressable.
    pub bytes_mapped: u64,
    /// Whether the bytes are an actual page mapping (`false` = the
    /// owned-buffer fallback).
    pub page_mapped: bool,
    /// Framework class bodies bulk-loaded into the warm class cache
    /// from the image at startup.
    pub classes_preloaded: u64,
}

impl From<saintdroid::FrozenBoot> for FrozenStatus {
    fn from(b: saintdroid::FrozenBoot) -> Self {
        FrozenStatus {
            frozen: true,
            cached: b.attached,
            trusted: b.trusted,
            image: b.image.display().to_string(),
            startup_secs: b.startup.as_secs_f64(),
            bytes_mapped: b.bytes_mapped,
            page_mapped: b.page_mapped,
            classes_preloaded: b.classes_preloaded as u64,
        }
    }
}

/// Daemon health and accounting; also the acknowledgement of a
/// `shutdown` request (final counters before the drain).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatusResponse {
    /// Protocol version.
    pub v: u32,
    /// Always `"status"`.
    pub kind: String,
    /// Milliseconds since the daemon finished warming its engine.
    pub uptime_ms: u64,
    /// Scans completed over the daemon's lifetime.
    pub jobs_served: u64,
    /// Scans currently executing on job workers.
    pub jobs_active: usize,
    /// Live scan-worker threads (the supervisor respawns crashed ones,
    /// so this returns to the configured pool size after a fault).
    pub scan_workers: usize,
    /// Scans queued but not yet started.
    pub queue_depth: usize,
    /// Admission-control bound: requests beyond this depth get `busy`.
    pub queue_capacity: usize,
    /// Submissions rejected with `busy` so far.
    pub rejected_busy: u64,
    /// Requests that expired (`timeout`) so far.
    pub timed_out: u64,
    /// Whether the daemon is draining toward shutdown.
    pub draining: bool,
    /// Warm framework-class cache counters, if the engine carries one.
    pub class_cache: Option<CacheStatus>,
    /// Warm framework-artifact cache counters, if present.
    pub artifact_cache: Option<CacheStatus>,
    /// Warm framework-subtree scan cache counters, if present.
    pub scan_cache: Option<CacheStatus>,
    /// Frozen-image startup provenance; `None` when the engine booted
    /// on the classic parse path.
    pub frozen: Option<FrozenStatus>,
}

/// One phase's span accounting, for [`MetricsResponse`]. Mirrors
/// [`saint_obs::PhaseSnapshot`] with owned strings for the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseStatus {
    /// Stable snake_case phase name (`clvm_load`, `explore`, …).
    pub name: String,
    /// Spans recorded.
    pub count: u64,
    /// Total nanoseconds across those spans.
    pub total_ns: u64,
    /// Log2-µs latency buckets ([`saint_obs::HIST_BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

/// One monotone counter, for [`MetricsResponse`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterStatus {
    /// Stable snake_case counter name (`apps_scanned`, …).
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// Accumulated load-meter totals, for [`MetricsResponse`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeterStatus {
    /// Classes materialized across all scans.
    pub classes_loaded: u64,
    /// Bytes of class metadata loaded.
    pub class_bytes: u64,
    /// Method bodies analyzed.
    pub methods_analyzed: u64,
    /// Bytes of graph/artifact storage built.
    pub graph_bytes: u64,
    /// Lookups no provider could resolve.
    pub unresolved_lookups: u64,
}

/// Job-queue state, for [`MetricsResponse`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueStatus {
    /// Jobs waiting for a worker right now.
    pub depth: u64,
    /// Admission-control capacity.
    pub capacity: u64,
    /// Jobs currently being scanned.
    pub active: u64,
    /// Jobs completed since startup.
    pub served: u64,
    /// Jobs rejected because the queue was full.
    pub rejected_busy: u64,
    /// Jobs whose deadline expired while queued.
    pub timed_out: u64,
}

impl From<saint_obs::QueueSnapshot> for QueueStatus {
    fn from(q: saint_obs::QueueSnapshot) -> Self {
        QueueStatus {
            depth: q.depth,
            capacity: q.capacity,
            active: q.active,
            served: q.served,
            rejected_busy: q.rejected_busy,
            timed_out: q.timed_out,
        }
    }
}

/// The full observability view of the daemon: phase spans, monotone
/// counters, cache surfaces, meter totals, and queue state — the wire
/// form of [`saint_obs::MetricsSnapshot`], answering a `metrics`
/// request. Versioned like every other message: a wrong `v` gets
/// `unsupported_version`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsResponse {
    /// Protocol version.
    pub v: u32,
    /// Always `"metrics"`.
    pub kind: String,
    /// Per-phase span accounting, in [`saint_obs::Phase::ALL`] order.
    pub phases: Vec<PhaseStatus>,
    /// Monotone counters, in [`saint_obs::Counter::ALL`] order.
    pub counters: Vec<CounterStatus>,
    /// Warm framework-class cache counters, if present.
    pub class_cache: Option<CacheStatus>,
    /// Warm framework-artifact cache counters, if present.
    pub artifact_cache: Option<CacheStatus>,
    /// Warm framework-subtree scan cache counters, if present.
    pub scan_cache: Option<CacheStatus>,
    /// Accumulated load-meter totals.
    pub meter: MeterStatus,
    /// Queue state (always present when answered by the daemon).
    pub queue: Option<QueueStatus>,
    /// Frozen-image startup provenance; `None` when the engine booted
    /// on the classic parse path.
    pub frozen: Option<FrozenStatus>,
}

impl MetricsResponse {
    /// Converts the unified snapshot into its wire form.
    #[must_use]
    pub fn new(snap: saint_obs::MetricsSnapshot) -> Self {
        MetricsResponse {
            v: PROTOCOL_VERSION,
            kind: "metrics".to_string(),
            phases: snap
                .registry
                .phases
                .iter()
                .map(|p| PhaseStatus {
                    name: p.name.to_string(),
                    count: p.count,
                    total_ns: p.total_ns,
                    buckets: p.buckets.clone(),
                })
                .collect(),
            counters: snap
                .registry
                .counters
                .iter()
                .map(|c| CounterStatus {
                    name: c.name.to_string(),
                    value: c.value,
                })
                .collect(),
            class_cache: snap.class_cache.map(Into::into),
            artifact_cache: snap.artifact_cache.map(Into::into),
            scan_cache: snap.deep_scan_cache.map(Into::into),
            meter: MeterStatus {
                classes_loaded: snap.meter.classes_loaded,
                class_bytes: snap.meter.class_bytes,
                methods_analyzed: snap.meter.methods_analyzed,
                graph_bytes: snap.meter.graph_bytes,
                unresolved_lookups: snap.meter.unresolved_lookups,
            },
            queue: snap.queue.map(Into::into),
            frozen: None,
        }
    }

    /// Attaches frozen-boot provenance to the response.
    #[must_use]
    pub fn with_frozen(mut self, frozen: Option<FrozenStatus>) -> Self {
        self.frozen = frozen;
        self
    }

    /// Looks up a phase by its stable name.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<&PhaseStatus> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Looks up a counter value by its stable name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }
}

/// A typed rejection; the daemon stays alive after sending one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Protocol version.
    pub v: u32,
    /// Always `"error"`.
    pub kind: String,
    /// One of the [`error_code`] constants.
    pub code: String,
    /// Human-readable detail.
    pub message: String,
    /// For [`error_code::BAD_PACKAGE`] container failures: byte offset
    /// of the offending input, when the decoder can point at one.
    pub offset: Option<u64>,
    /// For [`error_code::INTERNAL`]: the pipeline phase that panicked
    /// (`decode`, `explore`, `detect_invocation`, …).
    pub phase: Option<String>,
}

impl ErrorResponse {
    /// Builds an error response with the current protocol version.
    #[must_use]
    pub fn new(code: &str, message: impl Into<String>) -> Self {
        ErrorResponse {
            v: PROTOCOL_VERSION,
            kind: "error".to_string(),
            code: code.to_string(),
            message: message.into(),
            offset: None,
            phase: None,
        }
    }

    /// Attaches the offending byte offset (decode failures).
    #[must_use]
    pub fn with_offset(mut self, offset: u64) -> Self {
        self.offset = Some(offset);
        self
    }

    /// Attaches the panicking pipeline phase (internal errors).
    #[must_use]
    pub fn with_phase(mut self, phase: impl Into<String>) -> Self {
        self.phase = Some(phase.into());
        self
    }
}

// ---------------------------------------------------------------------
// Base64 (standard alphabet, padded) — std-only, no external crate.
// ---------------------------------------------------------------------

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as standard padded base64.
#[must_use]
pub fn base64_encode(input: &[u8]) -> String {
    let mut out = String::with_capacity(input.len().div_ceil(3) * 4);
    for chunk in input.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(B64_ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(B64_ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            B64_ALPHABET[(triple >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64_ALPHABET[triple as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes standard padded base64; `None` on any malformed input
/// (bad characters, bad length, data after padding).
#[must_use]
pub fn base64_decode(input: &str) -> Option<Vec<u8>> {
    let bytes = input.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some(u32::from(c - b'A')),
            b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = chunk.iter().filter(|&&c| c == b'=').count();
        // Padding is only legal as the final one or two characters.
        if pad > 2 || (pad > 0 && !last) || (pad >= 1 && chunk[3] != b'=') {
            return None;
        }
        if pad == 2 && chunk[2] != b'=' {
            return None;
        }
        let v0 = val(chunk[0])?;
        let v1 = val(chunk[1])?;
        let v2 = if pad == 2 { 0 } else { val(chunk[2])? };
        let v3 = if pad >= 1 { 0 } else { val(chunk[3])? };
        let triple = (v0 << 18) | (v1 << 12) | (v2 << 6) | v3;
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Some(out)
}

// ---------------------------------------------------------------------
// Bounded line framing
// ---------------------------------------------------------------------

/// Outcome of reading one protocol line.
#[derive(Debug)]
pub enum LineRead {
    /// A complete line (without the trailing `\n`).
    Line(String),
    /// The peer closed the connection before any byte of a new line.
    Eof,
    /// The line exceeded the limit; the connection can no longer be
    /// framed and must be closed after an error response.
    TooLong,
}

/// Reads one `\n`-terminated line, never buffering more than `max`
/// bytes. Invalid UTF-8 is surfaced as a line that will fail JSON
/// parsing (lossy conversion), which maps to `malformed` — framing is
/// still intact in that case.
///
/// # Errors
/// Propagates transport errors (including read timeouts, which the
/// server loop uses as a drain poll) other than clean EOF.
pub fn read_line_bounded<R: std::io::BufRead>(
    reader: &mut R,
    max: usize,
) -> std::io::Result<LineRead> {
    let mut buf = Vec::new();
    read_line_bounded_into(reader, max, &mut buf)
}

/// [`read_line_bounded`] with a caller-owned accumulator: bytes read
/// before a transport error (a read timeout above all) stay in `buf`,
/// so a server polling its drain flag between timeouts can resume the
/// partial line instead of silently dropping it. `buf` is emptied
/// whenever a [`LineRead`] is returned.
///
/// # Errors
/// Propagates transport errors other than clean EOF; `buf` keeps the
/// partial line.
pub fn read_line_bounded_into<R: std::io::BufRead>(
    reader: &mut R,
    max: usize,
    buf: &mut Vec<u8>,
) -> std::io::Result<LineRead> {
    loop {
        let available = match reader.fill_buf() {
            Ok(a) => a,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return if buf.is_empty() {
                Ok(LineRead::Eof)
            } else {
                // A final unterminated line still parses as a request.
                let line = String::from_utf8_lossy(buf).into_owned();
                buf.clear();
                Ok(LineRead::Line(line))
            };
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            if buf.len() + pos > max {
                reader.consume(pos + 1);
                buf.clear();
                return Ok(LineRead::TooLong);
            }
            buf.extend_from_slice(&available[..pos]);
            reader.consume(pos + 1);
            let line = String::from_utf8_lossy(buf).into_owned();
            buf.clear();
            return Ok(LineRead::Line(line));
        }
        let n = available.len();
        if buf.len() + n > max {
            reader.consume(n);
            buf.clear();
            return Ok(LineRead::TooLong);
        }
        buf.extend_from_slice(available);
        reader.consume(n);
    }
}

/// Serializes a message and frames it as one protocol line.
///
/// All protocol types serialize infallibly in practice; if one ever
/// does not, the client still gets a well-formed `internal` error line
/// instead of a panicked handler and a dropped connection.
#[must_use]
pub fn to_line<T: Serialize>(msg: &T) -> String {
    match serde_json::to_string(msg) {
        Ok(mut line) => {
            line.push('\n');
            line
        }
        Err(_) => format!(
            "{{\"v\":{PROTOCOL_VERSION},\"kind\":\"error\",\"code\":\"{}\",\
             \"message\":\"response failed to serialize\",\"offset\":null,\
             \"phase\":null}}\n",
            error_code::INTERNAL
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_roundtrip_all_residues() {
        for len in 0..32usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + len) as u8).collect();
            let enc = base64_encode(&data);
            assert_eq!(enc.len() % 4, 0);
            assert_eq!(base64_decode(&enc).expect("decodes"), data);
        }
    }

    #[test]
    fn base64_known_vectors() {
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64_decode("Zm9vYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn base64_rejects_malformed() {
        for bad in ["Zg=", "Zg= =", "Z===", "Zg==Zg==x", "Z!==", "=Zg="] {
            assert!(base64_decode(bad).is_none(), "{bad:?} must not decode");
        }
        // Padding mid-stream is illegal even with valid length.
        assert!(base64_decode("Zg==Zm9v").is_none());
    }

    #[test]
    fn envelope_ignores_unknown_fields() {
        let env: Envelope =
            serde_json::from_str(r#"{"v":1,"kind":"scan","package_b64":"AAAA"}"#).unwrap();
        assert_eq!(env.v, 1);
        assert_eq!(env.kind.as_deref(), Some("scan"));
    }

    #[test]
    fn scan_request_roundtrip() {
        let req = ScanRequest::new(b"sapk-bytes", Some(1500));
        let line = to_line(&req);
        assert!(line.ends_with('\n'));
        let back: ScanRequest = serde_json::from_str(line.trim_end()).unwrap();
        assert_eq!(back.v, PROTOCOL_VERSION);
        assert_eq!(back.deadline_ms, Some(1500));
        assert_eq!(
            base64_decode(&back.package_b64).unwrap(),
            b"sapk-bytes".to_vec()
        );
    }

    #[test]
    fn error_response_shape() {
        let err = ErrorResponse::new(error_code::BUSY, "queue full");
        let line = to_line(&err);
        let back: ErrorResponse = serde_json::from_str(line.trim_end()).unwrap();
        assert_eq!(back.kind, "error");
        assert_eq!(back.code, "busy");
    }

    #[test]
    fn bounded_reader_frames_and_guards() {
        let data = b"short\nexactly10!\nway too long line\nafter\n";
        let mut r = std::io::BufReader::new(&data[..]);
        match read_line_bounded(&mut r, 10).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "short"),
            other => panic!("{other:?}"),
        }
        match read_line_bounded(&mut r, 10).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "exactly10!"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            read_line_bounded(&mut r, 10).unwrap(),
            LineRead::TooLong
        ));
        // Framing recovers at the next newline.
        match read_line_bounded(&mut r, 10).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "after"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            read_line_bounded(&mut r, 10).unwrap(),
            LineRead::Eof
        ));
    }

    #[test]
    fn bounded_reader_handles_unterminated_tail() {
        let mut r = std::io::BufReader::new(&b"tail-no-newline"[..]);
        match read_line_bounded(&mut r, 64).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "tail-no-newline"),
            other => panic!("{other:?}"),
        }
    }

    /// A `BufRead` replaying a fixed script of chunks and transport
    /// errors, for exercising the timeout path without sockets.
    struct Scripted {
        steps: std::collections::VecDeque<std::io::Result<&'static [u8]>>,
        cur: &'static [u8],
    }

    impl std::io::Read for Scripted {
        fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
            unreachable!("the bounded reader only uses fill_buf/consume")
        }
    }

    impl std::io::BufRead for Scripted {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            if self.cur.is_empty() {
                match self.steps.pop_front() {
                    Some(Ok(bytes)) => self.cur = bytes,
                    Some(Err(e)) => return Err(e),
                    None => {}
                }
            }
            Ok(self.cur)
        }

        fn consume(&mut self, amt: usize) {
            self.cur = &self.cur[amt..];
        }
    }

    #[test]
    fn partial_line_survives_a_read_timeout() {
        // A request split across a read-timeout poll: "par" arrives,
        // the socket times out (the server's drain poll), the rest
        // follows. The accumulator hands the timeout up but keeps the
        // received half, so the resumed call completes the line.
        let mut r = Scripted {
            steps: [
                Ok(&b"par"[..]),
                Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "poll")),
                Ok(&b"tial\nnext\n"[..]),
            ]
            .into_iter()
            .collect(),
            cur: b"",
        };
        let mut buf = Vec::new();
        let err = read_line_bounded_into(&mut r, 64, &mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        assert_eq!(buf, b"par");
        match read_line_bounded_into(&mut r, 64, &mut buf).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "partial"),
            other => panic!("{other:?}"),
        }
        match read_line_bounded_into(&mut r, 64, &mut buf).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "next"),
            other => panic!("{other:?}"),
        }
    }
}
