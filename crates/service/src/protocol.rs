//! The wire protocol of the scan service: newline-delimited JSON over
//! TCP, one request per line, one response line per request, in order.
//!
//! Every message carries a `v` protocol-version field and a `kind`
//! discriminator; the server dispatches on a small [`Envelope`] first
//! (unknown fields are ignored by the value-model deserializer), then
//! parses the full typed message. Package bytes travel base64-encoded
//! inside the JSON line so the protocol stays printable and
//! line-framed.
//!
//! Robustness contract: no input — malformed JSON, an unknown `kind`,
//! a wrong version, an oversized line, undecodable base64, or a
//! corrupt SAPK container — may kill the daemon. Each failure maps to
//! a typed [`ErrorResponse`] (and, for oversized lines, a closed
//! connection, since the framing is lost).

use saintdroid::Report;
use serde::{Deserialize, Serialize};

/// Current protocol version; bumped on incompatible wire changes.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard ceiling on one request line (base64-encoded package included).
/// A line that exceeds it is answered with `too_large` and the
/// connection is closed — the remainder of the oversized line cannot
/// be re-framed.
pub const MAX_LINE_BYTES: usize = 64 * 1024 * 1024;

/// Machine-readable rejection codes (the `429`-style vocabulary of the
/// service). Stable strings, mirrored in DESIGN.md §4.3.
pub mod error_code {
    /// Queue at capacity — resubmit later.
    pub const BUSY: &str = "busy";
    /// The daemon is draining for shutdown; no new work admitted.
    pub const DRAINING: &str = "draining";
    /// Per-request deadline expired before the scan finished.
    pub const TIMEOUT: &str = "timeout";
    /// The line was not valid JSON or not a known request shape.
    pub const MALFORMED: &str = "malformed";
    /// The request line exceeded the server's line limit.
    pub const TOO_LARGE: &str = "too_large";
    /// The request's `v` does not match [`super::PROTOCOL_VERSION`].
    pub const UNSUPPORTED_VERSION: &str = "unsupported_version";
    /// The base64 payload did not decode to a valid SAPK container.
    pub const BAD_PACKAGE: &str = "bad_package";
    /// The request's `detectors` assertion does not match the detector
    /// families the daemon's warm engine runs (or failed to parse).
    /// The daemon's set is fixed at startup (`serve --detectors`) —
    /// re-point the client at a daemon running the set it expects.
    pub const DETECTOR_MISMATCH: &str = "detector_mismatch";
    /// The scan (or the response path) panicked server-side; the panic
    /// was isolated and the daemon keeps serving. Transient from the
    /// client's perspective — a resubmission runs on a fresh worker.
    pub const INTERNAL: &str = "internal";
}

/// The `kind` discriminator + version, parsed before full dispatch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Envelope {
    /// Protocol version of the message.
    pub v: u32,
    /// Message kind: `scan`, `delta`, `status`, `metrics`, or
    /// `shutdown`.
    pub kind: Option<String>,
}

/// Submit one SAPK package for analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScanRequest {
    /// Protocol version ([`PROTOCOL_VERSION`]).
    pub v: u32,
    /// Always `"scan"`.
    pub kind: String,
    /// Optional client-chosen request id, echoed verbatim on the
    /// response (report or error). Pipelined clients use it to match
    /// out-of-order responses to in-flight requests; lockstep clients
    /// may omit it (the v1 wire shape without `id` stays valid — this
    /// field is additive, which is the protocol's versioning rule:
    /// `v` bumps only on *incompatible* changes).
    pub id: Option<u64>,
    /// The SAPK container bytes, base64-encoded (standard alphabet,
    /// padded).
    pub package_b64: String,
    /// Optional deadline in milliseconds: if the scan has not finished
    /// (queue wait included) within this budget, the server answers
    /// `timeout` instead of a report.
    pub deadline_ms: Option<u64>,
    /// Optional detector-set assertion, in `DetectorSet` spec syntax
    /// (`"amd"`, `"all"`, or a comma list of `api,apc,prm,dsd`). A
    /// daemon whose engine runs a different set answers
    /// [`error_code::DETECTOR_MISMATCH`] instead of silently serving a
    /// report computed by the wrong detector families. Omitted (the
    /// pre-DSD wire shape) means "whatever the daemon runs" — the
    /// field is additive, like `id`.
    pub detectors: Option<String>,
}

impl ScanRequest {
    /// Builds a request around raw SAPK bytes.
    #[must_use]
    pub fn new(sapk_bytes: &[u8], deadline_ms: Option<u64>) -> Self {
        ScanRequest {
            v: PROTOCOL_VERSION,
            kind: "scan".to_string(),
            id: None,
            package_b64: base64_encode(sapk_bytes),
            deadline_ms,
            detectors: None,
        }
    }

    /// Tags the request with a pipeline id (echoed on the response).
    #[must_use]
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = Some(id);
        self
    }

    /// Asserts the detector families the report must come from (see
    /// the `detectors` field).
    #[must_use]
    pub fn with_detectors(mut self, spec: impl Into<String>) -> Self {
        self.detectors = Some(spec.into());
        self
    }

    /// Turns the request into a `delta` submission: the daemon scans
    /// through its incremental artifact store (`serve --delta-dir`),
    /// reusing cached per-class-group results where content hashes
    /// match. The report is byte-identical to a plain `scan`; the
    /// response additionally carries [`DeltaStatus`] accounting. A
    /// daemon without a store answers with a plain full scan (and no
    /// `delta` block) — the verb is an optimization, never a different
    /// answer.
    #[must_use]
    pub fn into_delta(mut self) -> Self {
        self.kind = "delta".to_string();
        self
    }
}

/// What an incremental (`delta`) scan reused and recomputed — the wire
/// form of the delta layer's per-scan stats, attached to the
/// [`ScanResponse`] of a `delta` request served from a store.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DeltaStatus {
    /// Bundled classes considered (`hits + misses`).
    pub classes_seen: u64,
    /// Classes whose cached artifacts were reused verbatim.
    pub hits: u64,
    /// Classes with no usable cached artifact.
    pub misses: u64,
    /// Classes pushed through a fresh analysis.
    pub reanalyzed: u64,
    /// Whether the whole-app fast path served the scan.
    pub app_hit: bool,
}

impl From<saint_delta::DeltaStats> for DeltaStatus {
    fn from(s: saint_delta::DeltaStats) -> Self {
        DeltaStatus {
            classes_seen: s.classes_seen,
            hits: s.hits,
            misses: s.misses,
            reanalyzed: s.reanalyzed,
            app_hit: s.app_hit,
        }
    }
}

/// A successful scan: the report plus the exit code `saintdroid scan`
/// would have returned for this package (0 clean / 2 mismatches — the
/// CLI contract; protocol-level failures map to typed errors instead
/// of an exit code).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScanResponse {
    /// Protocol version.
    pub v: u32,
    /// Always `"scan"`.
    pub kind: String,
    /// Echo of the request's `id`, when one was given.
    pub id: Option<u64>,
    /// Mirror of the CLI exit-code contract: 0 clean, 2 mismatches.
    pub exit_code: u8,
    /// The full report — byte-identical mismatches and meter to what a
    /// local `saintdroid scan` produces for the same package.
    pub report: Report,
    /// Incremental-scan accounting, present only when a `delta`
    /// request was served through the daemon's artifact store.
    pub delta: Option<DeltaStatus>,
}

impl ScanResponse {
    /// Wraps a finished report.
    #[must_use]
    pub fn new(report: Report) -> Self {
        let exit_code = if report.is_clean() { 0 } else { 2 };
        ScanResponse {
            v: PROTOCOL_VERSION,
            kind: "scan".to_string(),
            id: None,
            exit_code,
            report,
            delta: None,
        }
    }

    /// Echoes the request id on the response.
    #[must_use]
    pub fn with_id(mut self, id: Option<u64>) -> Self {
        self.id = id;
        self
    }

    /// Attaches incremental-scan accounting (answers to `delta`
    /// requests served from a store; the kind echoes the verb).
    #[must_use]
    pub fn with_delta(mut self, stats: DeltaStatus) -> Self {
        self.kind = "delta".to_string();
        self.delta = Some(stats);
        self
    }
}

/// Activity counters of one shared cache, for [`StatusResponse`] and
/// [`MetricsResponse`]. Maintains `hits + misses == lookups`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheStatus {
    /// Total probes against the cache.
    pub lookups: u64,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that ran the materializer.
    pub misses: u64,
    /// Distinct keys held.
    pub entries: usize,
    /// Hit fraction in `[0, 1]` (zero before any lookup).
    pub hit_rate: f64,
}

impl From<saint_analysis::CacheStats> for CacheStatus {
    fn from(s: saint_analysis::CacheStats) -> Self {
        CacheStatus {
            lookups: s.lookups,
            hits: s.hits,
            misses: s.misses,
            entries: s.entries,
            hit_rate: s.hit_rate(),
        }
    }
}

impl From<saint_obs::CacheSnapshot> for CacheStatus {
    fn from(s: saint_obs::CacheSnapshot) -> Self {
        CacheStatus {
            lookups: s.lookups,
            hits: s.hits,
            misses: s.misses,
            entries: s.entries as usize,
            hit_rate: s.hit_rate(),
        }
    }
}

/// Startup provenance of the engine's framework model: whether the
/// daemon booted from a frozen (mmap'd) image, and what that cost —
/// reported by both the `status` and `metrics` verbs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrozenStatus {
    /// `true`: the framework model is served from a frozen image
    /// (API database, permission map, and class bodies all come out of
    /// the mapping — nothing was mined at startup, unless `cached` is
    /// `false` and this boot compiled the image first).
    pub frozen: bool,
    /// `true` when the image pre-existed and was attached directly;
    /// `false` when this boot had to parse-and-freeze it first.
    pub cached: bool,
    /// `true` when the boot attached on the trusted warm path: the
    /// full-image checksum and eager index validation were skipped
    /// because a prior boot already verified this image end to end.
    pub trusted: bool,
    /// Path of the image being served.
    pub image: String,
    /// Wall seconds the frozen attach took (map + verify + table
    /// decode; includes compile + write on a first run).
    pub startup_secs: f64,
    /// Image bytes made addressable.
    pub bytes_mapped: u64,
    /// Whether the bytes are an actual page mapping (`false` = the
    /// owned-buffer fallback).
    pub page_mapped: bool,
    /// Framework class bodies bulk-loaded into the warm class cache
    /// from the image at startup.
    pub classes_preloaded: u64,
}

impl From<saintdroid::FrozenBoot> for FrozenStatus {
    fn from(b: saintdroid::FrozenBoot) -> Self {
        FrozenStatus {
            frozen: true,
            cached: b.attached,
            trusted: b.trusted,
            image: b.image.display().to_string(),
            startup_secs: b.startup.as_secs_f64(),
            bytes_mapped: b.bytes_mapped,
            page_mapped: b.page_mapped,
            classes_preloaded: b.classes_preloaded as u64,
        }
    }
}

/// Live state of the daemon's event-loop reactor, for
/// [`StatusResponse`] and [`MetricsResponse`]: how many sockets it
/// owns, how much work is in flight, and how often it had to push
/// back on clients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReactorStatus {
    /// Client connections currently owned by the reactor.
    pub open_connections: u64,
    /// Scans admitted but not yet answered, across all connections.
    pub inflight: u64,
    /// Connections whose reads are currently suspended (in-flight
    /// window full, or the job queue at capacity).
    pub suspended_connections: u64,
    /// Connections accepted over the daemon's lifetime.
    pub connections_accepted: u64,
    /// Times a connection's reads were suspended for backpressure,
    /// over the daemon's lifetime.
    pub backpressure_suspends: u64,
    /// Response writes that hit a full socket buffer and waited for
    /// writability, over the daemon's lifetime.
    pub write_stalls: u64,
}

/// Daemon health and accounting; also the acknowledgement of a
/// `shutdown` request (final counters before the drain).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatusResponse {
    /// Protocol version.
    pub v: u32,
    /// Always `"status"`.
    pub kind: String,
    /// Milliseconds since the daemon finished warming its engine.
    pub uptime_ms: u64,
    /// Scans completed over the daemon's lifetime.
    pub jobs_served: u64,
    /// Scans currently executing on job workers.
    pub jobs_active: usize,
    /// Live scan-worker threads (the supervisor respawns crashed ones,
    /// so this returns to the configured pool size after a fault).
    pub scan_workers: usize,
    /// Scans queued but not yet started.
    pub queue_depth: usize,
    /// Admission-control bound: requests beyond this depth get `busy`.
    pub queue_capacity: usize,
    /// Submissions rejected with `busy` so far.
    pub rejected_busy: u64,
    /// Requests that expired (`timeout`) so far.
    pub timed_out: u64,
    /// Whether the daemon is draining toward shutdown.
    pub draining: bool,
    /// Warm framework-class cache counters, if the engine carries one.
    pub class_cache: Option<CacheStatus>,
    /// Warm framework-artifact cache counters, if present.
    pub artifact_cache: Option<CacheStatus>,
    /// Warm framework-subtree scan cache counters, if present.
    pub scan_cache: Option<CacheStatus>,
    /// Frozen-image startup provenance; `None` when the engine booted
    /// on the classic parse path.
    pub frozen: Option<FrozenStatus>,
    /// Reactor state (always present when answered by the daemon;
    /// `None` only from pre-reactor peers).
    pub reactor: Option<ReactorStatus>,
    /// Operator-assigned daemon name (`serve --name`), echoed so fleet
    /// tooling can attribute results to the daemon that produced them;
    /// `None` for unnamed daemons and pre-campaign peers.
    pub daemon: Option<String>,
    /// The detector families the warm engine runs, in `DetectorSet`
    /// spec syntax (e.g. `"api,apc,prm"`), so clients can check before
    /// submitting instead of learning from a `detector_mismatch`
    /// rejection; `None` from pre-DSD peers.
    pub detectors: Option<String>,
}

/// One phase's span accounting, for [`MetricsResponse`]. Mirrors
/// [`saint_obs::PhaseSnapshot`] with owned strings for the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseStatus {
    /// Stable snake_case phase name (`clvm_load`, `explore`, …).
    pub name: String,
    /// Spans recorded.
    pub count: u64,
    /// Total nanoseconds across those spans.
    pub total_ns: u64,
    /// Log2-µs latency buckets ([`saint_obs::HIST_BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

/// One monotone counter, for [`MetricsResponse`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterStatus {
    /// Stable snake_case counter name (`apps_scanned`, …).
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// Accumulated load-meter totals, for [`MetricsResponse`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeterStatus {
    /// Classes materialized across all scans.
    pub classes_loaded: u64,
    /// Bytes of class metadata loaded.
    pub class_bytes: u64,
    /// Method bodies analyzed.
    pub methods_analyzed: u64,
    /// Bytes of graph/artifact storage built.
    pub graph_bytes: u64,
    /// Lookups no provider could resolve.
    pub unresolved_lookups: u64,
}

/// Job-queue state, for [`MetricsResponse`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueStatus {
    /// Jobs waiting for a worker right now.
    pub depth: u64,
    /// Admission-control capacity.
    pub capacity: u64,
    /// Jobs currently being scanned.
    pub active: u64,
    /// Jobs completed since startup.
    pub served: u64,
    /// Jobs rejected because the queue was full.
    pub rejected_busy: u64,
    /// Jobs whose deadline expired while queued.
    pub timed_out: u64,
}

impl From<saint_obs::QueueSnapshot> for QueueStatus {
    fn from(q: saint_obs::QueueSnapshot) -> Self {
        QueueStatus {
            depth: q.depth,
            capacity: q.capacity,
            active: q.active,
            served: q.served,
            rejected_busy: q.rejected_busy,
            timed_out: q.timed_out,
        }
    }
}

/// The full observability view of the daemon: phase spans, monotone
/// counters, cache surfaces, meter totals, and queue state — the wire
/// form of [`saint_obs::MetricsSnapshot`], answering a `metrics`
/// request. Versioned like every other message: a wrong `v` gets
/// `unsupported_version`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsResponse {
    /// Protocol version.
    pub v: u32,
    /// Always `"metrics"`.
    pub kind: String,
    /// Per-phase span accounting, in [`saint_obs::Phase::ALL`] order.
    pub phases: Vec<PhaseStatus>,
    /// Monotone counters, in [`saint_obs::Counter::ALL`] order.
    pub counters: Vec<CounterStatus>,
    /// Warm framework-class cache counters, if present.
    pub class_cache: Option<CacheStatus>,
    /// Warm framework-artifact cache counters, if present.
    pub artifact_cache: Option<CacheStatus>,
    /// Warm framework-subtree scan cache counters, if present.
    pub scan_cache: Option<CacheStatus>,
    /// Accumulated load-meter totals.
    pub meter: MeterStatus,
    /// Queue state (always present when answered by the daemon).
    pub queue: Option<QueueStatus>,
    /// Frozen-image startup provenance; `None` when the engine booted
    /// on the classic parse path.
    pub frozen: Option<FrozenStatus>,
    /// Reactor state (always present when answered by the daemon).
    pub reactor: Option<ReactorStatus>,
}

impl MetricsResponse {
    /// Converts the unified snapshot into its wire form.
    #[must_use]
    pub fn new(snap: saint_obs::MetricsSnapshot) -> Self {
        MetricsResponse {
            v: PROTOCOL_VERSION,
            kind: "metrics".to_string(),
            phases: snap
                .registry
                .phases
                .iter()
                .map(|p| PhaseStatus {
                    name: p.name.to_string(),
                    count: p.count,
                    total_ns: p.total_ns,
                    buckets: p.buckets.clone(),
                })
                .collect(),
            counters: snap
                .registry
                .counters
                .iter()
                .map(|c| CounterStatus {
                    name: c.name.to_string(),
                    value: c.value,
                })
                .collect(),
            class_cache: snap.class_cache.map(Into::into),
            artifact_cache: snap.artifact_cache.map(Into::into),
            scan_cache: snap.deep_scan_cache.map(Into::into),
            meter: MeterStatus {
                classes_loaded: snap.meter.classes_loaded,
                class_bytes: snap.meter.class_bytes,
                methods_analyzed: snap.meter.methods_analyzed,
                graph_bytes: snap.meter.graph_bytes,
                unresolved_lookups: snap.meter.unresolved_lookups,
            },
            queue: snap.queue.map(Into::into),
            frozen: None,
            reactor: None,
        }
    }

    /// Attaches frozen-boot provenance to the response.
    #[must_use]
    pub fn with_frozen(mut self, frozen: Option<FrozenStatus>) -> Self {
        self.frozen = frozen;
        self
    }

    /// Attaches live reactor state to the response.
    #[must_use]
    pub fn with_reactor(mut self, reactor: Option<ReactorStatus>) -> Self {
        self.reactor = reactor;
        self
    }

    /// Looks up a phase by its stable name.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<&PhaseStatus> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Looks up a counter value by its stable name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }
}

/// A typed rejection; the daemon stays alive after sending one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Protocol version.
    pub v: u32,
    /// Always `"error"`.
    pub kind: String,
    /// Echo of the request's `id`, when the failing request carried
    /// one and it was parseable — pipelined clients need errors
    /// attributed to the right in-flight request.
    pub id: Option<u64>,
    /// One of the [`error_code`] constants.
    pub code: String,
    /// Human-readable detail.
    pub message: String,
    /// For [`error_code::BAD_PACKAGE`] container failures: byte offset
    /// of the offending input, when the decoder can point at one.
    pub offset: Option<u64>,
    /// For [`error_code::INTERNAL`]: the pipeline phase that panicked
    /// (`decode`, `explore`, `detect_invocation`, …).
    pub phase: Option<String>,
}

impl ErrorResponse {
    /// Builds an error response with the current protocol version.
    #[must_use]
    pub fn new(code: &str, message: impl Into<String>) -> Self {
        ErrorResponse {
            v: PROTOCOL_VERSION,
            kind: "error".to_string(),
            id: None,
            code: code.to_string(),
            message: message.into(),
            offset: None,
            phase: None,
        }
    }

    /// Attributes the error to a pipelined request id.
    #[must_use]
    pub fn with_id(mut self, id: Option<u64>) -> Self {
        self.id = id;
        self
    }

    /// Attaches the offending byte offset (decode failures).
    #[must_use]
    pub fn with_offset(mut self, offset: u64) -> Self {
        self.offset = Some(offset);
        self
    }

    /// Attaches the panicking pipeline phase (internal errors).
    #[must_use]
    pub fn with_phase(mut self, phase: impl Into<String>) -> Self {
        self.phase = Some(phase.into());
        self
    }
}

// ---------------------------------------------------------------------
// Zero-copy scan-request fast path
// ---------------------------------------------------------------------

/// A scan request extracted straight from the wire line, borrowing the
/// base64 payload instead of copying it into a value tree — the
/// reactor's hot path. Produced by [`parse_scan_fast`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastScanRequest<'a> {
    /// Protocol version claimed by the request.
    pub v: u64,
    /// Pipeline request id, if given.
    pub id: Option<u64>,
    /// Deadline in milliseconds, if given.
    pub deadline_ms: Option<u64>,
    /// Detector-set assertion, if given, borrowed from the line.
    pub detectors: Option<&'a str>,
    /// The base64 payload, borrowed from the request line.
    pub package_b64: &'a str,
}

/// Recognizes a well-formed `{"kind":"scan", …}` request line without
/// building a value tree: one strict left-to-right pass over the JSON
/// object, borrowing `package_b64` from the line (base64 never needs
/// string escapes, so the borrow is the common case by construction).
///
/// Returns `None` for anything else — other kinds, malformed input,
/// duplicate or escaped relevant fields, non-integer numbers — and the
/// caller falls back to the full value-tree parser, so the fast path
/// can only ever *match* the slow path's behavior, never diverge from
/// it. The equivalence is pinned by unit tests below.
#[must_use]
pub fn parse_scan_fast(line: &str) -> Option<FastScanRequest<'_>> {
    let mut cur = FastCursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    cur.skip_ws();
    if !cur.eat(b'{') {
        return None;
    }
    let mut v: Option<u64> = None;
    let mut id: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut detectors: Option<(usize, usize)> = None;
    let mut package: Option<(usize, usize)> = None;
    let mut kind_is_scan = false;
    let mut first = true;
    loop {
        cur.skip_ws();
        if cur.eat(b'}') {
            break;
        }
        if !first && !cur.eat(b',') {
            return None;
        }
        first = false;
        cur.skip_ws();
        let (key_start, key_end, key_escaped) = cur.raw_string()?;
        if key_escaped {
            // An escaped key could collide with a relevant field name
            // after unescaping; let the slow path sort it out.
            return None;
        }
        let key = &cur.bytes[key_start..key_end];
        cur.skip_ws();
        if !cur.eat(b':') {
            return None;
        }
        cur.skip_ws();
        match key {
            b"v" => {
                if v.replace(cur.integer()?).is_some() {
                    return None; // duplicate: defer to the slow path
                }
            }
            b"kind" => {
                let (s, e, escaped) = cur.raw_string()?;
                if escaped || kind_is_scan {
                    return None;
                }
                if &cur.bytes[s..e] != b"scan" {
                    return None; // not a scan request at all
                }
                kind_is_scan = true;
            }
            b"id" => {
                if cur.eat_null() {
                    continue;
                }
                if id.replace(cur.integer()?).is_some() {
                    return None;
                }
            }
            b"deadline_ms" => {
                if cur.eat_null() {
                    continue;
                }
                if deadline_ms.replace(cur.integer()?).is_some() {
                    return None;
                }
            }
            b"detectors" => {
                if cur.eat_null() {
                    continue;
                }
                let (s, e, escaped) = cur.raw_string()?;
                if escaped || detectors.replace((s, e)).is_some() {
                    return None;
                }
            }
            b"package_b64" => {
                let (s, e, escaped) = cur.raw_string()?;
                if escaped || package.replace((s, e)).is_some() {
                    return None;
                }
            }
            _ => {
                if !cur.skip_value() {
                    return None;
                }
            }
        }
    }
    cur.skip_ws();
    if cur.pos != cur.bytes.len() {
        return None; // trailing bytes: not one clean JSON object
    }
    let (s, e) = package?;
    if !kind_is_scan {
        return None;
    }
    Some(FastScanRequest {
        v: v?,
        id,
        deadline_ms,
        detectors: match detectors {
            Some((ds, de)) => Some(line.get(ds..de)?),
            None => None,
        },
        // The borrow starts and ends at `"` delimiters of a string
        // verified escape-free, so the slice sits on char boundaries.
        package_b64: line.get(s..e)?,
    })
}

/// Byte cursor for [`parse_scan_fast`]; every method is strict and
/// returns `None`/`false` on anything unexpected.
struct FastCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl FastCursor<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_null(&mut self) -> bool {
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            true
        } else {
            false
        }
    }

    /// Consumes a JSON string, returning the content byte range and
    /// whether it contained any escape sequence (the range then holds
    /// *raw* bytes, not the decoded string).
    fn raw_string(&mut self) -> Option<(usize, usize, bool)> {
        if !self.eat(b'"') {
            return None;
        }
        let start = self.pos;
        let mut escaped = false;
        loop {
            let b = *self.bytes.get(self.pos)?;
            match b {
                b'"' => {
                    let end = self.pos;
                    self.pos += 1;
                    return Some((start, end, escaped));
                }
                b'\\' => {
                    escaped = true;
                    // Skip the escape introducer and the escaped byte;
                    // \uXXXX needs no special casing because the four
                    // hex digits contain no quote or backslash.
                    self.pos += 2;
                    if self.pos > self.bytes.len() {
                        return None;
                    }
                }
                // Raw control characters are invalid JSON; defer.
                0x00..=0x1f => return None,
                _ => self.pos += 1,
            }
        }
    }

    /// Consumes a plain non-negative integer (no sign, fraction, or
    /// exponent — anything else defers to the slow path).
    fn integer(&mut self) -> Option<u64> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        // A trailing '.', 'e', or digit overflow falls back.
        if self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b == b'.' || b == b'e' || b == b'E')
        {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    /// Skips one JSON number (strict grammar, so the fast path never
    /// accepts a line the value-tree parser would reject).
    fn skip_number(&mut self) -> bool {
        let _ = self.eat(b'-');
        let int_start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return false;
        }
        if self.eat(b'.') {
            let frac_start = self.pos;
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return false;
            }
        }
        if self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b == b'e' || b == b'E')
        {
            self.pos += 1;
            if self
                .bytes
                .get(self.pos)
                .is_some_and(|&b| b == b'+' || b == b'-')
            {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return false;
            }
        }
        true
    }

    /// Skips one JSON value of any shape (for irrelevant fields),
    /// validating structure as it goes — brackets must match, numbers
    /// must follow the JSON grammar, literals must be exact.
    fn skip_value(&mut self) -> bool {
        self.skip_ws();
        match self.bytes.get(self.pos).copied() {
            Some(b'"') => self.raw_string().is_some(),
            Some(open @ (b'{' | b'[')) => {
                // Containers in unknown fields are rare; a small stack
                // keeps closers honest (`[}` must defer, not match).
                let mut stack = vec![open];
                self.pos += 1;
                loop {
                    self.skip_ws();
                    match self.bytes.get(self.pos).copied() {
                        Some(b @ (b'{' | b'[')) => {
                            stack.push(b);
                            self.pos += 1;
                        }
                        Some(close @ (b'}' | b']')) => {
                            let open = match stack.pop() {
                                Some(o) => o,
                                None => return false,
                            };
                            let matches =
                                (open == b'{' && close == b'}') || (open == b'[' && close == b']');
                            if !matches {
                                return false;
                            }
                            self.pos += 1;
                            if stack.is_empty() {
                                return true;
                            }
                        }
                        Some(b'"') => {
                            if self.raw_string().is_none() {
                                return false;
                            }
                        }
                        Some(b',') | Some(b':') => self.pos += 1,
                        Some(b) if b.is_ascii_digit() || b == b'-' => {
                            if !self.skip_number() {
                                return false;
                            }
                        }
                        Some(b't') | Some(b'f') | Some(b'n') => {
                            if !self.skip_literal() {
                                return false;
                            }
                        }
                        _ => return false,
                    }
                }
            }
            Some(b) if b.is_ascii_digit() || b == b'-' => self.skip_number(),
            Some(b't') | Some(b'f') | Some(b'n') => self.skip_literal(),
            _ => false,
        }
    }

    /// Consumes exactly `true`, `false`, or `null`.
    fn skip_literal(&mut self) -> bool {
        for lit in [&b"true"[..], &b"false"[..], &b"null"[..]] {
            if self.bytes[self.pos..].starts_with(lit) {
                self.pos += lit.len();
                return true;
            }
        }
        false
    }
}

// ---------------------------------------------------------------------
// Base64 (standard alphabet, padded) — std-only, no external crate.
// ---------------------------------------------------------------------

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as standard padded base64.
#[must_use]
pub fn base64_encode(input: &[u8]) -> String {
    let mut out = String::with_capacity(input.len().div_ceil(3) * 4);
    for chunk in input.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(B64_ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(B64_ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            B64_ALPHABET[(triple >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64_ALPHABET[triple as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes standard padded base64; `None` on any malformed input
/// (bad characters, bad length, data after padding).
#[must_use]
pub fn base64_decode(input: &str) -> Option<Vec<u8>> {
    let bytes = input.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some(u32::from(c - b'A')),
            b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = chunk.iter().filter(|&&c| c == b'=').count();
        // Padding is only legal as the final one or two characters.
        if pad > 2 || (pad > 0 && !last) || (pad >= 1 && chunk[3] != b'=') {
            return None;
        }
        if pad == 2 && chunk[2] != b'=' {
            return None;
        }
        let v0 = val(chunk[0])?;
        let v1 = val(chunk[1])?;
        let v2 = if pad == 2 { 0 } else { val(chunk[2])? };
        let v3 = if pad >= 1 { 0 } else { val(chunk[3])? };
        let triple = (v0 << 18) | (v1 << 12) | (v2 << 6) | v3;
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Some(out)
}

// ---------------------------------------------------------------------
// Bounded line framing
// ---------------------------------------------------------------------

/// Outcome of reading one protocol line.
#[derive(Debug)]
pub enum LineRead {
    /// A complete line (without the trailing `\n`).
    Line(String),
    /// The peer closed the connection before any byte of a new line.
    Eof,
    /// The line exceeded the limit; the connection can no longer be
    /// framed and must be closed after an error response.
    TooLong,
}

/// Reads one `\n`-terminated line, never buffering more than `max`
/// bytes. Invalid UTF-8 is surfaced as a line that will fail JSON
/// parsing (lossy conversion), which maps to `malformed` — framing is
/// still intact in that case.
///
/// # Errors
/// Propagates transport errors (including read timeouts, which the
/// server loop uses as a drain poll) other than clean EOF.
pub fn read_line_bounded<R: std::io::BufRead>(
    reader: &mut R,
    max: usize,
) -> std::io::Result<LineRead> {
    let mut buf = Vec::new();
    read_line_bounded_into(reader, max, &mut buf)
}

/// [`read_line_bounded`] with a caller-owned accumulator: bytes read
/// before a transport error (a read timeout above all) stay in `buf`,
/// so a server polling its drain flag between timeouts can resume the
/// partial line instead of silently dropping it. `buf` is emptied
/// whenever a [`LineRead`] is returned.
///
/// # Errors
/// Propagates transport errors other than clean EOF; `buf` keeps the
/// partial line.
pub fn read_line_bounded_into<R: std::io::BufRead>(
    reader: &mut R,
    max: usize,
    buf: &mut Vec<u8>,
) -> std::io::Result<LineRead> {
    loop {
        let available = match reader.fill_buf() {
            Ok(a) => a,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return if buf.is_empty() {
                Ok(LineRead::Eof)
            } else {
                // A final unterminated line still parses as a request.
                let line = String::from_utf8_lossy(buf).into_owned();
                buf.clear();
                Ok(LineRead::Line(line))
            };
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            if buf.len() + pos > max {
                reader.consume(pos + 1);
                buf.clear();
                return Ok(LineRead::TooLong);
            }
            buf.extend_from_slice(&available[..pos]);
            reader.consume(pos + 1);
            let line = String::from_utf8_lossy(buf).into_owned();
            buf.clear();
            return Ok(LineRead::Line(line));
        }
        let n = available.len();
        if buf.len() + n > max {
            reader.consume(n);
            buf.clear();
            return Ok(LineRead::TooLong);
        }
        buf.extend_from_slice(available);
        reader.consume(n);
    }
}

/// Serializes a message and frames it as one protocol line.
///
/// All protocol types serialize infallibly in practice; if one ever
/// does not, the client still gets a well-formed `internal` error line
/// instead of a panicked handler and a dropped connection.
#[must_use]
pub fn to_line<T: Serialize>(msg: &T) -> String {
    match serde_json::to_string(msg) {
        Ok(mut line) => {
            line.push('\n');
            line
        }
        Err(_) => format!(
            "{{\"v\":{PROTOCOL_VERSION},\"kind\":\"error\",\"id\":null,\"code\":\"{}\",\
             \"message\":\"response failed to serialize\",\"offset\":null,\
             \"phase\":null}}\n",
            error_code::INTERNAL
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_roundtrip_all_residues() {
        for len in 0..32usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + len) as u8).collect();
            let enc = base64_encode(&data);
            assert_eq!(enc.len() % 4, 0);
            assert_eq!(base64_decode(&enc).expect("decodes"), data);
        }
    }

    #[test]
    fn base64_known_vectors() {
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64_decode("Zm9vYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn base64_rejects_malformed() {
        for bad in ["Zg=", "Zg= =", "Z===", "Zg==Zg==x", "Z!==", "=Zg="] {
            assert!(base64_decode(bad).is_none(), "{bad:?} must not decode");
        }
        // Padding mid-stream is illegal even with valid length.
        assert!(base64_decode("Zg==Zm9v").is_none());
    }

    #[test]
    fn envelope_ignores_unknown_fields() {
        let env: Envelope =
            serde_json::from_str(r#"{"v":1,"kind":"scan","package_b64":"AAAA"}"#).unwrap();
        assert_eq!(env.v, 1);
        assert_eq!(env.kind.as_deref(), Some("scan"));
    }

    #[test]
    fn scan_request_roundtrip() {
        let req = ScanRequest::new(b"sapk-bytes", Some(1500));
        let line = to_line(&req);
        assert!(line.ends_with('\n'));
        let back: ScanRequest = serde_json::from_str(line.trim_end()).unwrap();
        assert_eq!(back.v, PROTOCOL_VERSION);
        assert_eq!(back.deadline_ms, Some(1500));
        assert_eq!(
            base64_decode(&back.package_b64).unwrap(),
            b"sapk-bytes".to_vec()
        );
    }

    #[test]
    fn error_response_shape() {
        let err = ErrorResponse::new(error_code::BUSY, "queue full");
        let line = to_line(&err);
        let back: ErrorResponse = serde_json::from_str(line.trim_end()).unwrap();
        assert_eq!(back.kind, "error");
        assert_eq!(back.code, "busy");
    }

    #[test]
    fn bounded_reader_frames_and_guards() {
        let data = b"short\nexactly10!\nway too long line\nafter\n";
        let mut r = std::io::BufReader::new(&data[..]);
        match read_line_bounded(&mut r, 10).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "short"),
            other => panic!("{other:?}"),
        }
        match read_line_bounded(&mut r, 10).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "exactly10!"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            read_line_bounded(&mut r, 10).unwrap(),
            LineRead::TooLong
        ));
        // Framing recovers at the next newline.
        match read_line_bounded(&mut r, 10).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "after"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            read_line_bounded(&mut r, 10).unwrap(),
            LineRead::Eof
        ));
    }

    #[test]
    fn bounded_reader_handles_unterminated_tail() {
        let mut r = std::io::BufReader::new(&b"tail-no-newline"[..]);
        match read_line_bounded(&mut r, 64).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "tail-no-newline"),
            other => panic!("{other:?}"),
        }
    }

    /// A `BufRead` replaying a fixed script of chunks and transport
    /// errors, for exercising the timeout path without sockets.
    struct Scripted {
        steps: std::collections::VecDeque<std::io::Result<&'static [u8]>>,
        cur: &'static [u8],
    }

    impl std::io::Read for Scripted {
        fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
            unreachable!("the bounded reader only uses fill_buf/consume")
        }
    }

    impl std::io::BufRead for Scripted {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            if self.cur.is_empty() {
                match self.steps.pop_front() {
                    Some(Ok(bytes)) => self.cur = bytes,
                    Some(Err(e)) => return Err(e),
                    None => {}
                }
            }
            Ok(self.cur)
        }

        fn consume(&mut self, amt: usize) {
            self.cur = &self.cur[amt..];
        }
    }

    /// The slow path the fast parser must agree with.
    fn slow_parse(line: &str) -> Option<ScanRequest> {
        use serde::Deserialize as _;
        let value = serde_json::from_str_value(line).ok()?;
        let env = Envelope::from_value(&value).ok()?;
        if env.kind.as_deref() != Some("scan") {
            return None;
        }
        ScanRequest::from_value(&value).ok()
    }

    #[test]
    fn fast_parser_matches_slow_parser_on_real_requests() {
        let cases = [
            to_line(&ScanRequest::new(b"sapk bytes here", None)),
            to_line(&ScanRequest::new(b"sapk bytes here", Some(1500))),
            to_line(&ScanRequest::new(b"", Some(0)).with_id(7)),
            to_line(&ScanRequest::new(&[0xff; 300], Some(u64::MAX)).with_id(u64::MAX)),
            to_line(&ScanRequest::new(b"sapk", None).with_detectors("api,apc,prm,dsd")),
            // Field order is not fixed by JSON; unknown fields are legal.
            r#"{"kind":"scan","package_b64":"AAAA","v":1}"#.to_string(),
            r#" { "v" : 1 , "kind" : "scan" , "id" : 9 , "package_b64" : "Zm8=" } "#.to_string(),
            r#"{"v":1,"kind":"scan","future_field":{"a":[1,2,{"b":"}"}]},"package_b64":"AAAA","flag":true}"#
                .to_string(),
            r#"{"v":2,"kind":"scan","package_b64":"AAAA"}"#.to_string(),
            r#"{"v":1,"kind":"scan","detectors":"all","package_b64":"AAAA"}"#.to_string(),
            r#"{"v":1,"kind":"scan","detectors":null,"package_b64":"AAAA"}"#.to_string(),
        ];
        for line in &cases {
            let slow = slow_parse(line.trim_end()).expect("slow path parses");
            let fast = parse_scan_fast(line.trim_end()).expect("fast path parses");
            assert_eq!(fast.v, u64::from(slow.v), "{line}");
            assert_eq!(fast.id, slow.id, "{line}");
            assert_eq!(fast.deadline_ms, slow.deadline_ms, "{line}");
            assert_eq!(fast.detectors, slow.detectors.as_deref(), "{line}");
            assert_eq!(fast.package_b64, slow.package_b64, "{line}");
        }
    }

    #[test]
    fn fast_parser_defers_anything_surprising() {
        let defer = [
            // Not scan requests at all.
            r#"{"v":1,"kind":"status"}"#,
            r#"{"v":1}"#,
            "not json",
            "",
            // Scan-shaped but needing the slow path's full machinery.
            r#"{"v":1,"kind":"scan","package_b64":"AA\u0041A"}"#, // escaped payload
            r#"{"v":1.0,"kind":"scan","package_b64":"AAAA"}"#,    // float version
            r#"{"v":1,"kind":"scan","package_b64":"AAAA","id":-3}"#, // negative id
            r#"{"v":1,"v":2,"kind":"scan","package_b64":"AAAA"}"#, // duplicate key
            r#"{"v":1,"kind":"scan","detectors":"a\u0070i","package_b64":"AAAA"}"#, // escaped detectors
            r#"{"v":1,"kind":"scan","detectors":"amd","detectors":"all","package_b64":"AAAA"}"#, // duplicate detectors
            r#"{"v":1,"kind":"scan","package_b64":"AAAA"}trailing"#, // trailing bytes
            r#"{"v":1,"kind":"scan","junk":[}],"package_b64":"AAAA"}"#, // mismatched brackets
            r#"{"v":1,"kind":"scan","junk":truthy,"package_b64":"AAAA"}"#, // bad literal
        ];
        for line in defer {
            assert!(parse_scan_fast(line).is_none(), "{line:?} must defer");
        }
    }

    #[test]
    fn fast_parser_borrows_the_payload() {
        let line = r#"{"v":1,"kind":"scan","package_b64":"Zm9vYmFy"}"#;
        let fast = parse_scan_fast(line).expect("parses");
        // Same allocation: the payload is a slice of the input line.
        let line_range = line.as_ptr() as usize..line.as_ptr() as usize + line.len();
        assert!(line_range.contains(&(fast.package_b64.as_ptr() as usize)));
        assert_eq!(base64_decode(fast.package_b64).expect("decodes"), b"foobar");
    }

    #[test]
    fn partial_line_survives_a_read_timeout() {
        // A request split across a read-timeout poll: "par" arrives,
        // the socket times out (the server's drain poll), the rest
        // follows. The accumulator hands the timeout up but keeps the
        // received half, so the resumed call completes the line.
        let mut r = Scripted {
            steps: [
                Ok(&b"par"[..]),
                Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "poll")),
                Ok(&b"tial\nnext\n"[..]),
            ]
            .into_iter()
            .collect(),
            cur: b"",
        };
        let mut buf = Vec::new();
        let err = read_line_bounded_into(&mut r, 64, &mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        assert_eq!(buf, b"par");
        match read_line_bounded_into(&mut r, 64, &mut buf).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "partial"),
            other => panic!("{other:?}"),
        }
        match read_line_bounded_into(&mut r, 64, &mut buf).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "next"),
            other => panic!("{other:?}"),
        }
    }
}
