//! Readiness polling — the one syscall boundary of the reactor.
//!
//! The workspace vendors no libc/mio crate, so the poller is declared
//! directly against the C runtime std already links, the same way
//! `saint-frozen` declares `mmap` (see `crates/frozen/src/mmap.rs`).
//! Everything outside this module sees only the safe [`Poller`]:
//! register a file descriptor with a `u64` token and an interest set,
//! wait, get back `(token, readable, writable, hangup)` triples.
//!
//! Two implementations behind one API:
//!
//! - Linux: `epoll` (level-triggered) — O(ready) wakeups, the shape
//!   the daemon's 1k-connection regime is benchmarked in;
//! - other Unix: `poll(2)` over the registered set — O(registered) per
//!   wait, functionally identical, so the crate still builds and the
//!   tests still pass off-Linux.
//!
//! Vectored response writes need no shim: `TcpStream::write_vectored`
//! is `writev(2)` on every Unix std supports.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// What a registered descriptor is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor becomes readable.
    pub read: bool,
    /// Wake when the descriptor becomes writable.
    pub write: bool,
}

/// One readiness event handed back by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Readable (or about to EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Peer hung up or the descriptor errored; the owner should read
    /// to EOF / surface the error and close.
    pub hangup: bool,
}

/// A level-triggered readiness poller over raw file descriptors.
pub struct Poller {
    imp: imp::Poller,
}

impl Poller {
    /// Creates an empty poller.
    ///
    /// # Errors
    /// Propagates the underlying syscall failure.
    pub fn new() -> io::Result<Self> {
        Ok(Poller {
            imp: imp::Poller::new()?,
        })
    }

    /// Starts watching `fd`, reporting events under `token`.
    ///
    /// # Errors
    /// Propagates the underlying syscall failure.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.imp.register(fd, token, interest)
    }

    /// Replaces the interest set of an already-registered `fd`.
    ///
    /// # Errors
    /// Propagates the underlying syscall failure.
    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.imp.reregister(fd, token, interest)
    }

    /// Stops watching `fd`. Must be called before the descriptor is
    /// closed.
    ///
    /// # Errors
    /// Propagates the underlying syscall failure.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.imp.deregister(fd)
    }

    /// Blocks until at least one registered descriptor is ready or
    /// `timeout` expires (`None` = wait forever), appending events to
    /// `out` (which is cleared first).
    ///
    /// # Errors
    /// Propagates the underlying syscall failure; `EINTR` is retried
    /// internally.
    pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<PollEvent>) -> io::Result<()> {
        out.clear();
        self.imp.wait(timeout, out)
    }
}

/// Milliseconds for the poll syscalls: `None` → block forever (-1),
/// saturating at `i32::MAX`, and rounding any sub-millisecond remainder
/// *up* so a 100µs deadline never spins at timeout 0.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis();
            let ms = if t.subsec_nanos() % 1_000_000 != 0 {
                ms + 1
            } else {
                ms
            };
            i32::try_from(ms).unwrap_or(i32::MAX)
        }
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{timeout_ms, Interest, PollEvent};
    use std::io;
    use std::os::unix::io::{FromRawFd, OwnedFd, RawFd};
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// Kernel ABI layout: packed on x86-64 (the kernel header says so),
    /// natural alignment elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    pub struct Poller {
        /// Owned so the epoll instance is closed on drop.
        epfd: OwnedFd,
        buf: Vec<EpollEvent>,
    }

    fn events_of(interest: Interest) -> u32 {
        let mut ev = EPOLLRDHUP;
        if interest.read {
            ev |= EPOLLIN;
        }
        if interest.write {
            ev |= EPOLLOUT;
        }
        ev
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            // SAFETY: plain syscall; a -1 return is checked before the
            // fd is wrapped.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                // SAFETY: `fd` is a fresh, valid descriptor we own.
                epfd: unsafe { OwnedFd::from_raw_fd(fd) },
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            use std::os::fd::AsRawFd;
            let mut ev = EpollEvent {
                events: events_of(interest),
                data: token,
            };
            // SAFETY: epfd and fd are valid open descriptors; `ev` is a
            // properly initialized kernel-ABI struct that outlives the
            // call.
            let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_DEL,
                fd,
                0,
                Interest {
                    read: false,
                    write: false,
                },
            )
        }

        pub fn wait(
            &mut self,
            timeout: Option<Duration>,
            out: &mut Vec<PollEvent>,
        ) -> io::Result<()> {
            use std::os::fd::AsRawFd;
            let ms = timeout_ms(timeout);
            let n = loop {
                // SAFETY: the buffer is a live, writable slice of
                // `maxevents` kernel-ABI structs for the whole call.
                let rc = unsafe {
                    epoll_wait(
                        self.epfd.as_raw_fd(),
                        self.buf.as_mut_ptr(),
                        self.buf.len() as i32,
                        ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in &self.buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let events = { ev.events };
                let token = { ev.data };
                out.push(PollEvent {
                    token,
                    readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::{timeout_ms, Interest, PollEvent};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u32, timeout: i32) -> i32;
    }

    /// `poll(2)` fallback: the registered set lives in user space and
    /// is handed to the kernel on every wait. O(registered) per call —
    /// fine for correctness and tests, not the benchmarked path.
    pub struct Poller {
        entries: Vec<(RawFd, u64, Interest)>,
        fds: Vec<PollFd>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Ok(Poller {
                entries: Vec::new(),
                fds: Vec::new(),
            })
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.entries.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.entries.push((fd, token, interest));
            Ok(())
        }

        pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            for entry in &mut self.entries {
                if entry.0 == fd {
                    entry.1 = token;
                    entry.2 = interest;
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let before = self.entries.len();
            self.entries.retain(|(f, _, _)| *f != fd);
            if self.entries.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub fn wait(
            &mut self,
            timeout: Option<Duration>,
            out: &mut Vec<PollEvent>,
        ) -> io::Result<()> {
            self.fds.clear();
            for (fd, _, interest) in &self.entries {
                let mut events = 0_i16;
                if interest.read {
                    events |= POLLIN;
                }
                if interest.write {
                    events |= POLLOUT;
                }
                self.fds.push(PollFd {
                    fd: *fd,
                    events,
                    revents: 0,
                });
            }
            let ms = timeout_ms(timeout);
            loop {
                // SAFETY: `fds` is a live, writable slice of
                // kernel-ABI pollfd structs for the whole call.
                let rc = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as u32, ms) };
                if rc >= 0 {
                    break;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
            for (slot, pfd) in self.fds.iter().enumerate() {
                if pfd.revents == 0 {
                    continue;
                }
                let token = self.entries[slot].1;
                out.push(PollEvent {
                    token,
                    readable: pfd.revents & POLLIN != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    const READ: Interest = Interest {
        read: true,
        write: false,
    };

    #[test]
    fn wakes_on_readable_and_respects_tokens() {
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        b.set_nonblocking(true).expect("nonblocking");
        let mut poller = Poller::new().expect("poller");
        poller.register(b.as_raw_fd(), 42, READ).expect("register");

        let mut out = Vec::new();
        poller
            .wait(Some(Duration::from_millis(10)), &mut out)
            .expect("idle wait");
        assert!(out.is_empty(), "nothing readable yet: {out:?}");

        a.write_all(b"x").expect("write");
        poller
            .wait(Some(Duration::from_secs(5)), &mut out)
            .expect("ready wait");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, 42);
        assert!(out[0].readable);

        let mut byte = [0_u8; 1];
        b.try_clone()
            .expect("clone")
            .read_exact(&mut byte)
            .expect("drain");
        poller
            .wait(Some(Duration::from_millis(10)), &mut out)
            .expect("drained wait");
        assert!(out.is_empty(), "level-triggered: drained fd is quiet");
    }

    #[test]
    fn write_interest_and_reregister() {
        let (a, _b) = UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).expect("nonblocking");
        let mut poller = Poller::new().expect("poller");
        poller.register(a.as_raw_fd(), 7, READ).expect("register");
        let mut out = Vec::new();
        poller
            .wait(Some(Duration::from_millis(10)), &mut out)
            .expect("wait");
        assert!(out.is_empty(), "no read interest satisfied");
        poller
            .reregister(
                a.as_raw_fd(),
                7,
                Interest {
                    read: false,
                    write: true,
                },
            )
            .expect("reregister");
        poller
            .wait(Some(Duration::from_secs(5)), &mut out)
            .expect("wait");
        assert_eq!(out.len(), 1);
        assert!(out[0].writable, "fresh socket buffer is writable");
        poller.deregister(a.as_raw_fd()).expect("deregister");
        poller
            .wait(Some(Duration::from_millis(10)), &mut out)
            .expect("wait");
        assert!(out.is_empty(), "deregistered fd reports nothing");
    }

    #[test]
    fn hangup_is_reported() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        let mut poller = Poller::new().expect("poller");
        poller.register(b.as_raw_fd(), 9, READ).expect("register");
        drop(a);
        let mut out = Vec::new();
        poller
            .wait(Some(Duration::from_secs(5)), &mut out)
            .expect("wait");
        assert_eq!(out.len(), 1);
        assert!(
            out[0].hangup || out[0].readable,
            "peer close surfaces as hangup or EOF-readable: {:?}",
            out[0]
        );
    }

    #[test]
    fn timeout_rounds_subms_up() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(250))), 250);
        assert_eq!(timeout_ms(Some(Duration::from_secs(1 << 40))), i32::MAX);
    }
}
