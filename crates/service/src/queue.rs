//! Bounded job queue with admission control and graceful drain — the
//! state machine between connection handlers and scan workers.
//!
//! Admission is explicit, not backpressure-by-blocking: a submission
//! against a full queue is rejected immediately with [`Admission::Busy`]
//! (the `429` of the protocol), so a burst degrades into fast typed
//! rejections instead of unbounded memory growth or head-of-line
//! blocking on the TCP accept loop. Deadlines are owned by the waiting
//! connection handler: it gives up at its deadline and flips the job's
//! `cancelled` flag, so a worker that dequeues an expired job skips the
//! scan entirely.
//!
//! Drain semantics: [`JobQueue::drain`] closes admission (new scans get
//! [`Admission::Draining`]) but queued jobs keep their promise — workers
//! finish everything already admitted, then [`JobQueue::next`] returns
//! `None` and the workers exit.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::time::Instant;

use saint_ir::Apk;
use saint_sync::{Condvar, Mutex};
use saintdroid::{Report, ScanError};

/// One admitted scan: the decoded package plus the channel the waiting
/// connection handler blocks on.
pub struct Job {
    /// The decoded package to scan.
    pub apk: Apk,
    /// Where the outcome goes — the finished report, or the typed
    /// error a panicking scan was demoted to. The send fails silently
    /// if the handler already gave up (deadline) — the outcome is then
    /// dropped.
    pub respond: SyncSender<Result<Report, ScanError>>,
    /// Set by the handler when its deadline expires; a worker that
    /// sees the flag drops the job without scanning.
    pub cancelled: Arc<AtomicBool>,
    /// When the job entered the queue; [`JobQueue::next`] records the
    /// elapsed wait as a `queue_wait` phase span when a registry is
    /// attached.
    pub enqueued_at: Instant,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The queue is at capacity.
    Busy,
    /// The daemon is draining toward shutdown.
    Draining,
}

/// Counters surfaced through the `status` response.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueStats {
    /// Jobs currently queued (admitted, not yet started).
    pub depth: usize,
    /// Admission bound.
    pub capacity: usize,
    /// Jobs currently executing on workers.
    pub active: usize,
    /// Scans whose report reached the client, over the queue's
    /// lifetime.
    pub served: u64,
    /// Submissions rejected with [`Admission::Busy`].
    pub rejected_busy: u64,
    /// Scans whose handler answered `timeout` at its deadline instead
    /// of a report.
    pub timed_out: u64,
    /// Whether admission is closed.
    pub draining: bool,
}

struct State {
    queue: VecDeque<Job>,
    draining: bool,
}

/// The shared queue; see the module docs for the state machine.
pub struct JobQueue {
    state: Mutex<State>,
    wake: Condvar,
    capacity: usize,
    active: AtomicUsize,
    served: AtomicU64,
    rejected_busy: AtomicU64,
    timed_out: AtomicU64,
    metrics: Option<Arc<saint_obs::MetricsRegistry>>,
}

impl JobQueue {
    /// A queue admitting at most `capacity` waiting jobs (executing
    /// jobs do not count against the bound).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                draining: false,
            }),
            wake: Condvar::new(),
            capacity,
            active: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            metrics: None,
        }
    }

    /// Attaches a metrics registry: every dequeue records the job's
    /// admission-to-pickup latency as a `queue_wait` phase span.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<saint_obs::MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Admits a job or rejects it in O(1) without blocking.
    ///
    /// # Errors
    /// [`Admission::Draining`] once [`drain`](Self::drain) was called,
    /// [`Admission::Busy`] when the queue is at capacity.
    pub fn submit(&self, job: Job) -> Result<(), Admission> {
        let mut st = self.state.lock();
        if st.draining {
            return Err(Admission::Draining);
        }
        if st.queue.len() >= self.capacity {
            self.rejected_busy.fetch_add(1, Ordering::Relaxed);
            return Err(Admission::Busy);
        }
        st.queue.push_back(job);
        drop(st);
        self.wake.notify_one();
        Ok(())
    }

    /// Blocks until a job is available (skipping cancelled ones — their
    /// handler already accounted for them) or the queue is drained dry;
    /// `None` tells the worker to exit.
    pub fn next(&self) -> Option<Job> {
        let mut st = self.state.lock();
        loop {
            while let Some(job) = st.queue.pop_front() {
                if job.cancelled.load(Ordering::Acquire) {
                    continue;
                }
                self.active.fetch_add(1, Ordering::Relaxed);
                if let Some(metrics) = &self.metrics {
                    metrics.record(saint_obs::Phase::QueueWait, job.enqueued_at.elapsed());
                }
                return Some(job);
            }
            if st.draining {
                return None;
            }
            st = self.wake.wait(st);
        }
    }

    /// Marks one dequeued job finished (worker-side bookkeeping only).
    pub fn finish(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records one scan whose report reached its client. Outcome
    /// counters are owned by the connection handler — the only party
    /// that knows what the client was actually told — and bumped
    /// *before* the response line is written, so a client that reads
    /// its report and immediately asks for `status` sees itself
    /// counted.
    pub fn mark_served(&self) {
        self.served.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one scan whose handler gave up at its deadline (the
    /// client got `timeout`, any late report is discarded).
    pub fn mark_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Closes admission and wakes every worker; already-admitted jobs
    /// still run to completion.
    pub fn drain(&self) {
        let mut st = self.state.lock();
        st.draining = true;
        drop(st);
        self.wake.notify_all();
    }

    /// Whether admission is closed.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.state.lock().draining
    }

    /// A snapshot of the queue counters.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        let st = self.state.lock();
        QueueStats {
            depth: st.queue.len(),
            capacity: self.capacity,
            active: self.active.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            draining: st.draining,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_ir::{ApiLevel, ApkBuilder};
    use std::sync::mpsc::sync_channel;

    fn job(
        cancelled: &Arc<AtomicBool>,
    ) -> (Job, std::sync::mpsc::Receiver<Result<Report, ScanError>>) {
        let (tx, rx) = sync_channel(1);
        let apk = ApkBuilder::new("q.app", ApiLevel::new(21), ApiLevel::new(28)).build();
        (
            Job {
                apk,
                respond: tx,
                cancelled: Arc::clone(cancelled),
                enqueued_at: Instant::now(),
            },
            rx,
        )
    }

    #[test]
    fn capacity_rejects_with_busy() {
        let q = JobQueue::new(1);
        let live = Arc::new(AtomicBool::new(false));
        let (j1, _rx1) = job(&live);
        let (j2, _rx2) = job(&live);
        assert!(q.submit(j1).is_ok());
        assert_eq!(q.submit(j2).unwrap_err(), Admission::Busy);
        let stats = q.stats();
        assert_eq!(stats.depth, 1);
        assert_eq!(stats.rejected_busy, 1);
    }

    #[test]
    fn zero_capacity_always_busy() {
        let q = JobQueue::new(0);
        let live = Arc::new(AtomicBool::new(false));
        let (j, _rx) = job(&live);
        assert_eq!(q.submit(j).unwrap_err(), Admission::Busy);
    }

    #[test]
    fn drain_closes_admission_but_serves_queued() {
        let q = JobQueue::new(4);
        let live = Arc::new(AtomicBool::new(false));
        let (j1, _rx1) = job(&live);
        assert!(q.submit(j1).is_ok());
        q.drain();
        let (j2, _rx2) = job(&live);
        assert_eq!(q.submit(j2).unwrap_err(), Admission::Draining);
        // The queued job is still handed out, then workers are told to
        // exit.
        assert!(q.next().is_some());
        q.mark_served();
        q.finish();
        assert!(q.next().is_none());
        let stats = q.stats();
        assert!(stats.draining);
        assert_eq!(stats.served, 1);
        assert_eq!(stats.active, 0);
    }

    #[test]
    fn cancelled_jobs_are_skipped() {
        let q = JobQueue::new(4);
        let cancelled = Arc::new(AtomicBool::new(true));
        let live = Arc::new(AtomicBool::new(false));
        let (dead, _rx1) = job(&cancelled);
        let (alive, _rx2) = job(&live);
        q.submit(dead).unwrap();
        q.mark_timed_out(); // what the dead job's handler does at its deadline
        q.submit(alive).unwrap();
        let got = q.next().expect("live job");
        assert!(!got.cancelled.load(Ordering::Acquire));
        // The skip itself adds nothing: outcome counters are
        // handler-owned, and the dead job was already counted once.
        assert_eq!(q.stats().timed_out, 1);
    }

    #[test]
    fn next_blocks_until_submit() {
        let q = Arc::new(JobQueue::new(2));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.next().is_some());
        std::thread::sleep(std::time::Duration::from_millis(30));
        let live = Arc::new(AtomicBool::new(false));
        let (j, _rx) = job(&live);
        q.submit(j).unwrap();
        assert!(waiter.join().unwrap());
    }
}
