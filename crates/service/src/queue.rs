//! Bounded job queue with admission control and graceful drain — the
//! state machine between the reactor and the scan workers.
//!
//! Admission is explicit, not backpressure-by-blocking: a submission
//! against a full queue is returned to the caller with
//! [`Admission::Busy`] in O(1), and the *reactor* decides what that
//! means — park the request and suspend the connection's reads (the
//! normal backpressure path), or answer `busy` (only the degenerate
//! zero-capacity configuration). Deadlines are owned by the reactor:
//! it settles the request at expiry, so a worker that dequeues an
//! expired job skips the scan entirely.
//!
//! Drain semantics: [`JobQueue::drain`] closes admission (new scans get
//! [`Admission::Draining`]) but queued jobs keep their promise — workers
//! finish everything already admitted, then [`JobQueue::next`] returns
//! `None` and the workers exit.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use saint_sync::{Condvar, Mutex};

use crate::reactor::Responder;

/// One admitted scan: the still-encoded package plus the settle-once
/// responder that routes the outcome back through the reactor.
pub struct Job {
    /// The base64 package exactly as received; workers do the base64
    /// and SAPK decode so the reactor thread never touches payloads.
    pub(crate) package_b64: String,
    /// The response end: exactly one of worker delivery, reactor
    /// deadline, or the drop guard answers the request.
    pub(crate) responder: Responder,
    /// When the job entered the queue; [`JobQueue::next`] records the
    /// elapsed wait as a `queue_wait` phase span when a registry is
    /// attached.
    pub(crate) enqueued_at: Instant,
    /// Whether this is a `delta` submission: the worker routes it
    /// through the incremental artifact store when one is configured.
    pub(crate) delta: bool,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The queue is at capacity.
    Busy,
    /// The daemon is draining toward shutdown.
    Draining,
}

/// Counters surfaced through the `status` response.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueStats {
    /// Jobs currently queued (admitted, not yet started).
    pub depth: usize,
    /// Admission bound.
    pub capacity: usize,
    /// Jobs currently executing on workers.
    pub active: usize,
    /// Scans whose report reached the client, over the queue's
    /// lifetime.
    pub served: u64,
    /// Submissions answered `busy` (zero-capacity queues only; sized
    /// queues park instead of rejecting).
    pub rejected_busy: u64,
    /// Scans answered `timeout` at their deadline instead of a report.
    pub timed_out: u64,
    /// Whether admission is closed.
    pub draining: bool,
}

struct State {
    queue: VecDeque<Job>,
    draining: bool,
}

/// The shared queue; see the module docs for the state machine.
pub struct JobQueue {
    state: Mutex<State>,
    wake: Condvar,
    capacity: usize,
    active: AtomicUsize,
    served: AtomicU64,
    rejected_busy: AtomicU64,
    timed_out: AtomicU64,
    metrics: Option<Arc<saint_obs::MetricsRegistry>>,
}

impl JobQueue {
    /// A queue admitting at most `capacity` waiting jobs (executing
    /// jobs do not count against the bound).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                draining: false,
            }),
            wake: Condvar::new(),
            capacity,
            active: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            metrics: None,
        }
    }

    /// Attaches a metrics registry: every dequeue records the job's
    /// admission-to-pickup latency as a `queue_wait` phase span.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<saint_obs::MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The admission bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits a job, or hands it back with the refusal reason in O(1)
    /// without blocking — the caller owns the retry/park/reject
    /// decision, and getting the job back keeps its responder from
    /// misfiring a crashed-worker answer.
    ///
    /// # Errors
    /// [`Admission::Draining`] once [`drain`](Self::drain) was called,
    /// [`Admission::Busy`] when the queue is at capacity.
    pub fn submit(&self, job: Job) -> Result<(), (Job, Admission)> {
        let mut st = self.state.lock();
        if st.draining {
            return Err((job, Admission::Draining));
        }
        if st.queue.len() >= self.capacity {
            return Err((job, Admission::Busy));
        }
        st.queue.push_back(job);
        drop(st);
        self.wake.notify_one();
        Ok(())
    }

    /// Blocks until a job is available (skipping settled ones — the
    /// reactor already answered them at their deadline) or the queue is
    /// drained dry; `None` tells the worker to exit.
    pub fn next(&self) -> Option<Job> {
        let mut st = self.state.lock();
        loop {
            while let Some(job) = st.queue.pop_front() {
                if job.responder.is_settled() {
                    continue;
                }
                self.active.fetch_add(1, Ordering::Relaxed);
                if let Some(metrics) = &self.metrics {
                    metrics.record(saint_obs::Phase::QueueWait, job.enqueued_at.elapsed());
                }
                return Some(job);
            }
            if st.draining {
                return None;
            }
            st = self.wake.wait(st);
        }
    }

    /// Marks one dequeued job finished (worker-side bookkeeping only).
    pub fn finish(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records one scan whose report reached its client. Outcome
    /// counters are owned by whichever party won the request's settle —
    /// the only party that knows what the client was actually told —
    /// and bumped *before* the response frame is queued, so a client
    /// that reads its report and immediately asks for `status` sees
    /// itself counted.
    pub fn mark_served(&self) {
        self.served.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one scan answered `timeout` at its deadline (any late
    /// report is discarded).
    pub fn mark_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one submission answered `busy` (the reactor owns the
    /// answer, so it owns the count too).
    pub fn note_rejected_busy(&self) {
        self.rejected_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Closes admission and wakes every worker; already-admitted jobs
    /// still run to completion.
    pub fn drain(&self) {
        let mut st = self.state.lock();
        st.draining = true;
        drop(st);
        self.wake.notify_all();
    }

    /// Whether admission is closed.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.state.lock().draining
    }

    /// A snapshot of the queue counters.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        let st = self.state.lock();
        QueueStats {
            depth: st.queue.len(),
            capacity: self.capacity,
            active: self.active.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            draining: st.draining,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reactor::CompletionSink;
    use std::os::unix::net::UnixStream;
    use std::sync::atomic::AtomicBool;

    fn sink() -> Arc<CompletionSink> {
        let (tx, rx) = UnixStream::pair().expect("socketpair");
        rx.set_nonblocking(true).expect("nonblocking");
        // Leak the read end so wake writes never hit a closed pipe.
        std::mem::forget(rx);
        Arc::new(CompletionSink::new(tx))
    }

    fn job(sink: &Arc<CompletionSink>, settled: &Arc<AtomicBool>) -> Job {
        Job {
            package_b64: "AAAA".to_string(),
            responder: Responder::new(Arc::clone(sink), 0, 1, None, Arc::clone(settled)),
            enqueued_at: Instant::now(),
            delta: false,
        }
    }

    #[test]
    fn capacity_hands_the_job_back_with_busy() {
        let q = JobQueue::new(1);
        let sink = sink();
        let live = Arc::new(AtomicBool::new(false));
        assert!(q.submit(job(&sink, &live)).is_ok());
        let Err((returned, admission)) = q.submit(job(&sink, &live)) else {
            panic!("second submit must be rejected");
        };
        assert_eq!(admission, Admission::Busy);
        returned.responder.disarm();
        let stats = q.stats();
        assert_eq!(stats.depth, 1);
        // Busy *answers* are counted by the rejecting party, not by
        // submissions the reactor parks instead.
        assert_eq!(stats.rejected_busy, 0);
        q.note_rejected_busy();
        assert_eq!(q.stats().rejected_busy, 1);
    }

    #[test]
    fn zero_capacity_always_busy() {
        let q = JobQueue::new(0);
        let sink = sink();
        let live = Arc::new(AtomicBool::new(false));
        let Err((returned, admission)) = q.submit(job(&sink, &live)) else {
            panic!("zero-capacity queue must reject");
        };
        assert_eq!(admission, Admission::Busy);
        returned.responder.disarm();
    }

    #[test]
    fn drain_closes_admission_but_serves_queued() {
        let q = JobQueue::new(4);
        let sink = sink();
        let live = Arc::new(AtomicBool::new(false));
        assert!(q.submit(job(&sink, &live)).is_ok());
        q.drain();
        let Err((returned, admission)) = q.submit(job(&sink, &live)) else {
            panic!("draining queue must reject");
        };
        assert_eq!(admission, Admission::Draining);
        returned.responder.disarm();
        // The queued job is still handed out, then workers are told to
        // exit.
        let served = q.next().expect("queued job survives drain");
        served.responder.disarm();
        q.mark_served();
        q.finish();
        assert!(q.next().is_none());
        let stats = q.stats();
        assert!(stats.draining);
        assert_eq!(stats.served, 1);
        assert_eq!(stats.active, 0);
    }

    #[test]
    fn settled_jobs_are_skipped() {
        let q = JobQueue::new(4);
        let sink = sink();
        let expired = Arc::new(AtomicBool::new(true)); // deadline already answered
        let live = Arc::new(AtomicBool::new(false));
        q.submit(job(&sink, &expired))
            .map_err(|_| ())
            .expect("fits");
        q.mark_timed_out(); // what the reactor does when the deadline fires
        q.submit(job(&sink, &live)).map_err(|_| ()).expect("fits");
        let got = q.next().expect("live job");
        assert!(!got.responder.is_settled());
        got.responder.disarm();
        // The skip itself adds nothing: outcome counters are owned by
        // the settling party, and the dead job was already counted once.
        assert_eq!(q.stats().timed_out, 1);
    }

    #[test]
    fn next_blocks_until_submit() {
        let q = Arc::new(JobQueue::new(2));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || match q2.next() {
            Some(job) => {
                job.responder.disarm();
                true
            }
            None => false,
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        let sink = sink();
        let live = Arc::new(AtomicBool::new(false));
        q.submit(job(&sink, &live)).map_err(|_| ()).expect("fits");
        assert!(waiter.join().expect("waiter"));
    }
}
