//! # saint-service — the persistent scan-service daemon
//!
//! Every `saintdroid scan` invocation is a cold process: the framework
//! model and all three shared caches ([`ShardedClassCache`],
//! [`ArtifactCache`], `DeepScanCache`) are rebuilt and thrown away.
//! This crate keeps them alive: a long-running daemon owns one warm
//! [`ScanEngine`] and serves scans over a newline-delimited JSON
//! protocol on TCP — the deployment shape of an always-on app-vetting
//! service (Wu et al., *Scalable Online Vetting of Android Apps*),
//! where SAINTDroid's amortized framework artifacts actually pay off
//! across requests.
//!
//! Three pieces:
//!
//! - [`protocol`] — the wire types ([`ScanRequest`], [`ScanResponse`],
//!   [`StatusResponse`], [`ErrorResponse`]), versioned, with line/size
//!   guards and a malformed-input contract that never kills the daemon;
//! - [`queue`] — the bounded [`JobQueue`] with explicit admission
//!   control, reactor-owned deadlines (`timeout`), and graceful drain;
//! - `reactor` (internal) — the nonblocking epoll event loop owning
//!   every client socket: per-connection state machines, pipelined
//!   request ids, backpressure by read suspension, `writev` framing;
//! - [`server`] / [`client`] — the event-loop daemon, the blocking
//!   lockstep [`Client`], and the [`PipelinedClient`] that keeps a
//!   window of scans in flight on one connection (`saintdroid serve` /
//!   `submit [--pipeline]` / `status` / `shutdown` wrap these).
//!
//! Reports fetched through the service are **byte-identical**
//! (mismatches and meter) to a local `saintdroid scan` of the same
//! package — asserted end-to-end by `tests/service_e2e.rs` against a
//! daemon on an ephemeral port.
//!
//! ```no_run
//! use std::sync::Arc;
//! use saint_adf::AndroidFramework;
//! use saintdroid::ScanEngine;
//! use saint_service::{Client, ServerConfig};
//!
//! // Daemon side: one warm engine for the process lifetime.
//! let engine = ScanEngine::new(Arc::new(AndroidFramework::curated()));
//! engine.prewarm();
//! let cfg = ServerConfig { listen: "127.0.0.1:0".into(), ..ServerConfig::default() };
//! let handle = saint_service::start(engine, &cfg)?;
//!
//! // Client side: submit SAPK bytes, get the report back.
//! let mut client = Client::connect(&handle.addr().to_string())?;
//! let sapk = std::fs::read("app.sapk")?;
//! let response = client.scan_sapk(&sapk, Some(30_000))?;
//! println!("{}", response.report);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`ShardedClassCache`]: saint_analysis::ShardedClassCache
//! [`ArtifactCache`]: saint_analysis::ArtifactCache
//! [`ScanEngine`]: saintdroid::ScanEngine
//! [`ScanRequest`]: protocol::ScanRequest
//! [`ScanResponse`]: protocol::ScanResponse
//! [`StatusResponse`]: protocol::StatusResponse
//! [`ErrorResponse`]: protocol::ErrorResponse
//! [`JobQueue`]: queue::JobQueue

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod protocol;
pub mod queue;
mod reactor;
pub mod server;
mod sys;

pub use client::{scan_with_retries, Client, ClientError, PipelinedClient, RetryPolicy};
pub use protocol::{
    ErrorResponse, FrozenStatus, MetricsResponse, ReactorStatus, ScanRequest, ScanResponse,
    StatusResponse, PROTOCOL_VERSION,
};
pub use queue::{Admission, JobQueue, QueueStats};
pub use server::{start, ServerConfig, ServerHandle, DEFAULT_WINDOW};
