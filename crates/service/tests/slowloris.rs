//! Robustness against pathological clients: half-written frames held
//! open, readers that stall after pipelining a burst, and connections
//! dropped with scans still in flight. The contract in every case is
//! the same — the daemon never wedges, well-behaved clients on other
//! connections are never blocked, and whatever answer does come back
//! is a typed protocol message.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use saint_adf::AndroidFramework;
use saint_corpus::{RealWorldConfig, RealWorldCorpus};
use saint_ir::{codec, Apk};
use saint_service::protocol::{self, ScanRequest};
use saint_service::{Client, ServerConfig};
use saintdroid::ScanEngine;

fn corpus_and_framework() -> (Vec<Apk>, Arc<AndroidFramework>) {
    let mut cfg = RealWorldConfig::small();
    cfg.apps = 4;
    let fw = Arc::new(AndroidFramework::with_scale(&cfg.synth));
    let corpus = RealWorldCorpus::new(cfg);
    let apks = (0..corpus.len()).map(|i| corpus.get(i).apk).collect();
    (apks, fw)
}

fn start_server(fw: &Arc<AndroidFramework>, mut cfg: ServerConfig) -> saint_service::ServerHandle {
    cfg.listen = "127.0.0.1:0".to_string();
    let engine = ScanEngine::new(Arc::clone(fw));
    engine.prewarm();
    saint_service::start(engine, &cfg).expect("bind ephemeral port")
}

/// One id-tagged scan request as raw wire bytes (newline included).
fn scan_line(apk: &Apk, id: u64) -> Vec<u8> {
    let sapk = codec::encode_apk(apk);
    protocol::to_line(&ScanRequest::new(&sapk, Some(120_000)).with_id(id)).into_bytes()
}

/// Polls `status` until `pred` holds or the deadline passes; panics
/// with the final status on timeout. The reactor reaps dead
/// connections on its next tick, so assertions about gauges need a
/// grace window, not an instant.
fn wait_for_status(
    addr: &str,
    what: &str,
    pred: impl Fn(&saint_service::StatusResponse) -> bool,
) -> saint_service::StatusResponse {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut client = Client::connect(addr).expect("connect for status");
        let status = client.status().expect("status");
        if pred(&status) {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never reached state: {what}; last status: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn half_written_frame_blocks_nobody_and_completes_later() {
    let (apks, fw) = corpus_and_framework();
    let handle = start_server(&fw, ServerConfig::default());
    let addr = handle.addr().to_string();

    // The slowloris: half a request, then silence with the socket held
    // open. A blocking daemon thread would now be stuck in read.
    let frame = scan_line(&apks[0], 7);
    let (head, tail) = frame.split_at(frame.len() / 2);
    let mut slow = TcpStream::connect(&addr).expect("connect slowloris");
    slow.write_all(head).expect("write half frame");
    slow.flush().expect("flush");

    // A well-behaved client on another connection is served while the
    // half-frame sits in the reactor's buffer.
    let mut good = Client::connect(&addr).expect("connect good client");
    let sapk = codec::encode_apk(&apks[1]);
    let response = good.scan_sapk(&sapk, Some(120_000)).expect("scan");
    assert_eq!(response.report.package, apks[1].manifest.package);

    // The stalled frame finally completes — and still gets its answer,
    // id echoed.
    slow.write_all(tail).expect("write rest of frame");
    slow.flush().expect("flush");
    let mut reader = BufReader::new(slow);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(line.contains("\"kind\":\"scan\""), "{line}");
    assert!(line.contains("\"id\":7"), "{line}");

    let mut admin = Client::connect(&addr).expect("connect admin");
    admin.shutdown().expect("shutdown ack");
    handle.wait();
}

#[test]
fn stalled_reader_gets_all_answers_once_it_wakes() {
    let (apks, fw) = corpus_and_framework();
    let handle = start_server(
        &fw,
        ServerConfig {
            jobs: 1,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr().to_string();

    // Pipeline a burst, then go to sleep without reading a byte: the
    // daemon's answers queue against the socket, never against a
    // thread.
    let mut stalled = TcpStream::connect(&addr).expect("connect stalled reader");
    for id in 0..8_u64 {
        stalled
            .write_all(&scan_line(&apks[id as usize % apks.len()], id))
            .expect("write pipelined request");
    }
    stalled.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(300));

    // Everyone else is unaffected while those responses wait.
    let mut good = Client::connect(&addr).expect("connect good client");
    let sapk = codec::encode_apk(&apks[0]);
    good.scan_sapk(&sapk, Some(120_000)).expect("scan");

    // The reader wakes up: all eight answers are there, each a typed
    // scan response with its id.
    let mut reader = BufReader::new(stalled);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..8 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        assert!(line.contains("\"kind\":\"scan\""), "{line}");
        let value = serde_json::from_str_value(&line).expect("response parses");
        let id = value
            .get("id")
            .and_then(serde::Value::as_u64)
            .expect("response carries its id");
        assert!(seen.insert(id), "duplicate answer for id {id}");
    }
    assert_eq!(seen, (0..8).collect());

    let mut admin = Client::connect(&addr).expect("connect admin");
    admin.shutdown().expect("shutdown ack");
    handle.wait();
}

#[test]
fn mid_pipeline_disconnect_is_reaped_and_daemon_keeps_serving() {
    let (apks, fw) = corpus_and_framework();
    let handle = start_server(
        &fw,
        ServerConfig {
            jobs: 1,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr().to_string();

    // Four scans in flight, then the connection vanishes. The workers
    // may still be scanning; their completions must be discarded (the
    // generation check), not delivered to whoever owns the slot next.
    {
        let mut doomed = TcpStream::connect(&addr).expect("connect doomed client");
        for id in 0..4_u64 {
            doomed
                .write_all(&scan_line(&apks[id as usize % apks.len()], id))
                .expect("write pipelined request");
        }
        doomed.flush().expect("flush");
    } // dropped: RST/FIN mid-pipeline

    // The daemon reaps the connection and returns to a clean idle:
    // nothing in flight, no connection left open besides the pollers'.
    wait_for_status(&addr, "disconnected pipeline reaped", |s| {
        let Some(r) = &s.reactor else { return false };
        r.inflight == 0 && s.jobs_active == 0 && r.open_connections == 1
    });

    // And it still serves: a fresh, well-behaved client gets its scan.
    let mut good = Client::connect(&addr).expect("connect good client");
    let sapk = codec::encode_apk(&apks[0]);
    let response = good.scan_sapk(&sapk, Some(120_000)).expect("scan");
    assert_eq!(response.report.package, apks[0].manifest.package);

    good.shutdown().expect("shutdown ack");
    handle.wait();
}

#[test]
fn garbage_then_disconnect_never_wedges_the_drain() {
    let (apks, fw) = corpus_and_framework();
    let handle = start_server(&fw, ServerConfig::default());
    let addr = handle.addr().to_string();

    // A connection that sends garbage and a half-frame, then vanishes.
    {
        let mut rude = TcpStream::connect(&addr).expect("connect rude client");
        rude.write_all(b"not json at all\n{\"v\":1,\"kind\":\"sc")
            .expect("write garbage");
        rude.flush().expect("flush");
    }

    // The daemon still drains cleanly with that wreckage behind it.
    let mut good = Client::connect(&addr).expect("connect good client");
    let sapk = codec::encode_apk(&apks[0]);
    good.scan_sapk(&sapk, Some(120_000)).expect("scan");
    good.shutdown().expect("shutdown ack");
    handle.wait();
}
