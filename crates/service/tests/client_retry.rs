//! Client retry policy against a scripted stub daemon: transient
//! rejections (`busy`, `internal`) and transport failures are retried
//! with backoff and counted, permanent rejections fail fast, and the
//! deterministic jitter stays inside its envelope.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use saint_obs::{Counter, MetricsRegistry};
use saint_service::protocol::{self, error_code, ErrorResponse, ScanResponse};
use saint_service::{scan_with_retries, ClientError, PipelinedClient, RetryPolicy};
use saintdroid::Report;

/// Serves one scripted response line per connection, in order, then
/// exits. Returns the address to dial.
fn stub_server(responses: Vec<String>) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub");
    let addr = listener.local_addr().expect("stub addr").to_string();
    std::thread::spawn(move || {
        for response in responses {
            let Ok((stream, _)) = listener.accept() else {
                return;
            };
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut line = String::new();
            if reader.read_line(&mut line).is_err() {
                continue;
            }
            let mut writer = stream;
            let _ = writer.write_all(response.as_bytes());
            let _ = writer.flush();
        }
    });
    addr
}

fn ok_line() -> String {
    protocol::to_line(&ScanResponse::new(Report::new("stub.app", "stub")))
}

fn quick_policy(retries: u32) -> RetryPolicy {
    RetryPolicy {
        retries,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(4),
    }
}

#[test]
fn transient_busy_is_retried_until_served() {
    let busy = protocol::to_line(&ErrorResponse::new(error_code::BUSY, "full"));
    let addr = stub_server(vec![busy.clone(), busy, ok_line()]);
    let registry = MetricsRegistry::new();
    let (resp, retries) = scan_with_retries(&addr, b"sapk", None, quick_policy(4), Some(&registry))
        .expect("third attempt is served");
    assert_eq!(retries, 2);
    assert_eq!(resp.report.package, "stub.app");
    assert_eq!(registry.counter(Counter::ClientRetries), 2);
}

#[test]
fn internal_errors_are_transient_but_respect_the_budget() {
    let internal = protocol::to_line(
        &ErrorResponse::new(error_code::INTERNAL, "injected").with_phase("explore"),
    );
    let addr = stub_server(vec![internal.clone(), internal, ok_line()]);
    // Budget of one retry: both attempts see `internal`, so the last
    // error surfaces — still typed, still carrying the phase.
    let err = scan_with_retries(&addr, b"sapk", None, quick_policy(1), None)
        .expect_err("budget exhausted");
    match err {
        ClientError::Rejected(e) => {
            assert_eq!(e.code, error_code::INTERNAL);
            assert_eq!(e.phase.as_deref(), Some("explore"));
        }
        other => panic!("expected typed rejection, got {other}"),
    }
}

#[test]
fn permanent_rejections_fail_fast() {
    let bad = protocol::to_line(
        &ErrorResponse::new(error_code::BAD_PACKAGE, "not a SAPK container").with_offset(0),
    );
    let addr = stub_server(vec![bad, ok_line()]);
    let registry = MetricsRegistry::new();
    let err = scan_with_retries(&addr, b"junk", None, quick_policy(5), Some(&registry))
        .expect_err("bad_package is not retriable");
    match err {
        ClientError::Rejected(e) => {
            assert_eq!(e.code, error_code::BAD_PACKAGE);
            assert_eq!(e.offset, Some(0));
        }
        other => panic!("expected typed rejection, got {other}"),
    }
    assert_eq!(
        registry.counter(Counter::ClientRetries),
        0,
        "no retry spent"
    );
}

#[test]
fn connection_refused_exhausts_the_budget_then_surfaces_io() {
    // Bind-then-drop guarantees nothing listens on the port.
    let addr = {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let registry = MetricsRegistry::new();
    let err = scan_with_retries(&addr, b"sapk", None, quick_policy(2), Some(&registry))
        .expect_err("nothing listens");
    assert!(matches!(err, ClientError::Io(_)));
    assert_eq!(registry.counter(Counter::ClientRetries), 2);
}

/// Reads one pipelined request off the stub's wire: its id and the
/// decoded payload (the tests send recognizable payloads like
/// `pkg-1`, so the stub can echo them back as package names).
fn read_request(reader: &mut BufReader<TcpStream>) -> (u64, String) {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read request");
    let value = serde_json::from_str_value(&line).expect("request parses");
    let id = value
        .get("id")
        .and_then(serde::Value::as_u64)
        .expect("pipelined request carries an id");
    let payload = value
        .get("package_b64")
        .and_then(serde::Value::as_str)
        .and_then(protocol::base64_decode)
        .expect("request carries a payload");
    (id, String::from_utf8(payload).expect("utf-8 payload"))
}

/// The pipelined retry taxonomy against a scripted stub: the daemon
/// answers a full window out of order, failing exactly one request
/// with a transient `internal` — and the client must resubmit *only*
/// that request (under a fresh id), keep every other in-flight answer,
/// and return the batch in submission order.
#[test]
fn pipelined_transient_error_resends_only_the_failed_request() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub");
    let addr = listener.local_addr().expect("stub addr").to_string();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        // The whole window arrives before any answer goes out.
        let mut window: Vec<(u64, String)> = (0..4).map(|_| read_request(&mut reader)).collect();
        // Answer out of submission order, and fail the second request
        // (id 1 — ids start at 0 on a fresh client) with a transient.
        window.reverse();
        for (id, pkg) in &window {
            let line = if *id == 1 {
                protocol::to_line(
                    &ErrorResponse::new(error_code::INTERNAL, "flaky").with_id(Some(*id)),
                )
            } else {
                protocol::to_line(&ScanResponse::new(Report::new(pkg, "stub")).with_id(Some(*id)))
            };
            writer.write_all(line.as_bytes()).expect("write response");
        }
        // Exactly one more request may arrive: the resubmission, same
        // payload under a fresh id. Serve it and report what we saw.
        let (retry_id, retry_pkg) = read_request(&mut reader);
        let line = protocol::to_line(
            &ScanResponse::new(Report::new(&retry_pkg, "stub")).with_id(Some(retry_id)),
        );
        writer.write_all(line.as_bytes()).expect("write response");
        let _ = tx.send((window.len() + 1, retry_id, retry_pkg));
    });

    let registry = Arc::new(MetricsRegistry::new());
    let sapks: Vec<Vec<u8>> = (0..4).map(|i| format!("pkg-{i}").into_bytes()).collect();
    let mut client = PipelinedClient::connect(&addr, 4)
        .expect("connect pipelined")
        .with_retry_policy(quick_policy(3))
        .with_metrics(Arc::clone(&registry));
    let responses = client.scan_all(&sapks, None).expect("batch serves");

    // Submission order restored despite the reversed answers.
    for (i, resp) in responses.iter().enumerate() {
        assert_eq!(resp.report.package, format!("pkg-{i}"));
    }
    // One resubmission, of the failed request only: 4 + 1 requests on
    // the wire, the retry carried pkg-1 under a fresh (never-reused)
    // id, and exactly one client retry was counted.
    let (total_requests, retry_id, retry_pkg) = rx.recv().expect("stub script completed");
    assert_eq!(total_requests, 5, "only the failed request is resent");
    assert_eq!(retry_pkg, "pkg-1");
    assert!(retry_id >= 4, "a retried request gets a fresh id");
    assert_eq!(registry.counter(Counter::ClientRetries), 1);
}

/// Permanent rejections fail a pipelined batch immediately — no
/// resubmission, typed error surfaced.
#[test]
fn pipelined_permanent_rejection_fails_the_batch_fast() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub");
    let addr = listener.local_addr().expect("stub addr").to_string();
    std::thread::spawn(move || {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let (id, _) = read_request(&mut reader);
        let line = protocol::to_line(
            &ErrorResponse::new(error_code::BAD_PACKAGE, "not a SAPK container")
                .with_offset(0)
                .with_id(Some(id)),
        );
        let _ = writer.write_all(line.as_bytes());
    });

    let registry = Arc::new(MetricsRegistry::new());
    let mut client = PipelinedClient::connect(&addr, 2)
        .expect("connect pipelined")
        .with_retry_policy(quick_policy(5))
        .with_metrics(Arc::clone(&registry));
    let err = client
        .scan_all(&[b"junk".to_vec()], None)
        .expect_err("bad_package is not retriable");
    match err {
        ClientError::Rejected(e) => {
            assert_eq!(e.code, error_code::BAD_PACKAGE);
            assert_eq!(e.offset, Some(0));
        }
        other => panic!("expected typed rejection, got {other}"),
    }
    assert_eq!(registry.counter(Counter::ClientRetries), 0);
}

#[test]
fn backoff_is_deterministic_capped_and_jittered() {
    let policy = RetryPolicy {
        retries: 8,
        base: Duration::from_millis(50),
        cap: Duration::from_secs(2),
    };
    for attempt in 1..=8 {
        let a = policy.delay(attempt, 7);
        let b = policy.delay(attempt, 7);
        assert_eq!(a, b, "same (attempt, seed) must give the same delay");
        // Exponential-with-cap envelope, plus at most 25% jitter.
        let exp = policy
            .base
            .saturating_mul(1 << (attempt - 1))
            .min(policy.cap);
        assert!(a >= exp, "jitter only adds");
        assert!(a <= exp.mul_f64(1.25), "jitter bounded at 25%");
    }
    // Different seeds de-synchronize at least one attempt.
    assert!(
        (1..=8).any(|n| policy.delay(n, 1) != policy.delay(n, 2)),
        "seeds never changed the delay"
    );
}
