//! Client retry policy against a scripted stub daemon: transient
//! rejections (`busy`, `internal`) and transport failures are retried
//! with backoff and counted, permanent rejections fail fast, and the
//! deterministic jitter stays inside its envelope.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::time::Duration;

use saint_obs::{Counter, MetricsRegistry};
use saint_service::protocol::{self, error_code, ErrorResponse, ScanResponse};
use saint_service::{scan_with_retries, ClientError, RetryPolicy};
use saintdroid::Report;

/// Serves one scripted response line per connection, in order, then
/// exits. Returns the address to dial.
fn stub_server(responses: Vec<String>) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub");
    let addr = listener.local_addr().expect("stub addr").to_string();
    std::thread::spawn(move || {
        for response in responses {
            let Ok((stream, _)) = listener.accept() else {
                return;
            };
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut line = String::new();
            if reader.read_line(&mut line).is_err() {
                continue;
            }
            let mut writer = stream;
            let _ = writer.write_all(response.as_bytes());
            let _ = writer.flush();
        }
    });
    addr
}

fn ok_line() -> String {
    protocol::to_line(&ScanResponse::new(Report::new("stub.app", "stub")))
}

fn quick_policy(retries: u32) -> RetryPolicy {
    RetryPolicy {
        retries,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(4),
    }
}

#[test]
fn transient_busy_is_retried_until_served() {
    let busy = protocol::to_line(&ErrorResponse::new(error_code::BUSY, "full"));
    let addr = stub_server(vec![busy.clone(), busy, ok_line()]);
    let registry = MetricsRegistry::new();
    let (resp, retries) = scan_with_retries(&addr, b"sapk", None, quick_policy(4), Some(&registry))
        .expect("third attempt is served");
    assert_eq!(retries, 2);
    assert_eq!(resp.report.package, "stub.app");
    assert_eq!(registry.counter(Counter::ClientRetries), 2);
}

#[test]
fn internal_errors_are_transient_but_respect_the_budget() {
    let internal = protocol::to_line(
        &ErrorResponse::new(error_code::INTERNAL, "injected").with_phase("explore"),
    );
    let addr = stub_server(vec![internal.clone(), internal, ok_line()]);
    // Budget of one retry: both attempts see `internal`, so the last
    // error surfaces — still typed, still carrying the phase.
    let err = scan_with_retries(&addr, b"sapk", None, quick_policy(1), None)
        .expect_err("budget exhausted");
    match err {
        ClientError::Rejected(e) => {
            assert_eq!(e.code, error_code::INTERNAL);
            assert_eq!(e.phase.as_deref(), Some("explore"));
        }
        other => panic!("expected typed rejection, got {other}"),
    }
}

#[test]
fn permanent_rejections_fail_fast() {
    let bad = protocol::to_line(
        &ErrorResponse::new(error_code::BAD_PACKAGE, "not a SAPK container").with_offset(0),
    );
    let addr = stub_server(vec![bad, ok_line()]);
    let registry = MetricsRegistry::new();
    let err = scan_with_retries(&addr, b"junk", None, quick_policy(5), Some(&registry))
        .expect_err("bad_package is not retriable");
    match err {
        ClientError::Rejected(e) => {
            assert_eq!(e.code, error_code::BAD_PACKAGE);
            assert_eq!(e.offset, Some(0));
        }
        other => panic!("expected typed rejection, got {other}"),
    }
    assert_eq!(
        registry.counter(Counter::ClientRetries),
        0,
        "no retry spent"
    );
}

#[test]
fn connection_refused_exhausts_the_budget_then_surfaces_io() {
    // Bind-then-drop guarantees nothing listens on the port.
    let addr = {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let registry = MetricsRegistry::new();
    let err = scan_with_retries(&addr, b"sapk", None, quick_policy(2), Some(&registry))
        .expect_err("nothing listens");
    assert!(matches!(err, ClientError::Io(_)));
    assert_eq!(registry.counter(Counter::ClientRetries), 2);
}

#[test]
fn backoff_is_deterministic_capped_and_jittered() {
    let policy = RetryPolicy {
        retries: 8,
        base: Duration::from_millis(50),
        cap: Duration::from_secs(2),
    };
    for attempt in 1..=8 {
        let a = policy.delay(attempt, 7);
        let b = policy.delay(attempt, 7);
        assert_eq!(a, b, "same (attempt, seed) must give the same delay");
        // Exponential-with-cap envelope, plus at most 25% jitter.
        let exp = policy
            .base
            .saturating_mul(1 << (attempt - 1))
            .min(policy.cap);
        assert!(a >= exp, "jitter only adds");
        assert!(a <= exp.mul_f64(1.25), "jitter bounded at 25%");
    }
    // Different seeds de-synchronize at least one attempt.
    assert!(
        (1..=8).any(|n| policy.delay(n, 1) != policy.delay(n, 2)),
        "seeds never changed the delay"
    );
}
